"""``repro.core`` — the GemStone Data Model (GSDM).

The paper's primary contribution: Smalltalk-80's object model merged with
the Set-Theoretic Data Model, yielding objects with permanent identity,
class-based behaviour, optional elements, transaction-time histories, path
expressions and a time dial (sections 4-5).

Public surface:

* :class:`GemObject`, :class:`GemClass`, :class:`PrimitiveMethod`
* :class:`MemoryObjectManager` / :class:`ObjectStore`
* :class:`AssociationTable` and the :data:`MISSING` sentinel
* :class:`Ref`, :class:`Symbol`, :class:`Char` values
* :func:`parse_path`, :func:`resolve`, :func:`assign` path expressions
* :class:`TimeDial` and :class:`View`
"""

from .classes import BOOTSTRAP_HIERARCHY, GemClass, Method, PrimitiveMethod
from .history import MISSING, AssociationTable
from .object_manager import FIRST_USER_OID, MemoryObjectManager, ObjectStore
from .objects import GemObject
from .paths import Path, Step, assign, exists, parse_path, resolve
from .timedial import TimeDial
from .values import Char, Ref, Symbol, is_immediate, is_value
from .views import View

__all__ = [
    "AssociationTable",
    "BOOTSTRAP_HIERARCHY",
    "Char",
    "FIRST_USER_OID",
    "GemClass",
    "GemObject",
    "MISSING",
    "MemoryObjectManager",
    "Method",
    "ObjectStore",
    "Path",
    "PrimitiveMethod",
    "Ref",
    "Step",
    "Symbol",
    "TimeDial",
    "View",
    "assign",
    "exists",
    "is_immediate",
    "is_value",
    "parse_path",
    "resolve",
]
