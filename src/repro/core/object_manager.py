"""Object Managers: the store interface every higher layer runs against.

Section 6: "The Object Manager performs the same operations as the ST80
object memory ... In addition, the Object Manager responds to messages to
conduct its fetches in some previous state of the database."

:class:`ObjectStore` is the abstract interface — reads, time-indexed
fetches, staged writes, instantiation, class registry and message
dispatch.  :class:`MemoryObjectManager` is the standalone in-memory
implementation with its own logical transaction clock; the transactional
:class:`~repro.concurrency.sessions.SessionObjectManager` layers a private
workspace over a shared stable store and implements the same interface.

Per the paper, there is no garbage collection of database objects:
nothing in this module ever removes an object from the store.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from ..errors import (
    ClassProtocolError,
    DoesNotUnderstand,
    NoSuchObject,
    TimeTravelError,
)
from ..perf.caches import _ABSENT, StoreCaches
from ..perf.epochs import class_epoch
from .classes import BOOTSTRAP_HIERARCHY, GemClass, Method, immediate_class_name
from .history import MISSING
from .objects import GemObject
from .values import Ref, Symbol, is_immediate

#: First oid handed out for ordinary objects; lower oids are reserved for
#: bootstrap classes so storage-format tests can rely on their stability.
FIRST_USER_OID = 1024


class ObjectStore:
    """Abstract store: identity-preserving object access with time travel.

    Subclasses must implement :meth:`object`, :meth:`contains`,
    :meth:`register`, :meth:`write_time` and :meth:`allocate_oid`; the
    navigation, dispatch and class-definition machinery here is shared.
    """

    def __init__(self) -> None:
        #: class name -> class oid
        self.classes: dict[str, int] = {}
        self._alias_counter = 0
        #: hot-path cache state (method lookups, plan-memo counters)
        self.perf = StoreCaches()

    # -- primitives to implement -------------------------------------------

    def object(self, oid: int) -> GemObject:
        """Return the object with *oid*; raise :class:`NoSuchObject`."""
        raise NotImplementedError

    def contains(self, oid: int) -> bool:
        """True if *oid* names an object in this store."""
        raise NotImplementedError

    def register(self, obj: GemObject) -> GemObject:
        """Enter a freshly created object into the store."""
        raise NotImplementedError

    def allocate_oid(self) -> int:
        """Reserve and return a new, never-used oid."""
        raise NotImplementedError

    def write_time(self) -> int:
        """The transaction time new bindings are recorded at."""
        raise NotImplementedError

    def current_time(self) -> int:
        """The newest committed transaction time this store has seen.

        Defaults to :meth:`write_time`; durable stores override it with
        their last committed time.
        """
        return self.write_time()

    def note_read(self, oid: int, name: Any) -> None:
        """Hook: an element was read (for optimistic access recording)."""

    def note_write(self, oid: int, name: Any) -> None:
        """Hook: an element was written."""

    def note_enumeration(self, oid: int) -> None:
        """Hook: an object's whole element set was enumerated.

        Enumerations are recorded separately because a concurrent commit
        that *adds* an element to the object invalidates them (a phantom)
        even though no individual (oid, name) read matches the write.
        """

    # -- value conversion -----------------------------------------------------

    def deref(self, value: Any) -> Any:
        """Resolve a stored value: Refs become objects, immediates pass through."""
        if isinstance(value, Ref):
            return self.object(value.oid)
        return value

    def to_value(self, thing: Any) -> Any:
        """Coerce *thing* to a storable value (objects become Refs)."""
        if isinstance(thing, GemObject):
            return thing.ref
        return thing

    def deref_column(self, values: list) -> list:
        """Bulk :meth:`deref` over a column of stored values.

        Semantically ``[self.deref(v) for v in values]``; memory stores
        override it with a direct table scan so the vectorized executor
        pays no per-row method dispatch.
        """
        deref = self.deref
        return [deref(value) for value in values]

    # -- element access -------------------------------------------------------

    def _resolve_target(self, target: Any) -> GemObject:
        if isinstance(target, GemObject):
            return target
        if isinstance(target, Ref):
            return self.object(target.oid)
        if isinstance(target, int) and not isinstance(target, bool):
            return self.object(target)
        raise TypeError(f"not an object designator: {target!r}")

    def value_at(self, target: Any, name: Any, time: int | None = None) -> Any:
        """The value of element *name* of *target* at *time* (None = now).

        Returns :data:`~repro.core.history.MISSING` when unbound.  The read
        is recorded through :meth:`note_read` for optimistic validation.
        """
        obj = self._resolve_target(target)
        self.note_read(obj.oid, name)
        return obj.value_at(name, time)

    def values_at_column(
        self, targets: list, name: Any, time: int | None = None
    ) -> list[Any]:
        """Bulk :meth:`value_at` over a column of object designators.

        Semantically identical to ``[self.value_at(t, name, time) for t
        in targets]`` — the vectorized algebra executor calls this once
        per path step per batch so stores can amortize per-read overhead.
        """
        value_at = self.value_at
        return [value_at(target, name, time) for target in targets]

    def fetch(self, target: Any, name: Any, time: int | None = None) -> Any:
        """Like :meth:`value_at` but dereferences Refs to objects."""
        return self.deref(self.value_at(target, name, time))

    def bind(self, target: Any, name: Any, value: Any) -> None:
        """Bind element *name* of *target* to *value* at the write time."""
        obj = self._resolve_target(target)
        self.note_write(obj.oid, name)
        obj.bind(name, self.to_value(value), self.write_time())

    def unbind(self, target: Any, name: Any) -> None:
        """Bind element *name* to nil, recording a departure (Figure 1)."""
        self.bind(target, name, None)

    # -- enumeration (tracked for phantom detection) -------------------------

    def effective_time(self, time: int | None) -> int | None:
        """Resolve an unspecified time; sessions substitute their dial."""
        return time

    def element_names_of(self, target: Any, time: int | None = None) -> list[Any]:
        """Element names bound at *time*, recording an enumeration read."""
        obj = self._resolve_target(target)
        self.note_enumeration(obj.oid)
        return obj.element_names(self.effective_time(time))

    def live_names_of(self, target: Any, time: int | None = None) -> list[Any]:
        """Non-nil element names at *time*, recording an enumeration read."""
        obj = self._resolve_target(target)
        self.note_enumeration(obj.oid)
        return obj.live_names(self.effective_time(time))

    def live_items_of(self, target: Any, time: int | None = None) -> list[tuple[Any, Any]]:
        """Live (name, value) pairs at *time*, recording an enumeration read."""
        obj = self._resolve_target(target)
        self.note_enumeration(obj.oid)
        return list(obj.items_at(self.effective_time(time)))

    def members_of(self, target: Any, time: int | None = None) -> list[Any]:
        """Dereferenced live element values at *time* (set membership).

        This is how collections are traversed: an STDM set's members are
        the values of its live elements.
        """
        obj = self._resolve_target(target)
        self.note_enumeration(obj.oid)
        return [
            self.deref(value)
            for _, value in obj.items_at(self.effective_time(time))
        ]

    # -- instantiation ---------------------------------------------------------

    def instantiate(
        self,
        gem_class: "GemClass | str",
        segment_id: int | None = None,
        **element_values: Any,
    ) -> GemObject:
        """Create a new instance of *gem_class* with a fresh, eternal oid.

        Keyword arguments pre-bind elements at the current write time.
        ``segment_id`` defaults to the store's default segment (0).
        """
        cls = self._coerce_class(gem_class)
        self._charge_allocation()
        obj = GemObject(
            oid=self.allocate_oid(),
            class_oid=cls.oid,
            segment_id=0 if segment_id is None else segment_id,
            created_at=self.write_time(),
        )
        self.register(obj)
        for name, value in element_values.items():
            self.bind(obj, name, value)
        return obj

    def _charge_allocation(self) -> None:
        """Spend one unit of the attached engine's allocation budget.

        Object creation is the one resource the interpreter cannot meter
        from its own dispatch loop (primitives allocate directly), so the
        store charges it here — whichever engine is bound to the store
        pays for what its query allocates.
        """
        runtime = getattr(self, "opal_runtime", None)
        if runtime is not None and runtime.budget is not None:
            runtime.budget.charge_allocation()

    def instantiate_transient(
        self,
        gem_class: "GemClass | str",
        segment_id: int | None = None,
        **element_values: Any,
    ) -> GemObject:
        """Create a *temporary* object (query results, scratch collections).

        In a transactional session these live only in the workspace and
        are discarded rather than committed, unless they become reachable
        from persistent state — GemStone's temporary-object semantics
        (section 6).  In a plain memory store there is no distinction.
        """
        return self.instantiate(gem_class, segment_id, **element_values)

    def new_alias(self) -> Symbol:
        """Generate a unique element-name alias for an unlabeled set member.

        Section 5.1: "for sets without labels, arbitrary aliases are used
        as element names.  Presumably, the database system can generate
        unique aliases upon demand."
        """
        self._alias_counter += 1
        return Symbol(f"a{self._alias_counter}")

    # -- classes ----------------------------------------------------------------

    def _coerce_class(self, gem_class: "GemClass | str") -> GemClass:
        if isinstance(gem_class, GemClass):
            return gem_class
        return self.class_named(gem_class)

    def class_named(self, name: str) -> GemClass:
        """Return the class registered under *name*."""
        oid = self.classes.get(name)
        if oid is None:
            raise ClassProtocolError(f"no class named {name!r}")
        cls = self.object(oid)
        assert isinstance(cls, GemClass)
        return cls

    def has_class(self, name: str) -> bool:
        """True if a class is registered under *name*."""
        return name in self.classes

    def define_class(
        self,
        name: str,
        superclass: "GemClass | str | None" = "Object",
        instvars: tuple[str, ...] = (),
        segment_id: int = 0,
    ) -> GemClass:
        """Create and register a new class.

        Class definition is separate from instantiation (a GemStone design
        goal, section 2A): defining Employee creates one class object which
        any number of instances share.
        """
        if name in self.classes:
            raise ClassProtocolError(f"class {name!r} already defined")
        super_oid: Optional[int] = None
        if superclass is not None:
            super_oid = self._coerce_class(superclass).oid
        metaclass_oid = self.class_named("Class").oid if self.has_class("Class") else 0
        cls = GemClass(
            oid=self.allocate_oid(),
            class_oid=metaclass_oid,
            name=name,
            superclass_oid=super_oid,
            instvar_names=instvars,
            segment_id=segment_id,
            created_at=self.write_time(),
        )
        self.register(cls)
        self.classes[name] = cls.oid
        # a new class changes what names resolve and (via its placement
        # in the hierarchy) what lookups may assume — version it
        class_epoch.bump()
        return cls

    def class_of(self, value: Any) -> GemClass:
        """The class object of any value, immediate or structured."""
        if isinstance(value, Ref):
            value = self.object(value.oid)
        if isinstance(value, GemObject):
            return self.object(value.class_oid)
        if is_immediate(value):
            return self.class_named(immediate_class_name(value))
        raise ClassProtocolError(f"{value!r} has no class")

    def is_kind_of(self, value: Any, class_name: str) -> bool:
        """True if *value* is an instance of *class_name* or a subclass."""
        return self.class_of(value).is_subclass_of(self, self.class_named(class_name))

    # -- message dispatch ---------------------------------------------------------

    def lookup_method(self, receiver: Any, selector: str) -> Optional[Method]:
        """Find the method *receiver* would run for *selector*.

        Resolutions are cached per store, keyed by the receiver's class
        (class-side lookups by the class object itself, since GemClass is
        a GemObject) and validated against the class-hierarchy epoch — see
        :class:`repro.perf.caches.StoreCaches`.
        """
        perf = self.perf
        if perf.enabled:
            if type(receiver) is GemClass:
                key = (1, receiver.oid, selector)
            elif type(receiver) is GemObject:
                key = (0, receiver.class_oid, selector)
            elif not isinstance(receiver, (GemObject, Ref)):
                key = (2, type(receiver), selector)
            else:
                key = None  # Ref or GemObject subclass: stay uncached
            if key is not None:
                entry = perf.method_get(key)
                if entry is not _ABSENT:
                    return entry
                method = self._lookup_method_uncached(receiver, selector)
                perf.method_put(key, method)
                return method
        return self._lookup_method_uncached(receiver, selector)

    def _lookup_method_uncached(
        self, receiver: Any, selector: str
    ) -> Optional[Method]:
        """The full hierarchy walk behind :meth:`lookup_method`."""
        if isinstance(receiver, GemClass):
            method = receiver.lookup_class_side(self, selector)
            if method is not None:
                return method
        return self.class_of(receiver).lookup(self, selector)

    def send(self, receiver: Any, selector: str, *args: Any) -> Any:
        """Send a message: look up *selector* and invoke the method.

        Raises :class:`DoesNotUnderstand` when no class in the receiver's
        hierarchy implements the selector.
        """
        method = self.lookup_method(receiver, selector)
        if method is None:
            raise DoesNotUnderstand(self.class_of(receiver).name, selector)
        return method.invoke(self, receiver, args)

    def responds_to(self, receiver: Any, selector: str) -> bool:
        """True if *receiver* has a method for *selector*."""
        return self.lookup_method(receiver, selector) is not None

    # -- bootstrap -----------------------------------------------------------------

    def bootstrap_classes(self) -> None:
        """Create the kernel class hierarchy (idempotent per store)."""
        for name, super_name in BOOTSTRAP_HIERARCHY:
            if name not in self.classes:
                self.define_class(name, super_name, ())
        # Classes created before "Class" existed (just "Object") got a
        # placeholder class_oid; every class is an instance of Class.
        class_oid = self.classes["Class"]
        for oid in self.classes.values():
            self.object(oid).class_oid = class_oid


class MemoryObjectManager(ObjectStore):
    """A standalone, purely in-memory Object Manager with a logical clock.

    Each call to :meth:`tick` ends one notional transaction: subsequent
    writes record at the next transaction time.  This is the store used by
    unit tests, the STDM engine's tests and non-durable examples; the full
    database stacks sessions and storage underneath the same interface.
    """

    def __init__(self, bootstrap: bool = True) -> None:
        super().__init__()
        self._objects: dict[int, GemObject] = {}
        #: oid -> (collection object, its version, member column) — see
        #: :meth:`members_of`
        self._member_columns: dict[int, tuple[GemObject, int, list]] = {}
        self._next_oid = 1
        self.now = 1
        self._read_observer: Optional[Callable[[int, Any], None]] = None
        self._write_observer: Optional[Callable[[int, Any], None]] = None
        if bootstrap:
            self.bootstrap_classes()
            self._next_oid = max(self._next_oid, FIRST_USER_OID)

    # -- primitives ------------------------------------------------------------

    def object(self, oid: int) -> GemObject:
        obj = self._objects.get(oid)
        if obj is None:
            raise NoSuchObject(oid)
        return obj

    def contains(self, oid: int) -> bool:
        return oid in self._objects

    def deref_column(self, values: list) -> list:
        # direct table hits; the rare dangling Ref falls back to the
        # per-row path so the error carries the right oid
        objects = self._objects
        try:
            return [
                objects[value.oid] if type(value) is Ref else value
                for value in values
            ]
        except KeyError:
            return super().deref_column(values)

    def register(self, obj: GemObject) -> GemObject:
        self._objects[obj.oid] = obj
        return obj

    def allocate_oid(self) -> int:
        oid = self._next_oid
        self._next_oid += 1
        return oid

    def write_time(self) -> int:
        return self.now

    def note_read(self, oid: int, name: Any) -> None:
        if self._read_observer is not None:
            self._read_observer(oid, name)

    def note_write(self, oid: int, name: Any) -> None:
        if self._write_observer is not None:
            self._write_observer(oid, name)

    #: member columns below this size aren't worth caching
    _MEMBER_COLUMN_MIN = 32
    #: cap on cached member columns before wholesale eviction
    _MEMBER_COLUMN_CAP = 512

    def members_of(self, target: Any, time: int | None = None) -> list[Any]:
        # Scan-loop fast path: one pass over the element tables with the
        # "now" lookup inlined (sessions keep the generic implementation —
        # they substitute time dials and workspace twins).  Large member
        # columns are cached, validated by the collection object's write
        # version — so direct ``GemObject.bind`` writers (the commit
        # linker, shard workers) invalidate them without any hook.
        if time is not None:
            return super().members_of(target, time)
        obj = self._resolve_target(target)
        self.note_enumeration(obj.oid)
        entry = self._member_columns.get(obj.oid)
        if entry is not None and entry[0] is obj and entry[1] == obj.version:
            return list(entry[2])
        objects = self._objects
        out: list[Any] = []
        append = out.append
        for table in obj.elements.values():
            values = table._values
            if not values:
                continue
            value = values[-1]
            if value is None or value is MISSING:
                continue
            if isinstance(value, Ref):
                resolved = objects.get(value.oid)
                if resolved is None:
                    raise NoSuchObject(value.oid)
                value = resolved
            append(value)
        if len(out) >= self._MEMBER_COLUMN_MIN:
            if len(self._member_columns) >= self._MEMBER_COLUMN_CAP:
                self._member_columns.clear()
            self._member_columns[obj.oid] = (obj, obj.version, out)
            return list(out)
        return out

    def values_at_column(
        self, targets: list, name: Any, time: int | None = None
    ) -> list[Any]:
        # The hot loop of the vectorized executor.  With no workspace
        # twins and no time dial, value_at reduces to note_read plus a
        # history lookup; inlining that here keeps the per-row cost to a
        # couple of dict/list operations.
        observer = self._read_observer
        if time is None and observer is None:
            # "now" reads skip the bisect entirely: the in-force value is
            # the last record (AssociationTable internals, same package)
            return [
                values[-1]
                if (table := obj.elements.get(name)) is not None
                and (values := table._values)
                else MISSING
                for obj in targets
            ]
        out: list[Any] = []
        append = out.append
        if time is None:
            for obj in targets:
                observer(obj.oid, name)
                table = obj.elements.get(name)
                if table is None or not table._values:
                    append(MISSING)
                else:
                    append(table._values[-1])
            return out
        for obj in targets:
            if observer is not None:
                observer(obj.oid, name)
            table = obj.elements.get(name)
            append(MISSING if table is None else table.value_at(time))
        return out

    # -- clock ---------------------------------------------------------------------

    def tick(self, steps: int = 1) -> int:
        """Advance the logical clock by *steps* transactions; return now."""
        if steps < 1:
            raise ValueError("tick needs a positive step count")
        self.now += steps
        return self.now

    def advance_to(self, time: int) -> int:
        """Jump the clock forward to *time* (used to replay Figure 1)."""
        if time < self.now:
            raise TimeTravelError(f"clock is at {self.now}, cannot rewind to {time}")
        self.now = time
        return self.now

    # -- observation -----------------------------------------------------------------

    def observe(
        self,
        on_read: Optional[Callable[[int, Any], None]] = None,
        on_write: Optional[Callable[[int, Any], None]] = None,
    ) -> None:
        """Install read/write observers (the paper's access recording)."""
        self._read_observer = on_read
        self._write_observer = on_write

    # -- enumeration --------------------------------------------------------------------

    def all_oids(self) -> Iterator[int]:
        """Iterate every oid in the store (classes included)."""
        return iter(tuple(self._objects))

    def object_count(self) -> int:
        """Number of objects in the store — unbounded, unlike ST80's 32K."""
        return len(self._objects)

    def instances_of(self, gem_class: "GemClass | str") -> Iterator[GemObject]:
        """Iterate direct and indirect instances of *gem_class*."""
        cls = self._coerce_class(gem_class)
        for obj in self._objects.values():
            if self.object(obj.class_oid).is_subclass_of(self, cls):
                yield obj
