"""Views as objects.

Section 5.4: "Support for views drops out almost for free.  We can
construct an object that provides a view, and that object can employ other
objects, procedural statements and calculus expressions to define the
extension of the view.  Furthermore, since the view object can retain
connections to the objects that contributed to the view, and since it can
support its own methods for messages, view updates are more manageable
than in other data models."

A :class:`View` wraps a *definition* — any callable ``(store, time) ->
iterable`` — so both procedural blocks and compiled set-calculus queries
(whose ``run`` method has that shape) can define extensions.  The view
retains its source objects and optionally an *update handler* that maps
updates on the view back onto the sources.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from ..errors import ViewError
from .objects import GemObject
from .timedial import TimeDial
from .values import Ref


#: Signature of a view definition: (store, time) -> iterable of members.
Definition = Callable[[Any, Optional[int]], Iterable[Any]]

#: Signature of an update handler: (store, view, member) -> None.
UpdateHandler = Callable[[Any, "View", Any], None]


class View:
    """A derived collection with retained source connections.

    The extension is recomputed on each :meth:`materialize`, so a view
    dialed to a past time shows the derived data as of that time — the
    paper's temporal semantics compose with views for free.
    """

    def __init__(
        self,
        store: Any,
        name: str,
        definition: Definition,
        sources: Sequence[GemObject] = (),
        on_insert: Optional[UpdateHandler] = None,
        on_remove: Optional[UpdateHandler] = None,
    ) -> None:
        self.store = store
        self.name = name
        self.definition = definition
        #: oids of the objects this view derives from (retained connections)
        self.source_oids: tuple[int, ...] = tuple(obj.oid for obj in sources)
        self._on_insert = on_insert
        self._on_remove = on_remove
        #: the view's own object in the store, so other objects can refer
        #: to the view with full entity identity
        self.object = store.instantiate("View", name=name)

    def __repr__(self) -> str:
        return f"<View {self.name!r} over {len(self.source_oids)} sources>"

    @property
    def ref(self) -> Ref:
        """A Ref to the view's store object."""
        return self.object.ref

    def sources(self) -> list[GemObject]:
        """The source objects this view retains connections to."""
        return [self.store.object(oid) for oid in self.source_oids]

    def materialize(
        self, time: Optional[int] = None, dial: Optional[TimeDial] = None
    ) -> list[Any]:
        """Compute the view's extension at *time* (or the dial's time)."""
        if time is None and dial is not None:
            time = dial.time
        return list(self.definition(self.store, time))

    def __iter__(self):
        return iter(self.materialize())

    def contains(self, member: Any, time: Optional[int] = None) -> bool:
        """True if *member* is in the extension at *time*."""
        return member in self.materialize(time)

    # -- updates -------------------------------------------------------------

    @property
    def updatable(self) -> bool:
        """True if the view can translate at least one kind of update."""
        return self._on_insert is not None or self._on_remove is not None

    def insert(self, member: Any) -> None:
        """Insert through the view; requires an insert handler."""
        if self._on_insert is None:
            raise ViewError(f"view {self.name!r} does not support insertion")
        self._on_insert(self.store, self, member)

    def remove(self, member: Any) -> None:
        """Remove through the view; requires a remove handler."""
        if self._on_remove is None:
            raise ViewError(f"view {self.name!r} does not support removal")
        self._on_remove(self.store, self, member)
