"""The time dial: session-wide navigation through past database states.

Section 5.4: "we have eschewed the !-notation for navigating through object
histories in favor of a time dial.  We feel that almost all navigation
through history would be within a single past state of the database.
Setting the time dial to time T is the same as appending @T to each
component in a path expression."

The dial belongs to a session (or a bare object manager in standalone use);
path resolution and element fetches consult it whenever a component has no
explicit ``@`` pin.  ``SafeTime`` — "the most recent state for which no
currently running transaction can make changes" — is computed by the
Transaction Manager; :meth:`TimeDial.set_safe` fetches it through a
provider callable so this module stays independent of the concurrency
layer.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional


class TimeDial:
    """A settable pointer into database history.

    ``time is None`` means "now": reads see the current state.  Any other
    value *T* makes every unpinned fetch behave as if ``@T`` were appended
    to it.
    """

    __slots__ = (
        "time", "_safe_time_provider", "_commit_time_provider",
        "clamps", "on_clamp",
    )

    def __init__(
        self,
        safe_time_provider: Optional[Callable[[], int]] = None,
        commit_time_provider: Optional[Callable[[], int]] = None,
    ) -> None:
        self.time: Optional[int] = None
        self._safe_time_provider = safe_time_provider
        #: the commit-clock ceiling SafeTime may never exceed (§5.4);
        #: ``None`` trusts the SafeTime provider unconditionally
        self._commit_time_provider = commit_time_provider
        #: times :meth:`set_safe` had to clamp a too-new SafeTime
        self.clamps = 0
        #: optional observability hook, called once per clamp
        self.on_clamp: Optional[Callable[[], Any]] = None

    def __repr__(self) -> str:
        setting = "now" if self.time is None else str(self.time)
        return f"<TimeDial {setting}>"

    def set(self, time: Optional[int]) -> None:
        """Point the dial at transaction *time* (None returns to now)."""
        self.time = time

    def reset(self) -> None:
        """Return the dial to the present."""
        self.time = None

    @property
    def is_now(self) -> bool:
        """True when the dial reads the current state."""
        return self.time is None

    def set_safe(self) -> int:
        """Set the dial to ``SafeTime`` and return it.

        A read-only transaction dialed to SafeTime sees the most recent
        state no running transaction can still change (section 5.4).
        SafeTime must never exceed the commit clock — a state that has
        not committed yet is not "safe", it is imaginary — so a provider
        that answers a time newer than the latest committed transaction
        (a skewed clock, a provider wired to the wrong counter) is
        clamped to the commit ceiling, and the clamp is counted for the
        observability layer.
        """
        if self._safe_time_provider is None:
            raise RuntimeError("this dial has no SafeTime provider")
        safe = self._safe_time_provider()
        if self._commit_time_provider is not None:
            ceiling = self._commit_time_provider()
            if safe > ceiling:
                safe = ceiling
                self.clamps += 1
                if self.on_clamp is not None:
                    self.on_clamp()
        self.time = safe
        return safe

    @contextmanager
    def at(self, time: Optional[int]) -> Iterator["TimeDial"]:
        """Temporarily dial to *time* for the duration of a ``with`` block."""
        previous = self.time
        self.time = time
        try:
            yield self
        finally:
            self.time = previous
