"""GemStone objects: private memory with entity identity and history.

A :class:`GemObject` is the GSDM realization of a Smalltalk object merged
with an STDM labeled set (section 5.4): a permanent oid (identity), a class,
and a dictionary of elements, where each element is an element name plus an
:class:`~repro.core.history.AssociationTable` of (transaction time, value)
pairs.

Objects never hold direct Python references to one another; values are
immediates or :class:`~repro.core.values.Ref` oids resolved by an Object
Manager.  Identity is a property that spans time (section 5.4): the oid is
assigned at instantiation and never changes, even as element values do.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import ElementNotFound
from .history import MISSING, AssociationTable
from .values import Ref, check_element_name, check_value


class GemObject:
    """A structured GSDM object: oid + class + temporal elements.

    Instances are created by an Object Manager (`instantiate`), never
    directly by applications; the manager assigns the oid, the class and
    the authorization segment.
    """

    __slots__ = (
        "oid", "class_oid", "segment_id", "elements", "created_at", "version",
    )

    def __init__(
        self,
        oid: int,
        class_oid: int,
        segment_id: int = 0,
        created_at: int = 0,
    ) -> None:
        self.oid = oid
        self.class_oid = class_oid
        self.segment_id = segment_id
        self.created_at = created_at
        #: element name -> AssociationTable
        self.elements: dict[Any, AssociationTable] = {}
        #: bumped on every element write — derived structures (member
        #: columns, caches) validate against it instead of write hooks,
        #: so direct ``GemObject.bind`` callers invalidate them too
        self.version = 0

    def __repr__(self) -> str:
        names = ", ".join(repr(n) for n in list(self.elements)[:6])
        more = "…" if len(self.elements) > 6 else ""
        return f"<GemObject oid={self.oid} class={self.class_oid} [{names}{more}]>"

    @property
    def ref(self) -> Ref:
        """A :class:`Ref` to this object, for storing in other elements."""
        return Ref(self.oid)

    # -- element binding -----------------------------------------------------

    def bind(self, name: Any, value: Any, time: int) -> None:
        """Bind element *name* to *value* as of transaction *time*.

        New element names may be added to any existing instance — the
        paper's "optional instance variables ... and the ability to add
        new variables to existing instances" (section 4.3).
        """
        check_element_name(name)
        check_value(value)
        table = self.elements.get(name)
        if table is None:
            table = AssociationTable()
            self.elements[name] = table
        table.record(time, value)
        self.version += 1

    def unbind(self, name: Any, time: int) -> None:
        """Record departure of an element by binding it to nil.

        Figure 1 expresses Ayn Rand leaving the company as a binding of
        her element to the object ``nil`` at time 8; nothing is deleted.
        """
        self.bind(name, None, time)

    # -- element lookup ------------------------------------------------------

    def value_at(self, name: Any, time: int | None = None) -> Any:
        """Return the value of element *name* at *time*, or MISSING."""
        table = self.elements.get(name)
        if table is None:
            return MISSING
        return table.value_at(time)

    def value(self, name: Any, time: int | None = None) -> Any:
        """Like :meth:`value_at` but raises if the element is missing."""
        found = self.value_at(name, time)
        if found is MISSING:
            raise ElementNotFound(name, time)
        return found

    def has_element(self, name: Any, time: int | None = None) -> bool:
        """True if *name* was bound (to anything, even nil) at *time*."""
        return self.value_at(name, time) is not MISSING

    def is_live(self, name: Any, time: int | None = None) -> bool:
        """True if *name* is bound to a non-nil value at *time*."""
        found = self.value_at(name, time)
        return found is not MISSING and found is not None

    # -- enumeration -----------------------------------------------------------

    def element_names(self, time: int | None = None) -> list[Any]:
        """Element names bound (possibly to nil) at *time*, insertion order."""
        return [n for n, t in self.elements.items() if t.bound_at(time)]

    def live_names(self, time: int | None = None) -> list[Any]:
        """Element names bound to a non-nil value at *time*."""
        names = []
        for name, table in self.elements.items():
            value = table.value_at(time)
            if value is not MISSING and value is not None:
                names.append(name)
        return names

    def items_at(self, time: int | None = None) -> Iterator[tuple[Any, Any]]:
        """Iterate live (name, value) pairs as of *time*."""
        for name, table in self.elements.items():
            value = table.value_at(time)
            if value is not MISSING and value is not None:
                yield name, value

    def history_of(self, name: Any) -> Iterator[tuple[int, Any]]:
        """Iterate the full (time, value) history of element *name*."""
        table = self.elements.get(name)
        if table is None:
            raise ElementNotFound(name)
        return table.history()

    # -- structural equivalence --------------------------------------------

    def equivalent_to(self, other: "GemObject", time: int | None = None) -> bool:
        """Shallow structural equivalence at *time* (section 4.2).

        Two entities can have all component values equal yet not be the
        same object; this tests the former.  Component Refs are compared
        by oid — a *deep* equivalence would recurse through the store and
        belongs to the Object Manager.
        """
        mine = dict(self.items_at(time))
        theirs = dict(other.items_at(time))
        return mine == theirs

    # -- maintenance -------------------------------------------------------

    def referenced_oids(self, time: int | None = None) -> set[int]:
        """Oids of all objects referenced by live elements at *time*.

        With ``time=None`` this returns references in the *current* state;
        pass an explicit time to chase a past state.
        """
        oids = set()
        for _, value in self.items_at(time):
            if isinstance(value, Ref):
                oids.add(value.oid)
        return oids

    def all_referenced_oids(self) -> set[int]:
        """Oids referenced by any association in any state (for archival)."""
        oids = set()
        for table in self.elements.values():
            for _, value in table.history():
                if isinstance(value, Ref):
                    oids.add(value.oid)
        return oids

    def last_modified(self) -> int:
        """The largest transaction time recorded in any element."""
        latest = self.created_at
        for table in self.elements.values():
            last = table.last_time
            if last is not None and last > latest:
                latest = last
        return latest

    def copy_shell(self) -> "GemObject":
        """A deep copy of this object's identity and history tables."""
        other = GemObject(self.oid, self.class_oid, self.segment_id, self.created_at)
        other.elements = {n: t.copy() for n, t in self.elements.items()}
        return other
