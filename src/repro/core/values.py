"""Immediate (simple) values of the GemStone Data Model.

The paper distinguishes *simple values* from structured objects: simple
values have value identity (two equal integers are the same entity), while
structured objects have entity identity carried by an oid (section 4.2).

Immediates in this reproduction are the Python scalars ``int``, ``float``,
``bool``, ``str`` and ``None`` (GemStone's ``nil``), plus two Smalltalk
types: :class:`Symbol` (interned identifier, written ``#foo`` in OPAL) and
:class:`Char` (written ``$a``).  Everything else stored in an object element
must be a :class:`Ref` to another object.
"""

from __future__ import annotations

from typing import Any


class Symbol(str):
    """An interned identifier, the value of an OPAL ``#foo`` literal.

    Symbols compare equal to the strings they intern but display with a
    leading ``#``.  Interning makes ``Symbol('x') is Symbol('x')`` true,
    mirroring Smalltalk symbol identity.
    """

    _interned: dict[str, "Symbol"] = {}

    def __new__(cls, text: str) -> "Symbol":
        found = cls._interned.get(text)
        if found is None:
            found = super().__new__(cls, text)
            cls._interned[text] = found
        return found

    def __repr__(self) -> str:
        return f"#{str.__str__(self)}"


class Char:
    """A single character, the value of an OPAL ``$a`` literal."""

    __slots__ = ("codepoint",)

    def __init__(self, char: str) -> None:
        if len(char) != 1:
            raise ValueError(f"Char needs exactly one character, got {char!r}")
        self.codepoint = ord(char)

    @property
    def char(self) -> str:
        """The character as a one-element string."""
        return chr(self.codepoint)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Char) and other.codepoint == self.codepoint

    def __hash__(self) -> int:
        return hash(("Char", self.codepoint))

    def __lt__(self, other: "Char") -> bool:
        if not isinstance(other, Char):
            return NotImplemented
        return self.codepoint < other.codepoint

    def __repr__(self) -> str:
        return f"${self.char}"


class Ref:
    """A reference to a structured object, by oid.

    Elements of GemStone objects never hold Python references to other
    ``GemObject`` instances; they hold ``Ref`` values that the Object
    Manager resolves.  This keeps identity explicit (the paper's GOOPs)
    and makes the storage codec a pure function of element contents.
    """

    __slots__ = ("oid",)

    def __init__(self, oid: int) -> None:
        self.oid = oid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ref) and other.oid == self.oid

    def __hash__(self) -> int:
        return hash(("Ref", self.oid))

    def __repr__(self) -> str:
        return f"<Ref {self.oid}>"


#: Immediate Python types accepted as element values and element names.
IMMEDIATE_TYPES = (int, float, str, bool, type(None), Char)


def is_immediate(value: Any) -> bool:
    """Return True if *value* is a simple value (has value identity)."""
    return isinstance(value, IMMEDIATE_TYPES)


def is_value(value: Any) -> bool:
    """Return True if *value* may be stored in an object element."""
    return is_immediate(value) or isinstance(value, Ref)


def check_value(value: Any) -> Any:
    """Validate *value* as storable; return it unchanged.

    Raises:
        TypeError: if the value is neither an immediate nor a :class:`Ref`.
    """
    if not is_value(value):
        raise TypeError(
            f"element values must be immediates or Refs, got {type(value).__name__}"
        )
    return value


def is_element_name(name: Any) -> bool:
    """Return True if *name* may label an element.

    The paper allows element names to be identifiers, numbers or strings
    (section 5.1: arrays use integers as element names).
    """
    return isinstance(name, (str, int, Char)) and not isinstance(name, bool)


def check_element_name(name: Any) -> Any:
    """Validate *name* as an element name; return it unchanged.

    Raises:
        TypeError: if the name is not a string, symbol, integer or Char.
    """
    if isinstance(name, bool) or not isinstance(name, (str, int, Char)):
        raise TypeError(
            f"element names must be strings, symbols, ints or Chars, "
            f"got {type(name).__name__}"
        )
    return name
