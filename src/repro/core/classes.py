"""Classes, methods and the bootstrap hierarchy.

Section 4.1: "a class is a group of structurally similar objects that
respond to the same set of messages.  The class definition contains the
procedures (methods) that its objects use to respond to messages.  Classes
are organized in a (strict) hierarchy."

Classes are themselves objects (section 4.2 notes ST80 "treats system
components as full-fledged objects"), so :class:`GemClass` derives from
:class:`~repro.core.objects.GemObject`: a class has an oid, lives in the
store, and can be referenced from elements like any entity.

Methods come in two flavors: :class:`PrimitiveMethod` wraps a Python
callable (the reproduction's analogue of ST80 primitives), and the OPAL
compiler produces ``CompiledMethod`` objects (:mod:`repro.opal.compiler`)
that satisfy the same ``invoke`` protocol via the Interpreter.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from ..errors import ClassProtocolError
from ..perf.epochs import class_epoch
from .objects import GemObject
from .values import Symbol


class Method:
    """Abstract method: responds to a selector on behalf of a receiver."""

    selector: str

    def invoke(self, manager: Any, receiver: Any, args: tuple) -> Any:
        """Execute the method; subclasses must override."""
        raise NotImplementedError

    @property
    def argument_count(self) -> int:
        """Number of arguments implied by the selector's colons."""
        if ":" in self.selector:
            return self.selector.count(":")
        if not self.selector[0].isalpha() and self.selector[0] != "_":
            return 1  # binary selector such as + or <=
        return 0  # unary selector


class PrimitiveMethod(Method):
    """A method implemented directly in Python.

    The wrapped callable receives ``(manager, receiver, *args)`` and
    returns the method's value.  Kernel classes are seeded with these
    before any OPAL source is compiled.
    """

    __slots__ = ("selector", "function")

    def __init__(self, selector: str, function: Callable[..., Any]) -> None:
        self.selector = selector
        self.function = function

    def invoke(self, manager: Any, receiver: Any, args: tuple) -> Any:
        return self.function(manager, receiver, *args)

    def __repr__(self) -> str:
        return f"<primitive #{self.selector}>"


class GemClass(GemObject):
    """A class object: name, superclass, instance variables, method dictionaries.

    Instance-variable names declared here are advisory structure: instances
    may omit them (optional variables cost no storage) and may gain extra
    element names later (section 4.3's wish list, granted by GSDM).
    """

    __slots__ = (
        "name",
        "superclass_oid",
        "instvar_names",
        "methods",
        "class_methods",
    )

    def __init__(
        self,
        oid: int,
        class_oid: int,
        name: str,
        superclass_oid: Optional[int],
        instvar_names: tuple[str, ...] = (),
        segment_id: int = 0,
        created_at: int = 0,
    ) -> None:
        super().__init__(oid, class_oid, segment_id, created_at)
        self.name = name
        self.superclass_oid = superclass_oid
        self.instvar_names = tuple(instvar_names)
        #: selector -> Method, for instances of this class
        self.methods: dict[str, Method] = {}
        #: selector -> Method, for the class object itself
        self.class_methods: dict[str, Method] = {}

    def __repr__(self) -> str:
        return f"<GemClass {self.name} oid={self.oid}>"

    # -- method dictionary ---------------------------------------------------

    def define_method(self, method: Method) -> Method:
        """Install *method* in this class's instance-method dictionary.

        (Re)definition bumps the class-hierarchy version stamp, so every
        method-lookup, inline and translation cache drops any resolution
        made against the old dictionary.
        """
        self.methods[method.selector] = method
        class_epoch.bump()
        return method

    def define_primitive(self, selector: str, function: Callable[..., Any]) -> Method:
        """Shorthand: install a :class:`PrimitiveMethod`."""
        return self.define_method(PrimitiveMethod(selector, function))

    def define_class_method(self, method: Method) -> Method:
        """Install *method* in this class's class-method dictionary."""
        self.class_methods[method.selector] = method
        class_epoch.bump()
        return method

    def define_class_primitive(
        self, selector: str, function: Callable[..., Any]
    ) -> Method:
        """Shorthand: install a class-side :class:`PrimitiveMethod`."""
        return self.define_class_method(PrimitiveMethod(selector, function))

    def remove_method(self, selector: str) -> None:
        """Remove an instance method; inherited methods become visible again."""
        if self.methods.pop(selector, None) is not None:
            class_epoch.bump()

    # -- hierarchy -----------------------------------------------------------

    def superclass(self, manager: Any) -> Optional["GemClass"]:
        """The superclass object, or None for the root class."""
        if self.superclass_oid is None:
            return None
        return manager.object(self.superclass_oid)

    def superclass_chain(self, manager: Any) -> Iterator["GemClass"]:
        """Iterate this class and its ancestors, most specific first."""
        cls: Optional[GemClass] = self
        while cls is not None:
            yield cls
            cls = cls.superclass(manager)

    def lookup(self, manager: Any, selector: str) -> Optional[Method]:
        """Find the method for *selector*, walking up the hierarchy."""
        for cls in self.superclass_chain(manager):
            method = cls.methods.get(selector)
            if method is not None:
                return method
        return None

    def lookup_class_side(self, manager: Any, selector: str) -> Optional[Method]:
        """Find a class-side method for *selector* up the hierarchy."""
        for cls in self.superclass_chain(manager):
            method = cls.class_methods.get(selector)
            if method is not None:
                return method
        return None

    def is_subclass_of(self, manager: Any, other: "GemClass") -> bool:
        """True if this class equals *other* or inherits from it."""
        return any(cls.oid == other.oid for cls in self.superclass_chain(manager))

    def all_instvar_names(self, manager: Any) -> tuple[str, ...]:
        """Inherited instance-variable names followed by this class's own."""
        chain = list(self.superclass_chain(manager))
        names: list[str] = []
        for cls in reversed(chain):
            for name in cls.instvar_names:
                if name not in names:
                    names.append(name)
        return tuple(names)

    def selectors(self, manager: Any) -> set[str]:
        """Every selector instances respond to, including inherited ones."""
        found: set[str] = set()
        for cls in self.superclass_chain(manager):
            found.update(cls.methods)
        return found

    def add_instvar(self, name: str) -> None:
        """Extend the structure: existing instances gain the (optional)
        variable at no storage cost — design goal C, "modification of
        database schemes without database restructuring"."""
        if name in self.instvar_names:
            raise ClassProtocolError(
                f"{self.name} already has instance variable {name!r}"
            )
        self.instvar_names = self.instvar_names + (name,)
        # structure affects what a select-block translation may assume
        # (trivial-getter recognition), so version it like behaviour
        class_epoch.bump()

    def copy_shell(self) -> "GemClass":
        """A deep element copy that stays a class.

        Method dictionaries and the structural definition are shared
        with the original: sessions twin class objects for element
        writes, and behaviour changes are deliberately image-wide.
        """
        twin = GemClass(
            oid=self.oid,
            class_oid=self.class_oid,
            name=self.name,
            superclass_oid=self.superclass_oid,
            instvar_names=self.instvar_names,
            segment_id=self.segment_id,
            created_at=self.created_at,
        )
        twin.elements = {n: t.copy() for n, t in self.elements.items()}
        twin.methods = self.methods
        twin.class_methods = self.class_methods
        return twin


#: (class name, superclass name) pairs the Object Manager creates at
#: bootstrap.  The OPAL kernel (:mod:`repro.opal.kernel`) adds methods to
#: these same class objects, so language and store share one hierarchy.
BOOTSTRAP_HIERARCHY: tuple[tuple[str, Optional[str]], ...] = (
    ("Object", None),
    ("Class", "Object"),
    ("UndefinedObject", "Object"),
    ("Boolean", "Object"),
    ("Magnitude", "Object"),
    ("Character", "Magnitude"),
    ("Number", "Magnitude"),
    ("Integer", "Number"),
    ("Float", "Number"),
    ("String", "Magnitude"),
    ("Symbol", "String"),
    ("Collection", "Object"),
    ("Bag", "Collection"),
    ("Set", "Bag"),
    ("Array", "Collection"),
    ("Dictionary", "Collection"),
    ("Association", "Object"),
    ("BlockContext", "Object"),
    ("System", "Object"),
    ("View", "Object"),
)


def immediate_class_name(value: Any) -> str:
    """The bootstrap class name for an immediate value."""
    if value is None:
        return "UndefinedObject"
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, Symbol):
        return "Symbol"
    if isinstance(value, int):
        return "Integer"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, str):
        return "String"
    from .values import Char

    if isinstance(value, Char):
        return "Character"
    raise ClassProtocolError(f"{value!r} is not an immediate value")
