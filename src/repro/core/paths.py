"""Path expressions: ``X!Departments!A16!Managers`` and ``…!'president'@10``.

STDM uses a path syntax for accessing subparts of a set (section 5.1), and
the temporal extension attaches ``@T`` to a component to fetch the value
that component had at time *T* (section 5.3.2).  The paper's examples:

* ``World!'Acme Corp'!'president'`` — current president
* ``World!'Acme Corp'!'president'@10`` — president as of time 10
* ``World!'Acme Corp'!'president'@7!city`` — the time-7 president's
  *current* city (``@`` scopes to its own component only; later
  components revert to the time dial)

Paths may also be assigned to (section 4.3: "allow assignments to path
expressions ... sometimes it is the most natural way to define methods").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..errors import PathError
from .history import MISSING
from .objects import GemObject
from .timedial import TimeDial
from .values import Ref


@dataclass(frozen=True)
class Step:
    """One component of a path: an element name, optionally pinned to a time."""

    name: Any
    at: Optional[int] = None

    def __str__(self) -> str:
        text = _format_name(self.name)
        if self.at is not None:
            text += f"@{self.at}"
        return text


@dataclass(frozen=True)
class Path:
    """A parsed path: a sequence of steps applied left to right."""

    steps: tuple[Step, ...]

    def __str__(self) -> str:
        return "!".join(str(step) for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def extended(self, name: Any, at: Optional[int] = None) -> "Path":
        """A new path with one more step appended."""
        return Path(self.steps + (Step(name, at),))

    @property
    def names(self) -> tuple[Any, ...]:
        """The element names of all steps, ignoring time pins."""
        return tuple(step.name for step in self.steps)


def _format_name(name: Any) -> str:
    if isinstance(name, int):
        return str(name)
    text = str(name)
    if _bare_name(text):
        return text
    return "'" + text.replace("'", "''") + "'"


def _bare_name(text: str) -> bool:
    # must mirror _parse_name's identifier rule exactly, NOT
    # str.isidentifier(): the two disagree on ID_Continue characters
    # like U+00B7 that are not alphanumeric, and an unquoted name the
    # parser cannot read back would break the print/parse round trip
    if not text:
        return False
    first = text[0]
    if not (first.isalpha() or first == "_"):
        return False
    return all(char.isalnum() or char == "_" for char in text[1:])


#: parse_path memo — Path/Step are frozen, so one parse per distinct
#: string is safe to share process-wide.  Capped; cleared on overflow.
_PARSE_CACHE: dict[str, Path] = {}
_PARSE_CACHE_MAX = 1024
_parse_hits = 0
_parse_misses = 0


def parse_cache_stats() -> dict[str, Any]:
    """Hit/miss counters of the :func:`parse_path` memo."""
    total = _parse_hits + _parse_misses
    return {
        "entries": len(_PARSE_CACHE),
        "hits": _parse_hits,
        "misses": _parse_misses,
        "hit_rate": _parse_hits / total if total else 0.0,
    }


def reset_parse_cache_stats() -> None:
    """Zero the memo's hit/miss counters (the memo itself is kept:
    parsed paths are immutable and content-addressed, so entries are
    safe to share across independent databases — only the *counters*
    would make one database's hit rate depend on another's history)."""
    global _parse_hits, _parse_misses
    _parse_hits = 0
    _parse_misses = 0


def parse_path(text: str) -> Path:
    """Parse the string form of a path into a :class:`Path`.

    Components are separated by ``!``.  Each component is an identifier,
    an integer, or a single-quoted string (with ``''`` escaping a quote),
    optionally followed by ``@`` and an integer transaction time.
    Results are memoized: paths are immutable and path strings repeat
    heavily (every directory probe and OPAL path fetch re-parses).
    """
    global _parse_hits, _parse_misses
    cached = _PARSE_CACHE.get(text)
    if cached is not None:
        _parse_hits += 1
        return cached
    _parse_misses += 1
    parsed = _parse_path_uncached(text)
    if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
        _PARSE_CACHE.clear()
    _PARSE_CACHE[text] = parsed
    return parsed


def _parse_path_uncached(text: str) -> Path:
    steps: list[Step] = []
    pos = 0
    length = len(text)
    while True:
        pos = _skip_spaces(text, pos)
        if pos >= length:
            raise PathError(f"path ends where a component was expected: {text!r}")
        name, pos = _parse_name(text, pos)
        pos = _skip_spaces(text, pos)
        at: Optional[int] = None
        if pos < length and text[pos] == "@":
            pos += 1
            pos = _skip_spaces(text, pos)
            at, pos = _parse_int(text, pos)
            pos = _skip_spaces(text, pos)
        steps.append(Step(name, at))
        if pos >= length:
            break
        if text[pos] != "!":
            raise PathError(f"expected '!' at position {pos} in {text!r}")
        pos += 1
    return Path(tuple(steps))


def _skip_spaces(text: str, pos: int) -> int:
    while pos < len(text) and text[pos].isspace():
        pos += 1
    return pos


def _ascii_digit(char: str) -> bool:
    return "0" <= char <= "9"


def _parse_name(text: str, pos: int) -> tuple[Any, int]:
    char = text[pos]
    if char == "'":
        return _parse_quoted(text, pos)
    if _ascii_digit(char) or (
        char == "-" and pos + 1 < len(text) and _ascii_digit(text[pos + 1])
    ):
        return _parse_int(text, pos)
    if char.isalpha() or char == "_":
        end = pos
        while end < len(text) and (text[end].isalnum() or text[end] == "_"):
            end += 1
        return text[pos:end], end
    raise PathError(f"cannot read a component at position {pos} in {text!r}")


def _parse_quoted(text: str, pos: int) -> tuple[str, int]:
    chars: list[str] = []
    pos += 1  # opening quote
    while pos < len(text):
        char = text[pos]
        if char == "'":
            if pos + 1 < len(text) and text[pos + 1] == "'":
                chars.append("'")
                pos += 2
                continue
            return "".join(chars), pos + 1
        chars.append(char)
        pos += 1
    raise PathError(f"unterminated quoted component in {text!r}")


def _parse_int(text: str, pos: int) -> tuple[int, int]:
    end = pos
    if end < len(text) and text[end] == "-":
        end += 1
    while end < len(text) and _ascii_digit(text[end]):
        end += 1
    if end == pos or text[pos:end] == "-":
        raise PathError(f"expected an integer at position {pos} in {text!r}")
    return int(text[pos:end]), end


def _coerce_path(path: "Path | str | Sequence[Any]") -> Path:
    if isinstance(path, Path):
        return path
    if isinstance(path, str):
        return parse_path(path)
    return Path(tuple(step if isinstance(step, Step) else Step(step) for step in path))


def resolve(
    store: Any,
    root: Any,
    path: "Path | str | Sequence[Any]",
    dial: Optional[TimeDial] = None,
    default: Any = MISSING,
) -> Any:
    """Evaluate *path* starting from *root* against *store*.

    Each step fetches its element at the step's own ``@`` time if pinned,
    else at the dial's time, else now.  Structured results are returned as
    :class:`~repro.core.objects.GemObject`; immediates as themselves.
    *default* (when not MISSING) is returned instead of raising when a
    component is unbound or nil mid-path.
    """
    parsed = _coerce_path(path)
    current = root
    # the dial is fixed for the whole resolution: read it once, so the
    # common no-time-pin path costs one attribute fetch, not one per step
    dial_time = dial.time if dial is not None else None
    for index, step in enumerate(parsed.steps):
        if not isinstance(current, (GemObject, Ref)):
            if default is not MISSING:
                return default
            prefix = Path(parsed.steps[:index])
            raise PathError(
                f"{prefix or '<root>'} is a simple value; cannot apply !{step}"
            )
        time = step.at if step.at is not None else dial_time
        value = store.value_at(current, step.name, time)
        if value is MISSING or (value is None and index < len(parsed.steps) - 1):
            if default is not MISSING:
                return default
            prefix = Path(parsed.steps[: index + 1])
            raise PathError(f"no value along path at component {prefix}")
        current = store.deref(value)
    return current


def exists(
    store: Any,
    root: Any,
    path: "Path | str | Sequence[Any]",
    dial: Optional[TimeDial] = None,
) -> bool:
    """True if *path* resolves to a bound value from *root*."""
    return resolve(store, root, path, dial, default=MISSING_PROBE) is not MISSING_PROBE


class _MissingProbe:
    """Private default distinguishing 'unresolvable' from a stored MISSING."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing-probe>"


MISSING_PROBE = _MissingProbe()


def assign(
    store: Any,
    root: Any,
    path: "Path | str | Sequence[Any]",
    value: Any,
    dial: Optional[TimeDial] = None,
) -> None:
    """Assign *value* at the end of *path* (``x!a!b := v`` in OPAL).

    Navigation to the parent honours the dial and per-step times, but the
    final binding always happens at the current write time: the past is
    immutable, so a time-pinned final component is a :class:`PathError`.
    """
    parsed = _coerce_path(path)
    if not parsed.steps:
        raise PathError("cannot assign to an empty path")
    last = parsed.steps[-1]
    if last.at is not None:
        raise PathError(f"cannot assign into the past: …!{last}")
    parent = resolve(store, root, Path(parsed.steps[:-1]), dial) if len(parsed) > 1 else root
    if not isinstance(parent, (GemObject, Ref)):
        raise PathError(f"cannot assign: parent of {last} is a simple value")
    store.bind(parent, last.name, value)
