"""Association tables: the temporal binding of element names to values.

Section 6 of the paper describes the Object Manager's representation:

    "An element is represented as an element name and a table of
    associations.  The associations are pairs of transaction times and
    object pointers, each representing that the element acquired the
    object as its value at the time given by the transaction time."

This module implements exactly that table.  A binding made at time *t*
remains in force until a later binding supersedes it (section 5.3.2).
Deleting an element is expressed by binding it to ``nil`` (Figure 1 shows
employee 1821 bound to ``nil`` at time 8 when Ayn Rand leaves the company);
nothing is ever physically removed, which is what lets GemStone skip
garbage collection of database objects.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterator

from ..errors import TimeTravelError


class _Missing:
    """Sentinel for 'no binding existed at that time'.

    Distinct from ``None`` (GemStone ``nil``), which is a real value an
    element can be bound to.
    """

    _instance: "_Missing | None" = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<missing>"

    def __bool__(self) -> bool:
        return False


#: The unique missing-binding sentinel.
MISSING = _Missing()


class AssociationTable:
    """A time-ordered table of (transaction time, value) associations.

    Appends must be monotone in time: the Transaction Manager assigns
    strictly increasing commit times, and within one transaction a second
    binding of the same element simply replaces the first (both carry the
    same commit time).

    The table is stored as two parallel lists sorted by time, so a lookup
    at an arbitrary time is a binary search — the "mapping from arbitrary
    times to value" the paper says "can easily be realized".
    """

    __slots__ = ("_times", "_values")

    def __init__(self) -> None:
        self._times: list[int] = []
        self._values: list[Any] = []

    def __len__(self) -> int:
        return len(self._times)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{t}: {v!r}" for t, v in self.history())
        return f"<AssociationTable {pairs}>"

    # -- recording ---------------------------------------------------------

    def record(self, time: int, value: Any) -> None:
        """Associate *value* with this element as of transaction *time*.

        A second record at the same time overwrites (two writes in one
        transaction yield one association).  Recording at an earlier time
        than the latest association is a :class:`TimeTravelError` — history
        is append-only.
        """
        if self._times:
            last = self._times[-1]
            if time == last:
                self._values[-1] = value
                return
            if time < last:
                raise TimeTravelError(
                    f"cannot record at time {time}; table already at {last}"
                )
        self._times.append(time)
        self._values.append(value)

    # -- lookup ------------------------------------------------------------

    def value_at(self, time: int | None = None) -> Any:
        """Return the value in force at *time* (``None`` means now).

        Returns :data:`MISSING` if the element had not yet been bound at
        *time*.  This realizes the paper's ``E!Salary@T``: the value that
        ``E!Salary`` had in the database state existing at time *T*.
        """
        if not self._times:
            return MISSING
        if time is None:
            return self._values[-1]
        index = bisect_right(self._times, time)
        if index == 0:
            return MISSING
        return self._values[index - 1]

    def current(self) -> Any:
        """Return the most recent value, or :data:`MISSING` if never bound."""
        return self._values[-1] if self._values else MISSING

    def bound_at(self, time: int | None = None) -> bool:
        """Return True if a binding (possibly to nil) existed at *time*."""
        return self.value_at(time) is not MISSING

    # -- history access ------------------------------------------------------

    def history(self) -> Iterator[tuple[int, Any]]:
        """Iterate all (time, value) associations, oldest first."""
        return zip(self._times, self._values)

    def times(self) -> tuple[int, ...]:
        """All transaction times in the table, ascending."""
        return tuple(self._times)

    @property
    def first_time(self) -> int | None:
        """The time of the first association, or None if empty."""
        return self._times[0] if self._times else None

    @property
    def last_time(self) -> int | None:
        """The time of the latest association, or None if empty."""
        return self._times[-1] if self._times else None

    def validity_interval(self, time: int) -> tuple[int, int | None] | None:
        """Return the ``[start, end)`` interval of the binding at *time*.

        ``end`` is ``None`` for the current (open) binding.  Returns None
        if no binding was in force at *time*.  Directories use these
        intervals to index past states (section 6, Directory Manager).
        """
        index = bisect_right(self._times, time)
        if index == 0:
            return None
        start = self._times[index - 1]
        end = self._times[index] if index < len(self._times) else None
        return (start, end)

    def truncate_to(self, time: int) -> int:
        """Drop associations recorded strictly after *time*; return count dropped.

        Only the recovery path uses this, to roll a cached object back to
        the state recorded by the last safe-written root.
        """
        index = bisect_right(self._times, time)
        dropped = len(self._times) - index
        del self._times[index:]
        del self._values[index:]
        return dropped

    def copy(self) -> "AssociationTable":
        """Return an independent copy of this table."""
        other = AssociationTable()
        other._times = list(self._times)
        other._values = list(self._values)
        return other
