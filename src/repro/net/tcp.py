"""Blocking TCP transport framing SEQ envelopes over real sockets.

``TcpLinkEnd`` mirrors ``repro.executor.link.LinkEnd`` exactly — the
same u32 little-endian length prefix, the same ``receive() -> None``
"nothing waiting" contract, and the same truncation semantics: a
partial frame on a *live* connection stays buffered, a partial frame on
a *closed* connection raises ``ProtocolError("truncated frame on closed
link")``.  The one new degree of freedom a socket adds is time, so
``receive`` takes a timeout budget (``None`` → the link's default) and
maps it to the existing taxonomy: an expired read budget returns
``None`` (the caller's retry loop decides), a connect that never
completes raises ``LinkTimeout``.
"""

from __future__ import annotations

import socket
import struct
import time

from ..errors import LinkTimeout, ProtocolError

#: default per-receive budget, seconds; small so retry loops stay live
DEFAULT_RECEIVE_TIMEOUT = 0.25

#: default send budget, seconds — only hit when the peer's socket
#: buffer is full and it has stopped draining (a wedged peer)
DEFAULT_SEND_TIMEOUT = 10.0

_HEADER = struct.Struct("<I")


class TcpLinkEnd:
    """One endpoint of a duplex link over a connected TCP socket."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        receive_timeout: float = DEFAULT_RECEIVE_TIMEOUT,
        send_timeout: float = DEFAULT_SEND_TIMEOUT,
        registry=None,
    ) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self.receive_timeout = receive_timeout
        self.send_timeout = send_timeout
        self.registry = registry
        self._buffer = bytearray()
        self._peer_closed = False
        self._closed = False
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_received = 0
        self.bytes_received = 0
        self._sent_at: float | None = None
        self._rtt = registry.histogram("net.rtt_ms") if registry is not None else None

    # -- sending ---------------------------------------------------------

    def send(self, frame: bytes) -> None:
        """Send one frame, surviving partial writes.

        ``socket.sendall`` under a timeout may deliver a prefix before
        raising, so the loop tracks its own offset and retries the
        remainder; a peer reset at any offset maps to the in-memory
        link's ``ProtocolError("link is closed")``.
        """
        if self._closed:
            raise ProtocolError("link is closed")
        data = _HEADER.pack(len(frame)) + frame
        view = memoryview(data)
        deadline = time.monotonic() + self.send_timeout
        offset = 0
        while offset < len(data):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._teardown()
                raise LinkTimeout("send stalled: peer stopped draining the link")
            self._sock.settimeout(remaining)
            try:
                offset += self._sock.send(view[offset:])
            except socket.timeout:
                continue
            except OSError as exc:
                self._teardown()
                raise ProtocolError("link is closed") from exc
        self.frames_sent += 1
        self.bytes_sent += len(data)
        if self._sent_at is None:
            self._sent_at = time.monotonic()
        if self.registry is not None:
            self.registry.inc("net.frames_sent")
            self.registry.inc("net.bytes_sent", len(data))

    # -- receiving -------------------------------------------------------

    def receive(self, timeout: float | None = None) -> bytes | None:
        """Receive the next complete frame, or None when the budget expires.

        Partial reads are the normal case on TCP: bytes accumulate in
        the buffer across calls until a whole length-prefixed frame is
        present.  EOF with an empty buffer marks the peer closed and
        returns None; EOF mid-frame is a truncated link.
        """
        budget = self.receive_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while True:
            frame = self._pop_frame()
            if frame is not None:
                return frame
            if self._peer_closed or self._closed:
                return None
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            self._sock.settimeout(max(remaining, 0.001))
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                return None
            except (ConnectionResetError, BrokenPipeError):
                chunk = b""
            except OSError:
                chunk = b""
            if not chunk:
                self._peer_closed = True
                if self._buffer:
                    raise ProtocolError("truncated frame on closed link")
                return None
            self._buffer += chunk

    def _pop_frame(self) -> bytes | None:
        if len(self._buffer) < 4:
            if self._buffer and self._peer_closed:
                raise ProtocolError("truncated frame on closed link")
            return None
        (length,) = _HEADER.unpack_from(self._buffer, 0)
        if len(self._buffer) < 4 + length:
            if self._peer_closed:
                raise ProtocolError("truncated frame on closed link")
            return None
        frame = bytes(self._buffer[4 : 4 + length])
        del self._buffer[: 4 + length]
        self.frames_received += 1
        self.bytes_received += 4 + length
        if self._sent_at is not None:
            elapsed_ms = (time.monotonic() - self._sent_at) * 1000.0
            self._sent_at = None
            if self._rtt is not None:
                self._rtt.observe(elapsed_ms)
        if self.registry is not None:
            self.registry.inc("net.frames_received")
            self.registry.inc("net.bytes_received", 4 + length)
        return frame

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Close the link (both directions — TCP offers no useful half)."""
        self._teardown()

    def _teardown(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    @property
    def peer_closed(self) -> bool:
        """True once the peer's outgoing direction has hit EOF."""
        return self._peer_closed or self._closed


def dial(
    host: str,
    port: int,
    *,
    timeout: float = 5.0,
    receive_timeout: float = DEFAULT_RECEIVE_TIMEOUT,
    registry=None,
) -> TcpLinkEnd:
    """Connect to a listening link endpoint, or raise ``LinkTimeout``."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except (socket.timeout, ConnectionRefusedError, OSError) as exc:
        raise LinkTimeout(f"connect to {host}:{port} failed: {exc}") from exc
    if registry is not None:
        registry.inc("net.connections")
    return TcpLinkEnd(sock, receive_timeout=receive_timeout, registry=registry)


class Listener:
    """A bound TCP listener handing out ``TcpLinkEnd``s per accept."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backlog: int = 64,
        receive_timeout: float = DEFAULT_RECEIVE_TIMEOUT,
        registry=None,
    ) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self.host, self.port = self._sock.getsockname()[:2]
        self.receive_timeout = receive_timeout
        self.registry = registry
        self._closed = False

    def accept(self, timeout: float | None = 0.5) -> TcpLinkEnd | None:
        """Accept one connection, or None when the wait budget expires."""
        if self._closed:
            return None
        self._sock.settimeout(timeout)
        try:
            sock, _ = self._sock.accept()
        except socket.timeout:
            return None
        except OSError:
            return None
        if self.registry is not None:
            self.registry.inc("net.connections")
        return TcpLinkEnd(sock, receive_timeout=self.receive_timeout, registry=self.registry)

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
