"""Asyncio TCP transport: the ``AsyncLinkEnd`` surface over a socket.

``StreamLink`` lets ``FrontDoor.serve`` run unchanged against a real
connection, and ``serve_frontdoor`` binds a door to a port with one
``asyncio.start_server`` callback per client.  Clean EOF is "peer
closed" (``receive() -> None``), EOF mid-frame is the same
``ProtocolError("truncated frame on closed link")`` the in-memory pipes
raise, and a dial that cannot complete raises ``LinkTimeout``.
"""

from __future__ import annotations

import asyncio
import struct

from ..errors import LinkTimeout, ProtocolError
from ..executor import protocol

_HEADER = struct.Struct("<I")


class StreamLink:
    """One endpoint of a duplex link over an asyncio TCP stream."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        registry=None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.registry = registry
        self._peer_closed = False
        self._closed = False
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_received = 0
        self.bytes_received = 0

    async def send(self, frame: bytes) -> None:
        """Send one length-prefixed frame (drained before returning)."""
        if self._closed:
            raise ProtocolError("link is closed")
        data = _HEADER.pack(len(frame)) + frame
        try:
            self._writer.write(data)
            await self._writer.drain()
        except (ConnectionError, RuntimeError, OSError) as exc:
            self._closed = True
            raise ProtocolError("link is closed") from exc
        self.frames_sent += 1
        self.bytes_sent += len(data)
        if self.registry is not None:
            self.registry.inc("net.frames_sent")
            self.registry.inc("net.bytes_sent", len(data))

    async def receive(self) -> bytes | None:
        """Receive the next complete frame; None once the peer closes."""
        if self._peer_closed or self._closed:
            return None
        try:
            header = await self._reader.readexactly(4)
        except asyncio.IncompleteReadError as exc:
            self._peer_closed = True
            if exc.partial:
                raise ProtocolError("truncated frame on closed link") from exc
            return None
        except (ConnectionError, OSError):
            self._peer_closed = True
            return None
        (length,) = _HEADER.unpack(header)
        try:
            frame = await self._reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            self._peer_closed = True
            raise ProtocolError("truncated frame on closed link") from exc
        except (ConnectionError, OSError):
            self._peer_closed = True
            raise ProtocolError("truncated frame on closed link") from None
        self.frames_received += 1
        self.bytes_received += 4 + length
        if self.registry is not None:
            self.registry.inc("net.frames_received")
            self.registry.inc("net.bytes_received", 4 + length)
        return frame

    def close(self) -> None:
        """Close the outgoing direction (FIN); reads may still drain."""
        self._closed = True
        try:
            self._writer.close()
        except (ConnectionError, RuntimeError, OSError):
            pass

    def abort(self) -> None:
        """Hard-close both directions immediately (RST, nothing flushed)."""
        self._closed = True
        self._peer_closed = True
        try:
            transport = self._writer.transport
            if transport is not None:
                transport.abort()
        except (ConnectionError, RuntimeError, OSError):
            pass

    @property
    def peer_closed(self) -> bool:
        return self._peer_closed or self._closed


async def open_stream_link(
    host: str,
    port: int,
    *,
    timeout: float = 5.0,
    registry=None,
) -> StreamLink:
    """Dial a listening front door, or raise ``LinkTimeout``."""
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (asyncio.TimeoutError, ConnectionRefusedError, OSError) as exc:
        raise LinkTimeout(f"connect to {host}:{port} failed: {exc}") from exc
    if registry is not None:
        registry.inc("net.connections")
    return StreamLink(reader, writer, registry=registry)


def stream_link_factory(
    host: str,
    port: int,
    token: str,
    *,
    timeout: float = 5.0,
    registry=None,
    wrap=None,
):
    """Build an async link factory that dials and sends HELLO(*token*).

    The factory is what ``AsyncHostConnection`` calls on every
    (re)connect, so each new connection re-handshakes into the same
    server-side session.  *wrap* (link → link) interposes a transport
    wrapper — e.g. ``repro.faults.FaultyTransport`` — before the HELLO,
    so even the handshake rides the faulty wire.
    """

    async def factory() -> StreamLink:
        link = await open_stream_link(host, port, timeout=timeout, registry=registry)
        if wrap is not None:
            link = wrap(link)
        await link.send(protocol.encode_hello(token))
        return link

    return factory


async def serve_frontdoor(
    door,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    registry=None,
) -> asyncio.base_events.Server:
    """Bind *door* to a TCP port; every accepted connection is served.

    Returns the ``asyncio.Server``; ``server_port(server)`` reads the
    bound port (handy with ``port=0``).  Close with ``server.close()``
    followed by ``await server.wait_closed()``; in-flight connections
    finish when their clients hang up.
    """

    async def _serve_connection(reader, writer) -> None:
        if registry is not None:
            registry.inc("net.connections")
        link = StreamLink(reader, writer, registry=registry)
        try:
            await door.serve(link)
        except asyncio.CancelledError:
            pass  # loop teardown with the connection still open
        finally:
            link.close()

    return await asyncio.start_server(_serve_connection, host, port)


def server_port(server: asyncio.base_events.Server) -> int:
    """The port a ``serve_frontdoor`` server is listening on."""
    return server.sockets[0].getsockname()[1]
