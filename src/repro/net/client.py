"""``TcpHostConnection``: the synchronous host client over a socket.

It *is* a :class:`repro.executor.executor.HostConnection` — same seq
numbering, same retry/reconnect ladder, same typed errors — whose link
factory dials TCP instead of building an in-memory pipe pair.  Every
connection (first dial and every reconnect) opens with
``HELLO(token)``, so the server binds it to the same session executor
and the replay window keeps post-reconnect resends exactly-once.
"""

from __future__ import annotations

import secrets

from ..executor import protocol
from ..executor.executor import HostConnection
from .tcp import DEFAULT_RECEIVE_TIMEOUT, dial


class TcpHostConnection(HostConnection):
    """Dial a listening front door and speak SEQ frames over TCP."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        token: str | None = None,
        connect_timeout: float = 5.0,
        receive_timeout: float = DEFAULT_RECEIVE_TIMEOUT,
        registry=None,
        **kwargs,
    ) -> None:
        self._address = (host, port)
        self.token = token or secrets.token_hex(8)
        self.connect_timeout = connect_timeout
        self.receive_timeout = receive_timeout
        self.registry = registry
        super().__init__(None, link_factory=self._dial_link, **kwargs)

    def _dial_link(self):
        link = dial(
            *self._address,
            timeout=self.connect_timeout,
            receive_timeout=self.receive_timeout,
            registry=self.registry,
        )
        link.send(protocol.encode_hello(self.token))
        # no need to await HELLO_OK: TCP is FIFO within one connection,
        # so the server processes the HELLO before anything sent after it
        return link, None

    def close(self) -> None:
        """Drop the transport (the server parks the session for resume)."""
        self.host_end.close()
