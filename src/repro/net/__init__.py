"""Real sockets for the host ↔ GemStone link (``docs/networking.md``).

The in-memory ``repro.executor.link`` / ``repro.frontdoor.alink`` pipes
model the paper's network channel; this package puts the same
length-prefixed SEQ frames on actual TCP connections:

- ``repro.net.tcp`` — blocking transport (``TcpLinkEnd``, ``dial``,
  ``Listener``) with the exact ``LinkEnd`` surface, so the synchronous
  ``HostConnection``/``RequestChannel`` machinery runs unchanged over a
  socket.
- ``repro.net.aio`` — asyncio transport (``StreamLink``,
  ``open_stream_link``, ``serve_frontdoor``) matching the
  ``AsyncLinkEnd`` surface, so ``FrontDoor`` can listen on a port.
- ``repro.net.client`` — ``TcpHostConnection``, a ``HostConnection``
  that dials, performs the HELLO resume handshake, and reconnects.
"""

from .aio import StreamLink, open_stream_link, serve_frontdoor, server_port, stream_link_factory
from .client import TcpHostConnection
from .tcp import Listener, TcpLinkEnd, dial

__all__ = [
    "Listener",
    "StreamLink",
    "TcpHostConnection",
    "TcpLinkEnd",
    "dial",
    "open_stream_link",
    "serve_frontdoor",
    "server_port",
    "stream_link_factory",
]
