"""Statement-level differential: sharded execution vs the single store.

The sharded cluster (:mod:`repro.shard`) claims to be *transparent*: a
session speaking OPAL through the sharded front end must observe exactly
what it would observe against one monolithic GemStone — same statement
results, same printStrings, same commit outcomes, same final bindings.
This oracle checks that claim the same way the query oracle checks the
calculus→algebra translation: generate a seeded workload, run it down
both paths, and demand byte-identical observations.

The generator only emits statements whose bindings co-reside on one
shard (cross-shard data flow inside a *single* statement is a routing
error by design — see ``docs/sharding.md``), but transactions freely
span shards, so the sweep exercises both the single-shard fast path and
presumed-abort 2PC.  Failures print ``python -m repro.check --oracle
sharded --seed N --case K`` reproducers, like every other oracle here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any

from ..db import GemStone
from ..errors import GemStoneError
from ..shard import ShardedGemStone
from ..shard.partition import shard_of
from .report import reproducer_command

#: binding pool size per case; names are short so the regex router and
#: the catalog both see realistic, colliding-ish identifiers
_POOL = 8


def generate_shard_workload(
    seed: int, case: int, *, shards: int, transactions: int
) -> list[list[str]]:
    """Seeded transactions of single-shard-routable OPAL statements."""
    rng = random.Random(f"{seed}.{case}.{shards}")
    keys = [f"sd{case}k{i}" for i in range(_POOL)]
    by_shard: dict[int, list[str]] = {}
    for key in keys:
        by_shard.setdefault(shard_of(key, shards), []).append(key)

    def statement() -> str:
        target = rng.choice(keys)
        kind = rng.randrange(5)
        if kind == 0:
            return f"World!{target} := {rng.randrange(100)}"
        if kind == 1:
            return f"World!{target} := 'v{rng.randrange(100)}'"
        if kind == 2:  # same-binding read-modify-write
            return (
                f"World!{target} := "
                f"(World!{target} ifNil: [0]) + {rng.randrange(9) + 1}"
            )
        if kind == 3:  # derive from a co-resident binding
            source = rng.choice(by_shard[shard_of(target, shards)])
            return f"World!{target} := (World!{source} ifNil: [-1])"
        return f"World!{target}"  # plain read

    return [
        [statement() for _ in range(rng.randint(1, 4))]
        for _ in range(transactions)
    ]


@dataclass
class ShardMismatch:
    """One divergence between the sharded path and the baseline."""

    seed: int
    case: int
    transaction: int
    what: str
    baseline: Any
    sharded: Any

    def describe(self) -> str:
        return (
            f"sharded-vs-baseline divergence in transaction "
            f"{self.transaction}: {self.what}\n"
            f"  baseline: {self.baseline!r}\n"
            f"  sharded:  {self.sharded!r}\n"
            f"  reproduce: "
            f"{reproducer_command(self.seed, self.case, oracle='sharded')}"
        )


@dataclass
class ShardedDifferentialReport:
    """The outcome of one sharded-vs-baseline case."""

    seed: int
    case: int
    shards: int
    statements: int = 0
    commits: int = 0
    cross_shard_commits: int = 0
    mismatches: list[ShardMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def digest(self) -> str:
        return sha256(
            repr((self.seed, self.case, self.shards, self.statements,
                  self.commits)).encode()
        ).hexdigest()[:12]


def _observe(session, statements: list[str]) -> dict[str, Any]:
    """Run one transaction; every observable it produces, as plain data."""
    results: list[tuple[Any, str]] = []
    try:
        for source in statements:
            value = session.execute(source)
            results.append((value, session.display(value)))
        stamp = session.commit()
        outcome = "committed" if stamp is not None else "empty"
    except GemStoneError as error:
        outcome = type(error).__name__
        session.abort()
    return {"results": results, "outcome": outcome}


def run_sharded_case(
    seed: int,
    case: int,
    *,
    shards: int = 3,
    transactions: int = 10,
    registry=None,
) -> ShardedDifferentialReport:
    """One seeded workload, run against both stores and compared."""
    report = ShardedDifferentialReport(seed=seed, case=case, shards=shards)
    workload = generate_shard_workload(
        seed, case, shards=shards, transactions=transactions
    )
    baseline = GemStone.create()
    cluster = ShardedGemStone(shard_count=shards)

    def note(transaction: int, what: str, base, shard) -> None:
        report.mismatches.append(ShardMismatch(
            seed=seed, case=case, transaction=transaction,
            what=what, baseline=base, sharded=shard,
        ))
        if registry is not None:
            registry.inc("check.sharded.mismatches")

    for t, statements in enumerate(workload):
        base = _observe(baseline.login(), statements)
        shard = _observe(cluster.login(), statements)
        report.statements += len(statements)
        if registry is not None:
            registry.inc("check.sharded.statements", len(statements))
        if base["outcome"] != shard["outcome"]:
            note(t, "commit outcome", base["outcome"], shard["outcome"])
            continue
        if base["outcome"] == "committed":
            report.commits += 1
        for i, (b, s) in enumerate(zip(base["results"], shard["results"])):
            if b[0] != s[0]:
                note(t, f"statement {i} value ({statements[i]!r})",
                     b[0], s[0])
            elif b[1] != s[1]:
                note(t, f"statement {i} display ({statements[i]!r})",
                     b[1], s[1])

    # the final state: every binding in the pool must agree
    base_reader = baseline.login()
    shard_reader = cluster.login()
    for key in (f"sd{case}k{i}" for i in range(_POOL)):
        b = base_reader.execute(f"World!{key}")
        s = shard_reader.execute(f"World!{key}")
        if b != s:
            note(-1, f"final value of World!{key}", b, s)

    report.cross_shard_commits = cluster.cross_shard_commits
    return report


def run_sharded_range(
    seed: int,
    cases: int,
    *,
    shards: int = 3,
    transactions: int = 10,
    registry=None,
) -> ShardedDifferentialReport:
    """Fold *cases* consecutive case indices into one report."""
    folded = ShardedDifferentialReport(seed=seed, case=0, shards=shards)
    for case in range(cases):
        one = run_sharded_case(
            seed, case, shards=shards, transactions=transactions,
            registry=registry,
        )
        folded.statements += one.statements
        folded.commits += one.commits
        folded.cross_shard_commits += one.cross_shard_commits
        folded.mismatches.extend(one.mismatches)
    return folded
