"""Symbolic case specifications for the differential oracle.

A :class:`CaseSpec` is a *symbolic* description of one test case: the
collections and objects to build, the mutation history to replay, the
directory create/drop events, and the queries to run.  It references
objects by stable symbolic ids (``(collection, index)``) rather than
oids, so the same spec can be rebuilt from scratch any number of times
— which is exactly what the shrinker needs, and what makes a printed
seed a complete reproducer.

Expressions are plain nested tuples (the first element is the node
kind), so specs are hashable, ``repr``-stable, and trivially rewritten
by the shrinker:

=================  ==================================================
``("const", v)``   a literal (int, str, bool, or ``None``)
``("coll", c)``    the set object of collection *c*
``("obj", c, i)``  object *i* of collection *c*'s pool
``("var", n)``     a bound query variable
``("path", b, s)`` navigation: *s* is ``((field, at_epoch|None), …)``
``("cmp", op, l, r)``   comparison (``==, !=, <, <=, >, >=``)
``("binop", op, l, r)`` arithmetic (``+, -, *``)
``("and"|"or", l, r)``, ``("not", x)``
``("exists"|"forall", var, source, condition)``
=================  ==================================================

Time pins (``at_epoch``) and query evaluation points are expressed in
*epochs* — positions in the case's mutation history — and resolved to
absolute transaction times at materialization.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional


@dataclass(frozen=True)
class CollectionSpec:
    """One labeled set plus the pool of objects that may populate it.

    ``fields`` maps field name → kind: ``"int"`` or ``"str"`` for
    scalars, or ``("ref", target_cid)`` for a reference into another
    collection's pool.  Object *i* of the pool occupies member slot
    ``m{i}`` of the set when present — one slot per object, so a member
    never appears under two aliases at once (the scan and index paths
    agree on multiplicity by construction).
    """

    cid: int
    size: int
    fields: tuple[tuple[str, Any], ...]
    #: pool indices that are members of the set in the initial state
    initial_members: tuple[int, ...]
    #: initial field values: ((obj_index, field, value_spec), ...);
    #: fields not listed start unbound (reads yield no-value)
    initial_values: tuple[tuple[int, str, Any], ...]

    def field_kind(self, name: str) -> Any:
        for field, kind in self.fields:
            if field == name:
                return kind
        raise KeyError(name)


@dataclass(frozen=True)
class QuerySpec:
    """One symbolic calculus query plus when to evaluate it.

    ``at_epoch`` dials the whole query to a past epoch (``None`` =
    now); ``eval_epochs`` are the history positions at which the
    differential oracle runs it — evaluating the same query at two
    epochs is what exercises plan-memo invalidation between them.
    """

    binders: tuple[tuple[str, tuple], ...]
    condition: Optional[tuple]
    #: an expression spec, or ``("record", ((label, spec), ...))`` for
    #: a labeled (dict) result template
    result: tuple
    at_epoch: Optional[int]
    eval_epochs: tuple[int, ...]


@dataclass(frozen=True)
class CaseSpec:
    """A complete generated test case (see module docstring)."""

    seed: int
    index: int
    n_epochs: int
    collections: tuple[CollectionSpec, ...]
    #: ordered mutations: ("field", epoch, cid, obj, field, value_spec)
    #: or ("member", epoch, cid, obj, present: bool)
    mutations: tuple[tuple, ...]
    #: ordered events: ("create"|"drop", epoch, cid, path_text)
    dir_events: tuple[tuple, ...]
    queries: tuple[QuerySpec, ...]

    def collection(self, cid: int) -> CollectionSpec:
        for spec in self.collections:
            if spec.cid == cid:
                return spec
        raise KeyError(cid)

    def with_queries(self, queries: tuple[QuerySpec, ...]) -> "CaseSpec":
        return replace(self, queries=queries)

    def with_mutations(self, mutations: tuple[tuple, ...]) -> "CaseSpec":
        return replace(self, mutations=mutations)

    def with_dir_events(self, dir_events: tuple[tuple, ...]) -> "CaseSpec":
        return replace(self, dir_events=dir_events)

    def size_measure(self) -> int:
        """A monotone size the shrinker drives down."""
        return (
            len(self.mutations)
            + len(self.dir_events)
            + len(self.queries)
            + sum(c.size + len(c.initial_values) for c in self.collections)
            + sum(_spec_size(q) for q in self.queries)
        )


def _spec_size(query: QuerySpec) -> int:
    total = sum(_expr_size(source) for _var, source in query.binders)
    if query.condition is not None:
        total += _expr_size(query.condition)
    if query.result[0] == "record":
        total += sum(_expr_size(spec) for _label, spec in query.result[1])
    else:
        total += _expr_size(query.result)
    return total


def _expr_size(node: Any) -> int:
    if not isinstance(node, tuple):
        return 1
    return 1 + sum(
        _expr_size(child) for child in node[1:] if isinstance(child, tuple)
    )


def case_key(query: QuerySpec) -> str:
    """A deterministic memoization key for one query spec.

    The spec's ``repr`` is stable (tuples, strings, ints only), so it
    plays the role the compiled block's AST identity plays in the
    production plan memo (:mod:`repro.opal.declarative`).
    """
    return repr((query.binders, query.condition, query.result, query.at_epoch))
