"""Deterministic interleaving exploration for OCC commits.

A *virtual scheduler* drives several sessions of one database through
read / write / increment programs over shared counters — no real
threads: the interleaving IS the test input, chosen by a seeded RNG (or
enumerated exhaustively for two sessions), so every run of a seed
explores the identical schedule and the event log's digest proves it.

Checked invariants, mirroring section 6's optimistic scheme:

* **read your writes, snapshot after first write** — a session's read
  returns its own staged value; before any staged write it tracks the
  live committed state, after the first write it sees the copy-on-write
  twin taken at that moment;
* **aborted sessions leave no partial state** — after every conflict
  abort, the committed counters equal the model of committed effects
  only;
* **committed histories are serializable** — replaying the committed
  bodies *serially, in commit order* over a fresh model reproduces the
  final committed state exactly.  A validation bug that let a stale
  read-modify-write commit would break this equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Optional

from ..errors import OverloadedError, TransactionConflict
from .report import reproducer_command

_MAX_ATTEMPTS = 8


@dataclass
class ScheduleReport:
    """Aggregate outcome of schedule exploration."""

    samples: int = 0
    steps: int = 0
    commits: int = 0
    aborts: int = 0
    overloads: int = 0
    problems: list[str] = field(default_factory=list)
    digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.problems

    def merge(self, other: "ScheduleReport") -> None:
        self.samples += other.samples
        self.steps += other.steps
        self.commits += other.commits
        self.aborts += other.aborts
        self.overloads += other.overloads
        self.problems.extend(other.problems)
        self.digest = sha256(
            (self.digest + other.digest).encode()
        ).hexdigest()


class _VirtualSession:
    """One session's program plus its in-flight attempt state."""

    def __init__(self, index: int, session, program: list[tuple]) -> None:
        self.index = index
        self.session = session
        self.program = program
        self.position = 0
        self.attempts = 0
        #: committed-state snapshot taken at this attempt's first write
        self.twin_snapshot: Optional[dict[int, int]] = None
        self.staged: dict[int, int] = {}
        self.done = False

    def reset_attempt(self) -> None:
        self.position = 0
        self.twin_snapshot = None
        self.staged = {}


def _counter_path(prefix: str, index: int) -> str:
    return f"{prefix}_x{index}"


def _read(vs: _VirtualSession, prefix: str, counter: int) -> Any:
    return vs.session.resolve(_counter_path(prefix, counter))


def _write(
    vs: _VirtualSession, prefix: str, counter: int, value: int,
    committed: dict[int, int],
) -> None:
    if vs.twin_snapshot is None:
        # first write copies the shared object into the workspace: reads
        # from now on see this snapshot plus the session's own writes
        vs.twin_snapshot = dict(committed)
    vs.session.assign(_counter_path(prefix, counter), value)
    vs.staged[counter] = value


def _expected_read(
    vs: _VirtualSession, counter: int, committed: dict[int, int]
) -> int:
    if counter in vs.staged:
        return vs.staged[counter]
    if vs.twin_snapshot is not None:
        return vs.twin_snapshot[counter]
    return committed[counter]


def run_schedule_case(
    database,
    seed: int,
    case: int,
    *,
    n_sessions: int = 3,
    ops_per_session: int = 4,
    n_counters: int = 3,
    schedule: Optional[list[int]] = None,
    registry=None,
) -> ScheduleReport:
    """Run one interleaving sample on *database*; check every invariant.

    ``schedule`` fixes the interleaving explicitly (used by the
    exhaustive two-session mode); by default it is drawn from the seed.
    """
    import random

    registry = registry if registry is not None else getattr(
        database.obs, "registry", None
    )
    rng = random.Random(seed * 9_999_991 + case)
    prefix = f"s{seed}_{case}"
    report = ScheduleReport(samples=1)
    events: list[tuple] = []

    setup = database.login()
    try:
        for j in range(n_counters):
            setup.assign(_counter_path(prefix, j), 0)
        setup.commit()
    finally:
        setup.close()
    committed = {j: 0 for j in range(n_counters)}

    programs = [
        _generate_program(rng, ops_per_session, n_counters)
        for _ in range(n_sessions)
    ]
    sessions = [
        _VirtualSession(i, database.login(), program)
        for i, program in enumerate(programs)
    ]
    commit_log: list[tuple[int, list[tuple]]] = []  # (session idx, ops run)

    try:
        _drive(
            database, sessions, committed, commit_log, events,
            prefix, rng, report, schedule,
        )
        _check_serializability(
            database, sessions, committed, commit_log, events,
            prefix, programs, report,
        )
    finally:
        for vs in sessions:
            vs.session.close()

    report.digest = sha256(repr(events).encode()).hexdigest()
    if registry is not None:
        registry.inc("check.schedule.samples")
        registry.inc("check.schedule.commits", report.commits)
        registry.inc("check.schedule.aborts", report.aborts)
        if report.problems:
            registry.inc("check.schedule.violations", len(report.problems))
    if report.problems:
        report.problems.append(
            "reproduce with: "
            + reproducer_command(seed, case, oracle="schedule")
        )
    return report


def _generate_program(rng, ops: int, n_counters: int) -> list[tuple]:
    program: list[tuple] = []
    for _ in range(ops):
        counter = rng.randrange(n_counters)
        kind = rng.choice(("read", "write", "incr", "incr"))
        if kind == "read":
            program.append(("read", counter))
        elif kind == "write":
            program.append(("write", counter, rng.randrange(100)))
        else:
            program.append(("incr", counter, rng.randint(1, 9)))
    return program


def _drive(
    database, sessions, committed, commit_log, events,
    prefix, rng, report, schedule,
) -> None:
    """Interleave per the schedule until every session commits or gives up."""
    cursor = 0
    while any(not vs.done for vs in sessions):
        runnable = [vs for vs in sessions if not vs.done]
        if schedule is not None and cursor < len(schedule):
            vs = sessions[schedule[cursor] % len(sessions)]
            cursor += 1
            if vs.done:
                continue
        else:
            vs = rng.choice(runnable)
        if vs.position < len(vs.program):
            _step(vs, prefix, committed, events, report)
        else:
            _try_commit(
                database, vs, prefix, committed, commit_log, events, report
            )


def _step(vs, prefix, committed, events, report) -> None:
    op = vs.program[vs.position]
    vs.position += 1
    report.steps += 1
    if op[0] == "read":
        actual = _read(vs, prefix, op[1])
        expected = _expected_read(vs, op[1], committed)
        events.append(("read", vs.index, op[1], actual))
        if actual != expected:
            report.problems.append(
                f"session {vs.index} read x{op[1]} = {actual}, expected "
                f"{expected} (staged={vs.staged}, twin={vs.twin_snapshot})"
            )
    elif op[0] == "write":
        _write(vs, prefix, op[1], op[2], committed)
        events.append(("write", vs.index, op[1], op[2]))
    else:  # incr: a read-modify-write, the OCC-interesting shape
        value = _read(vs, prefix, op[1]) + op[2]
        _write(vs, prefix, op[1], value, committed)
        events.append(("incr", vs.index, op[1], value))


def _try_commit(
    database, vs, prefix, committed, commit_log, events, report
) -> None:
    try:
        tx_time = vs.session.commit()
    except TransactionConflict:
        report.aborts += 1
        events.append(("conflict", vs.index, vs.attempts))
        _check_no_partial_state(database, prefix, committed, vs, report)
        vs.attempts += 1
        if vs.attempts >= _MAX_ATTEMPTS:
            vs.done = True  # starved out; serial replay just omits it
            events.append(("gave_up", vs.index))
        else:
            vs.reset_attempt()
        return
    except OverloadedError as error:
        report.overloads += 1
        events.append(("overloaded", vs.index))
        database.transaction_manager.backoff_clock.advance(
            error.retry_after or 1.0
        )
        vs.session.abort()
        vs.attempts += 1
        if vs.attempts >= _MAX_ATTEMPTS:
            vs.done = True
            events.append(("gave_up", vs.index))
        else:
            vs.reset_attempt()
        return
    report.commits += 1
    events.append(("commit", vs.index, tx_time))
    committed.update(vs.staged)
    commit_log.append((vs.index, list(vs.program)))
    vs.done = True


def _read_counters(database, prefix, n_counters: int) -> dict[int, int]:
    observer = database.login()
    try:
        return {
            j: observer.resolve(_counter_path(prefix, j))
            for j in range(n_counters)
        }
    finally:
        observer.close()


def _check_no_partial_state(database, prefix, committed, vs, report) -> None:
    """An aborted transaction's staged writes must be invisible."""
    visible = _read_counters(database, prefix, len(committed))
    if visible != committed:
        report.problems.append(
            f"after session {vs.index} aborted, committed state is "
            f"{visible}, expected {committed} (staged was {vs.staged})"
        )


def _check_serializability(
    database, sessions, committed, commit_log, events,
    prefix, programs, report,
) -> None:
    """Serial replay of committed bodies must equal the real final state."""
    model = {j: 0 for j in committed}
    for session_index, program in commit_log:
        for op in program:
            if op[0] == "write":
                model[op[1]] = op[2]
            elif op[0] == "incr":
                model[op[1]] = model[op[1]] + op[2]
    final = _read_counters(database, prefix, len(committed))
    if final != model:
        report.problems.append(
            f"committed history is not serializable: store has {final}, "
            f"serial replay in commit order gives {model} "
            f"(commit order {[i for i, _ in commit_log]})"
        )
    if final != committed:
        report.problems.append(
            f"effect tracking diverged: store has {final}, "
            f"tracked committed state is {committed}"
        )


def run_schedule_range(
    database,
    seed: int,
    cases: int,
    *,
    n_sessions: int = 3,
    ops_per_session: int = 4,
    registry=None,
) -> ScheduleReport:
    """Sample ``cases`` random interleavings; aggregate the reports."""
    total = ScheduleReport()
    for case in range(cases):
        total.merge(
            run_schedule_case(
                database, seed, case,
                n_sessions=n_sessions, ops_per_session=ops_per_session,
                registry=registry,
            )
        )
    return total


def exhaustive_two_session_schedules(
    database, seed: int, *, ops_per_session: int = 3, registry=None
) -> ScheduleReport:
    """Enumerate *every* interleaving of two fixed two-session programs.

    With 2 sessions × k steps (+1 commit point each) the schedule space
    is small enough to walk completely — the deterministic analogue of
    a stress test, with no luck involved.
    """
    from itertools import combinations

    total = ScheduleReport()
    slots = ops_per_session + 1  # program steps plus the commit step
    positions = range(2 * slots)
    for case, first_positions in enumerate(combinations(positions, slots)):
        schedule = [
            0 if p in set(first_positions) else 1 for p in positions
        ]
        total.merge(
            run_schedule_case(
                database, seed, case,
                n_sessions=2, ops_per_session=ops_per_session,
                schedule=schedule, registry=registry,
            )
        )
    return total
