"""The temporal oracle: history replay against a brute-force shadow.

A random transaction history runs through a real :class:`~repro.db.GemStone`
session — creates, element binds, commits — while a shadow dict records
``(commit time, value)`` pairs.  Afterwards the oracle cross-checks, for
every object × field × probe time:

* the ``@T``-pinned path read (``name@T!field@T`` from the world);
* the same read under a :class:`~repro.core.timedial.TimeDial` pin
  (``dial.at(T)`` with an unpinned path) — §5.4's equivalence claim;
* the raw association table (:meth:`AssociationTable.value_at`);
* after every commit, that ``SafeTime`` equals the commit time just
  assigned, and that a deliberately skewed SafeTime provider is clamped
  to the commit-clock ceiling (counting the clamp).

Probe times include every commit time, the instants just before and
after each, and a time before the history began — the boundary cases
interval stamps get wrong first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.timedial import TimeDial
from .report import reproducer_command

#: resolve() default distinguishing "absent at T" from any real value
ABSENT = object()


@dataclass
class TemporalReport:
    """Aggregate outcome of one or more temporal histories."""

    histories: int = 0
    commits: int = 0
    reads: int = 0
    clamps: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def merge(self, other: "TemporalReport") -> None:
        self.histories += other.histories
        self.commits += other.commits
        self.reads += other.reads
        self.clamps += other.clamps
        self.problems.extend(other.problems)


def run_temporal_case(
    database,
    seed: int,
    case: int,
    *,
    commits: int = 6,
    registry=None,
) -> TemporalReport:
    """Replay one random history on *database* and cross-check it.

    Histories are namespaced by ``(seed, case)`` so many cases can share
    one database — world element names never collide.
    """
    import random

    rng = random.Random(seed * 7_368_787 + case)
    prefix = f"h{seed}_{case}"
    report = TemporalReport(histories=1)
    registry = registry if registry is not None else getattr(
        database.obs, "registry", None
    )

    session = database.login()
    try:
        shadow = _replay(session, rng, prefix, commits, report)
        _check_reads(session, database, shadow, prefix, report)
        _check_safe_time_clamp(database, report, registry)
    finally:
        session.close()

    if registry is not None:
        registry.inc("check.temporal.histories")
        registry.inc("check.temporal.reads", report.reads)
        if report.problems:
            registry.inc("check.temporal.mismatches", len(report.problems))
    if report.problems:
        report.problems.append(
            "reproduce with: "
            + reproducer_command(seed, case, oracle="temporal")
        )
    return report


def _replay(session, rng, prefix, commits, report) -> dict:
    """Run the history; returns {obj: {"_created": t, field: [(t, v)...]}}."""
    shadow: dict[str, dict[str, Any]] = {}
    fields = ("f0", "f1", "f2")
    objects: list[str] = []
    for commit_index in range(commits):
        staged: list[tuple[str, str, int]] = []
        if commit_index == 0 or (len(objects) < 4 and rng.random() < 0.4):
            name = f"{prefix}_o{len(objects)}"
            obj = session.new("Object")
            session.assign(name, obj)
            objects.append(name)
            shadow[name] = {"_created": None}
        for name in objects:
            if name not in shadow:
                continue
            for fieldname in fields:
                if rng.random() < 0.45:
                    value = rng.randrange(1000)
                    session.assign(f"{name}!{fieldname}", value)
                    staged.append((name, fieldname, value))
        tx_time = session.commit()
        report.commits += 1
        for name in objects:
            if shadow[name]["_created"] is None:
                shadow[name]["_created"] = tx_time
        for name, fieldname, value in staged:
            shadow[name].setdefault(fieldname, []).append((tx_time, value))
        # §5.4: the state just committed is immediately safe — no other
        # running transaction can change it
        safe = session.safe_time()
        if safe != session.database.transaction_manager.clock.latest:
            report.problems.append(
                f"safe_time {safe} != commit clock after commit {tx_time}"
            )
        dialed = session.time_dial.set_safe()
        if dialed != safe:
            report.problems.append(
                f"set_safe dialed {dialed} but safe_time is {safe}"
            )
        session.time_dial.reset()
    return shadow


def _shadow_value(shadow, name, fieldname, time) -> Any:
    """What the brute-force model says ``name!field@T`` should read."""
    record = shadow.get(name)
    if record is None or record["_created"] is None:
        return ABSENT
    if time is not None and time < record["_created"]:
        return ABSENT  # the world did not know this name yet
    history = record.get(fieldname, [])
    result = ABSENT
    for t, value in history:
        if time is not None and t > time:
            break
        result = value
    return result


def _probe_times(shadow) -> list[Optional[int]]:
    commit_times = sorted({
        t
        for record in shadow.values()
        for history in record.values()
        if isinstance(history, list)
        for t, _v in history
    } | {
        record["_created"]
        for record in shadow.values()
        if record["_created"] is not None
    })
    times: set[Optional[int]] = {None}
    for t in commit_times:
        times.update((t - 1, t, t + 1))
    if commit_times:
        times.add(commit_times[0] - 10)
    return sorted((t for t in times if t is not None)) + [None]


def _check_reads(session, database, shadow, prefix, report) -> None:
    for name, record in shadow.items():
        fields = [k for k in record if k != "_created"]
        for fieldname in fields + ["f0"]:
            for time in _probe_times(shadow):
                expected = _shadow_value(shadow, name, fieldname, time)
                _check_one_read(
                    session, database, name, fieldname, time, expected, report
                )


def _check_one_read(
    session, database, name, fieldname, time, expected, report
) -> None:
    # 1. explicit @T pins on every path component
    if time is None:
        pinned_path = f"{name}!{fieldname}"
    else:
        pinned_path = f"{name}@{time}!{fieldname}@{time}"
    actual = session.resolve(pinned_path, default=ABSENT)
    report.reads += 1
    if actual != expected:
        report.problems.append(
            f"@T read {pinned_path!r}: got {actual!r}, shadow says {expected!r}"
        )
    # 2. the time-dial equivalence: dialing to T == appending @T everywhere
    with session.time_dial.at(time):
        dialed = session.resolve(f"{name}!{fieldname}", default=ABSENT)
    report.reads += 1
    if dialed != expected:
        report.problems.append(
            f"dial@{time} read {name}!{fieldname}: got {dialed!r}, "
            f"shadow says {expected!r}"
        )
    # 3. the association table itself (repro.core.history)
    if expected is not ABSENT:
        world = session.world
        obj_ref = world.value_at(name, None)
        obj = session.database.store.deref(obj_ref)
        table = obj.elements.get(fieldname)
        raw = table.value_at(time) if table is not None else None
        report.reads += 1
        if raw != expected:
            report.problems.append(
                f"association table {name}.{fieldname}@{time}: got {raw!r}, "
                f"shadow says {expected!r}"
            )


def _check_safe_time_clamp(database, report, registry) -> None:
    """A SafeTime provider ahead of the commit clock must be clamped."""
    ceiling = database.transaction_manager.clock.latest
    skewed = TimeDial(
        safe_time_provider=lambda: ceiling + 7,
        commit_time_provider=lambda: ceiling,
    )
    if registry is not None:
        skewed.on_clamp = lambda: registry.inc("check.temporal.clamps")
    dialed = skewed.set_safe()
    if dialed != ceiling:
        report.problems.append(
            f"skewed SafeTime {ceiling + 7} not clamped to ceiling {ceiling} "
            f"(got {dialed})"
        )
    if skewed.clamps != 1:
        report.problems.append(
            f"clamp counter is {skewed.clamps} after one clamped set_safe"
        )
    report.clamps += skewed.clamps


def run_temporal_range(
    database, seed: int, cases: int, *, commits: int = 6, registry=None
) -> TemporalReport:
    """Replay ``cases`` histories (sharing *database*); aggregate."""
    total = TemporalReport()
    for case in range(cases):
        total.merge(
            run_temporal_case(
                database, seed, case, commits=commits, registry=registry
            )
        )
    return total
