"""Greedy delta debugging over symbolic case specs.

A failing case from the generator can carry dozens of irrelevant
mutations, extra queries, and unused objects.  Because a
:class:`~repro.check.spec.CaseSpec` is symbolic — it rebuilds the whole
store from scratch on every run — shrinking is just rewriting the spec
and re-asking "does it still fail?".

The passes, applied to fixpoint in order:

1. keep only the first failing query;
2. drop mutations, one at a time (latest first, so histories shorten);
3. drop directory events (a drop whose create went is dropped with it);
4. remove trailing pool objects no remaining spec element references;
5. simplify the failing query's condition (``and``/``or`` → one side,
   ``not x`` → ``x``, quantifier → ``true``, whole condition → none).

Every candidate is validated by re-running the predicate, so the result
is guaranteed to still fail — a *minimal reproducer* in the ddmin
sense: no single remaining element can be removed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, Optional

from .spec import CaseSpec, CollectionSpec, QuerySpec

Predicate = Callable[[CaseSpec], bool]


def shrink_case(
    spec: CaseSpec, still_fails: Predicate, max_probes: int = 400
) -> CaseSpec:
    """Greedily minimize *spec* while ``still_fails(candidate)`` holds."""
    budget = [max_probes]

    def attempt(candidate: CaseSpec) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            return still_fails(candidate)
        except Exception:
            # a malformed candidate (e.g. a query over a dropped object)
            # is simply not a reproducer; keep shrinking elsewhere
            return False

    changed = True
    while changed and budget[0] > 0:
        changed = False
        for pass_fn in (
            _shrink_queries,
            _shrink_mutations,
            _shrink_dir_events,
            _shrink_members,
            _shrink_initial_values,
            _shrink_objects,
            _shrink_condition,
        ):
            smaller = pass_fn(spec, attempt)
            if smaller is not None:
                spec = smaller
                changed = True
    return spec


def _shrink_queries(spec: CaseSpec, attempt) -> Optional[CaseSpec]:
    if len(spec.queries) <= 1:
        return None
    for index in range(len(spec.queries)):
        candidate = spec.with_queries((spec.queries[index],))
        if attempt(candidate):
            return candidate
    return None


def _shrink_mutations(spec: CaseSpec, attempt) -> Optional[CaseSpec]:
    for index in reversed(range(len(spec.mutations))):
        mutations = spec.mutations[:index] + spec.mutations[index + 1:]
        candidate = spec.with_mutations(mutations)
        if attempt(candidate):
            return candidate
    return None


def _shrink_dir_events(spec: CaseSpec, attempt) -> Optional[CaseSpec]:
    for index in reversed(range(len(spec.dir_events))):
        removed = spec.dir_events[index]
        events = spec.dir_events[:index] + spec.dir_events[index + 1:]
        if removed[0] == "create":
            # a drop without its create is a no-op; remove it too
            events = tuple(
                e for e in events
                if not (e[0] == "drop" and e[2:] == removed[2:])
            )
        candidate = spec.with_dir_events(events)
        if attempt(candidate):
            return candidate
    return None


def _with_collection(spec: CaseSpec, smaller: CollectionSpec) -> CaseSpec:
    return replace(
        spec,
        collections=tuple(
            smaller if c.cid == smaller.cid else c for c in spec.collections
        ),
    )


def _shrink_members(spec: CaseSpec, attempt) -> Optional[CaseSpec]:
    for coll in spec.collections:
        for member in reversed(coll.initial_members):
            smaller = CollectionSpec(
                cid=coll.cid,
                size=coll.size,
                fields=coll.fields,
                initial_members=tuple(
                    i for i in coll.initial_members if i != member
                ),
                initial_values=coll.initial_values,
            )
            candidate = _with_collection(spec, smaller)
            if attempt(candidate):
                return candidate
    return None


def _shrink_initial_values(spec: CaseSpec, attempt) -> Optional[CaseSpec]:
    for coll in spec.collections:
        for index in reversed(range(len(coll.initial_values))):
            smaller = CollectionSpec(
                cid=coll.cid,
                size=coll.size,
                fields=coll.fields,
                initial_members=coll.initial_members,
                initial_values=(
                    coll.initial_values[:index] + coll.initial_values[index + 1:]
                ),
            )
            candidate = _with_collection(spec, smaller)
            if attempt(candidate):
                return candidate
    return None


def _referenced_objects(spec: CaseSpec) -> set[tuple[int, int]]:
    used: set[tuple[int, int]] = set()
    for mutation in spec.mutations:
        if mutation[0] == "member":
            used.add((mutation[2], mutation[3]))
        else:
            used.add((mutation[2], mutation[3]))
            if isinstance(mutation[5], tuple):
                used.add((mutation[5][1], mutation[5][2]))
    for coll in spec.collections:
        for obj, _field, value in coll.initial_values:
            if isinstance(value, tuple):
                used.add((value[1], value[2]))
    for query in spec.queries:
        used |= set(_objects_in(query.condition))
        used |= set(_objects_in(query.result))
        for _var, source in query.binders:
            used |= set(_objects_in(source))
    return used


def _objects_in(node) -> Iterator[tuple[int, int]]:
    if not isinstance(node, tuple) or not node:
        return
    if node[0] == "obj":
        yield (node[1], node[2])
        return
    if node[0] == "record":
        for _label, spec in node[1]:
            yield from _objects_in(spec)
        return
    for child in node[1:]:
        if isinstance(child, tuple):
            yield from _objects_in(child)


def _shrink_objects(spec: CaseSpec, attempt) -> Optional[CaseSpec]:
    """Drop each collection's highest-index object when nothing names it."""
    used = _referenced_objects(spec)
    for coll in spec.collections:
        if coll.size <= 1:
            continue
        last = coll.size - 1
        if (coll.cid, last) in used:
            continue
        smaller = CollectionSpec(
            cid=coll.cid,
            size=last,
            fields=coll.fields,
            initial_members=tuple(i for i in coll.initial_members if i != last),
            initial_values=tuple(
                (obj, fieldname, value)
                for obj, fieldname, value in coll.initial_values
                if obj != last
            ),
        )
        collections = tuple(
            smaller if c.cid == coll.cid else c for c in spec.collections
        )
        candidate = replace(spec, collections=collections)
        if attempt(candidate):
            return candidate
    return None


def _condition_candidates(node) -> Iterator:
    """Smaller conditions to try, most aggressive first."""
    yield None
    if not isinstance(node, tuple):
        return
    if node[0] in ("and", "or"):
        yield node[1]
        yield node[2]
    elif node[0] == "not":
        yield node[1]
    elif node[0] in ("exists", "forall"):
        yield ("const", True)


def _shrink_condition(spec: CaseSpec, attempt) -> Optional[CaseSpec]:
    for q_index, query in enumerate(spec.queries):
        if query.condition is None:
            continue
        for smaller in _condition_candidates(query.condition):
            candidate_query = QuerySpec(
                binders=query.binders,
                condition=smaller,
                result=query.result,
                at_epoch=query.at_epoch,
                eval_epochs=query.eval_epochs,
            )
            queries = tuple(
                candidate_query if i == q_index else q
                for i, q in enumerate(spec.queries)
            )
            candidate = spec.with_queries(queries)
            if attempt(candidate):
                return candidate
    return None
