"""Multiprocess differential: real worker processes vs in-process paths.

:mod:`repro.check.sharded` proves the in-process sharded cluster is
transparent against one monolithic GemStone.  This oracle extends the
chain one more (much less forgiving) link: the same seeded workload is
run down **three** stacks —

1. the baseline: one in-process GemStone,
2. the in-process cluster: ``ShardedGemStone`` over in-memory links,
3. the real thing: ``ProcCluster`` — worker *processes* on ``FileDisk``
   platters, every frame crossing a real TCP socket —

and every observable (statement values, printStrings, commit outcomes,
final bindings) must be byte-identical across all three.  Anything the
transport, the process boundary, or the durable platter changes about
an answer is a divergence, reproduced with ``python -m repro.check
--oracle cluster --seed N --case K``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..db import GemStone
from ..shard import ShardedGemStone
from ..shard.procs import ProcCluster
from .report import reproducer_command
from .sharded import _POOL, _observe, generate_shard_workload


@dataclass
class ClusterMismatch:
    """One divergence between the three execution stacks."""

    seed: int
    case: int
    transaction: int
    what: str
    baseline: Any
    inprocess: Any
    cluster: Any

    def describe(self) -> str:
        return (
            f"cluster divergence in transaction {self.transaction}: "
            f"{self.what}\n"
            f"  baseline:   {self.baseline!r}\n"
            f"  in-process: {self.inprocess!r}\n"
            f"  processes:  {self.cluster!r}\n"
            f"  reproduce: "
            f"{reproducer_command(self.seed, self.case, oracle='cluster')}"
        )


@dataclass
class ClusterDifferentialReport:
    """The outcome of one three-way case."""

    seed: int
    case: int
    shards: int
    statements: int = 0
    commits: int = 0
    cross_shard_commits: int = 0
    mismatches: list[ClusterMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def run_cluster_case(
    seed: int,
    case: int,
    *,
    shards: int = 2,
    transactions: int = 8,
    registry=None,
) -> ClusterDifferentialReport:
    """One seeded workload down all three stacks, compared observable
    by observable."""
    report = ClusterDifferentialReport(seed=seed, case=case, shards=shards)
    workload = generate_shard_workload(
        seed, case, shards=shards, transactions=transactions
    )
    baseline = GemStone.create()
    inprocess = ShardedGemStone(shard_count=shards)
    cluster = ProcCluster(shard_count=shards)

    def note(transaction: int, what: str, base, inproc, multi) -> None:
        report.mismatches.append(ClusterMismatch(
            seed=seed, case=case, transaction=transaction,
            what=what, baseline=base, inprocess=inproc, cluster=multi,
        ))
        if registry is not None:
            registry.inc("check.cluster.mismatches")

    try:
        for t, statements in enumerate(workload):
            base = _observe(baseline.login(), statements)
            inproc = _observe(inprocess.login(), statements)
            multi = _observe(cluster.login(), statements)
            report.statements += len(statements)
            if registry is not None:
                registry.inc("check.cluster.statements", len(statements))
            if not base["outcome"] == inproc["outcome"] == multi["outcome"]:
                note(t, "commit outcome",
                     base["outcome"], inproc["outcome"], multi["outcome"])
                continue
            if base["outcome"] == "committed":
                report.commits += 1
            for i, (b, s, m) in enumerate(
                zip(base["results"], inproc["results"], multi["results"])
            ):
                if not b[0] == s[0] == m[0]:
                    note(t, f"statement {i} value ({statements[i]!r})",
                         b[0], s[0], m[0])
                elif not b[1] == s[1] == m[1]:
                    note(t, f"statement {i} display ({statements[i]!r})",
                         b[1], s[1], m[1])

        # the final state: every binding in the pool must agree
        base_reader = baseline.login()
        inproc_reader = inprocess.login()
        multi_reader = cluster.login()
        for key in (f"sd{case}k{i}" for i in range(_POOL)):
            b = base_reader.execute(f"World!{key}")
            s = inproc_reader.execute(f"World!{key}")
            m = multi_reader.execute(f"World!{key}")
            if not b == s == m:
                note(-1, f"final value of World!{key}", b, s, m)

        report.cross_shard_commits = cluster.cross_shard_commits
        if cluster.cross_shard_commits != inprocess.cross_shard_commits:
            note(
                -1, "cross-shard commit count",
                "-", inprocess.cross_shard_commits,
                cluster.cross_shard_commits,
            )
    finally:
        cluster.close()
    return report


def run_cluster_range(
    seed: int,
    cases: int,
    *,
    shards: int = 2,
    transactions: int = 8,
    registry=None,
) -> ClusterDifferentialReport:
    """Fold *cases* consecutive case indices into one report."""
    folded = ClusterDifferentialReport(seed=seed, case=0, shards=shards)
    for case in range(cases):
        one = run_cluster_case(
            seed, case, shards=shards, transactions=transactions,
            registry=registry,
        )
        folded.statements += one.statements
        folded.commits += one.commits
        folded.cross_shard_commits += one.cross_shard_commits
        folded.mismatches.extend(one.mismatches)
    return folded
