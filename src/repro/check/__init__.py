"""``repro.check`` — model-based correctness oracles for the database.

The paper's central semantic claims are equivalences: a declarative
select block compiled through calculus→algebra translation (§3, §5.1)
must return the same set as naive evaluation, and a temporal read
``X!a@T`` must equal what the association tables recorded at commit
time (§5.3, §5.4).  This package *checks* those equivalences under
generated workloads instead of assuming them:

* :mod:`~repro.check.generate` — a seeded generator for random STDM
  instances (labeled sets, aliases, nested values, mutation histories)
  and random calculus queries including ∃/∀ brackets;
* :mod:`~repro.check.reference` — a deliberately-naive evaluator over a
  pure-Python shadow model, sharing no code with the query engine;
* :mod:`~repro.check.differential` — runs every generated query four
  ways (reference, uncached plan, memoized plan, optimized plan) and
  demands identical results;
* :mod:`~repro.check.shrink` — greedy delta debugging: a failing case
  is reduced to a minimal reproducer before it is reported;
* :mod:`~repro.check.temporal` — replays random transaction histories
  against a brute-force shadow and cross-checks ``@T`` reads, TimeDial
  pins, and SafeTime clamps;
* :mod:`~repro.check.schedule` — a deterministic (single-threaded)
  interleaving explorer for OCC commits: committed histories must be
  serializable and aborted sessions must leave no partial state.

Every oracle is a pure function of its seed — the same conventions as
:mod:`repro.faults.plan` — so any failure is reproducible with
``python -m repro.check --seed N --case K``.  See ``docs/testing.md``.
"""

from .differential import (
    CheckFailure,
    DifferentialReport,
    Mismatch,
    PlanMemo,
    run_differential_case,
    run_differential_range,
)
from .generate import generate_case
from .reference import ShadowStore, evaluate_reference
from .report import reproducer_command
from .schedule import ScheduleReport, run_schedule_case, run_schedule_range
from .sharded import (
    ShardMismatch,
    ShardedDifferentialReport,
    generate_shard_workload,
    run_sharded_case,
    run_sharded_range,
)
from .shrink import shrink_case
from .soak import run_soak
from .spec import CaseSpec, CollectionSpec, QuerySpec, case_key
from .temporal import TemporalReport, run_temporal_case, run_temporal_range

__all__ = [
    "CaseSpec",
    "CheckFailure",
    "CollectionSpec",
    "DifferentialReport",
    "Mismatch",
    "PlanMemo",
    "QuerySpec",
    "ScheduleReport",
    "ShadowStore",
    "ShardMismatch",
    "ShardedDifferentialReport",
    "TemporalReport",
    "case_key",
    "evaluate_reference",
    "generate_case",
    "generate_shard_workload",
    "reproducer_command",
    "run_differential_case",
    "run_differential_range",
    "run_schedule_case",
    "run_schedule_range",
    "run_sharded_case",
    "run_sharded_range",
    "run_soak",
    "run_temporal_case",
    "run_temporal_range",
    "shrink_case",
]
