"""CLI reproducer entry point: ``python -m repro.check --seed N --case K``.

Every oracle failure prints exactly this invocation, so a reported bug
can be replayed (and shrunk) with one copy-paste.  Exit status is 0 when
the case passes, 1 when the oracle still fails — so the reproducer
doubles as a regression guard in shell pipelines.
"""

from __future__ import annotations

import argparse
import sys

from .cluster import run_cluster_case, run_cluster_range
from .differential import PlanMemo, run_differential_case
from .generate import generate_case
from .report import describe_case
from .schedule import run_schedule_case
from .sharded import run_sharded_case
from .shrink import shrink_case
from .soak import run_soak
from .temporal import run_temporal_case


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Replay one generated oracle case (or a soak range).",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--case", type=int, default=None,
                        help="case index; omit to soak a whole range")
    parser.add_argument(
        "--oracle",
        choices=("differential", "temporal", "schedule", "sharded",
                 "cluster"),
        default="differential",
    )
    parser.add_argument(
        "--bug", choices=("stale-memo", "skip-maintenance"), default=None,
        help="inject a known bug (test-only) so the oracle must fail",
    )
    parser.add_argument(
        "--shrink", action="store_true",
        help="on failure, print the minimal shrunk case spec",
    )
    parser.add_argument("--cases", type=int, default=20,
                        help="range size when --case is omitted")
    return parser


def _run_differential(args) -> int:
    spec = generate_case(args.seed, args.case)
    memo = PlanMemo(ignore_epochs=args.bug == "stale-memo")
    report = run_differential_case(
        spec,
        memo=memo,
        skip_maintenance=args.bug == "skip-maintenance",
    )
    if report.ok:
        print(
            f"ok: seed={args.seed} case={args.case} "
            f"{report.evaluations} evaluations agree on all five paths"
        )
        return 0
    for mismatch in report.mismatches:
        print(mismatch.describe())
    if args.shrink:
        def still_fails(candidate) -> bool:
            rerun = run_differential_case(
                candidate,
                memo=PlanMemo(ignore_epochs=args.bug == "stale-memo"),
                skip_maintenance=args.bug == "skip-maintenance",
                stop_at_first=True,
            )
            return not rerun.ok

        print("\nshrunk reproducer:")
        print(describe_case(shrink_case(spec, still_fails)))
    return 1


def _database():
    from ..db import GemStone

    return GemStone.create(track_count=256, track_size=2048)


def _run_temporal(args) -> int:
    report = run_temporal_case(_database(), args.seed, args.case)
    if report.ok:
        print(
            f"ok: seed={args.seed} case={args.case} "
            f"{report.reads} temporal reads agree with the shadow"
        )
        return 0
    for problem in report.problems:
        print(problem)
    return 1


def _run_sharded(args) -> int:
    report = run_sharded_case(args.seed, args.case)
    if report.ok:
        print(
            f"ok: seed={args.seed} case={args.case} "
            f"{report.statements} statements agree on both stores "
            f"({report.commits} commits, "
            f"{report.cross_shard_commits} cross-shard)"
        )
        return 0
    for mismatch in report.mismatches:
        print(mismatch.describe())
    return 1


def _run_cluster(args) -> int:
    report = run_cluster_case(args.seed, args.case)
    if report.ok:
        print(
            f"ok: seed={args.seed} case={args.case} "
            f"{report.statements} statements agree across the baseline, "
            f"the in-process cluster, and real worker processes "
            f"({report.commits} commits, "
            f"{report.cross_shard_commits} cross-shard)"
        )
        return 0
    for mismatch in report.mismatches:
        print(mismatch.describe())
    return 1


def _run_schedule(args) -> int:
    report = run_schedule_case(_database(), args.seed, args.case)
    if report.ok:
        print(
            f"ok: seed={args.seed} case={args.case} "
            f"{report.commits} commits / {report.aborts} aborts, "
            f"history serializable (digest {report.digest[:12]})"
        )
        return 0
    for problem in report.problems:
        print(problem)
    return 1


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.case is None:
        if args.oracle == "cluster":
            report = run_cluster_range(args.seed, args.cases)
            if report.ok:
                print(
                    f"ok: seed={args.seed} cases={args.cases} "
                    f"{report.statements} statements agree across all "
                    f"three stacks ({report.commits} commits, "
                    f"{report.cross_shard_commits} cross-shard)"
                )
                return 0
            for mismatch in report.mismatches:
                print(mismatch.describe())
            return 1
        metrics = run_soak(args.seed, diff_cases=args.cases)
        for key, value in sorted(metrics.items()):
            if key != "problem_details":
                print(f"{key}: {value}")
        return 0
    if args.oracle == "differential":
        return _run_differential(args)
    if args.oracle == "temporal":
        return _run_temporal(args)
    if args.oracle == "sharded":
        return _run_sharded(args)
    if args.oracle == "cluster":
        return _run_cluster(args)
    return _run_schedule(args)


if __name__ == "__main__":
    sys.exit(main())
