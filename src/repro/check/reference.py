"""The deliberately-naive reference side of the differential oracle.

:class:`ShadowStore` is a brute-force temporal object model — plain
dicts of ``field → [(time, value), …]`` lists, linear scans, no
directories, no caches, no plan machinery.  It shares *no code* with
:mod:`repro.stdm` or :mod:`repro.core`: the semantics are re-derived
from the paper here (no-value fails comparisons, members are the live
non-nil element values of a set at a time, a path step pinned ``@T``
reads that state, ∀ is vacuously true over no-value), so agreement with
the production evaluation paths is evidence, not tautology.

Values in the shadow are symbolic: objects are ``("obj", cid, i)``
tuples, collections are ``("coll", cid)``, nil is ``None``.  The
differential runner maps real oids onto the same symbols before
comparing, so both sides canonicalize to identical strings.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from .spec import CaseSpec, QuerySpec

#: "this field has no recorded value at that time" (distinct from nil)
SHADOW_MISSING = object()

#: "this path did not resolve" — the calculus's no-value
SHADOW_NOVALUE = object()


class ShadowStore:
    """A pure-Python temporal model mirroring one materialized case."""

    def __init__(self, spec: CaseSpec) -> None:
        self.spec = spec
        #: epoch number -> absolute commit time, shared with the replayer
        #: (spec pins name epochs; the history records absolute times)
        self.epoch_times: list[int] = []
        #: symbolic id -> field -> [(time, value), ...] in time order
        self.tables: dict[Any, dict[str, list[tuple[int, Any]]]] = {}
        #: per collection, the slot order (mirrors alias insertion order)
        self.slots: dict[int, list[int]] = {}
        for coll in spec.collections:
            self.tables[("coll", coll.cid)] = {}
            self.slots[coll.cid] = list(range(coll.size))
            for i in range(coll.size):
                self.tables[("obj", coll.cid, i)] = {}

    # -- recording ---------------------------------------------------------

    def record(self, target: Any, field: str, time: int, value: Any) -> None:
        history = self.tables[target].setdefault(field, [])
        if history and history[-1][0] == time:
            history[-1] = (time, value)
        else:
            history.append((time, value))

    def record_member(self, cid: int, obj: int, time: int, present: bool) -> None:
        value = ("obj", cid, obj) if present else None
        self.record(("coll", cid), f"m{obj}", time, value)

    def epoch_time(self, epoch: int) -> int:
        """Absolute time an ``@epoch`` pin names (epochs commit in order)."""
        if epoch < len(self.epoch_times):
            return self.epoch_times[epoch]
        base = self.epoch_times[0] if self.epoch_times else 0
        return base + epoch

    # -- reads -------------------------------------------------------------

    def value_at(self, target: Any, field: str, time: Optional[int]) -> Any:
        history = self.tables.get(target, {}).get(field)
        if not history:
            return SHADOW_MISSING
        if time is None:
            return history[-1][1]
        result = SHADOW_MISSING
        for t, value in history:  # deliberately linear: this is the oracle
            if t > time:
                break
            result = value
        return result

    def members(self, cid: int, time: Optional[int]) -> Iterator[tuple]:
        for slot in self.slots[cid]:
            value = self.value_at(("coll", cid), f"m{slot}", time)
            if value is SHADOW_MISSING or value is None:
                continue
            yield value


# -- expression evaluation ---------------------------------------------------


def _is_obj(value: Any) -> bool:
    return isinstance(value, tuple) and value and value[0] in ("obj", "coll")


def _shadow_equal(a: Any, b: Any) -> bool:
    """Entity identity, re-deriving §3's equality: objects compare by
    identity, and no-value fails every comparison — including ``==``
    against another no-value."""
    if a is SHADOW_NOVALUE or b is SHADOW_NOVALUE:
        return False
    return a == b


def _eval_path(
    shadow: ShadowStore, base: Any, steps: tuple, time: Optional[int]
) -> Any:
    current = base
    if current is SHADOW_NOVALUE:
        return SHADOW_NOVALUE
    for name, at_time in steps:
        if not _is_obj(current):
            return SHADOW_NOVALUE
        step_time = (
            shadow.epoch_time(at_time) if at_time is not None else time
        )
        value = shadow.value_at(current, name, step_time)
        if value is SHADOW_MISSING:
            return SHADOW_NOVALUE
        current = value
    return current


_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


def _eval_expr(
    shadow: ShadowStore, node: tuple, time: Optional[int], binding: dict
) -> Any:
    kind = node[0]
    if kind == "const":
        return node[1]
    if kind == "coll":
        return ("coll", node[1])
    if kind == "obj":
        return ("obj", node[1], node[2])
    if kind == "var":
        return binding[node[1]]
    if kind == "path":
        base = _eval_expr(shadow, node[1], time, binding)
        return _eval_path(shadow, base, node[2], time)
    if kind == "cmp":
        return _eval_compare(shadow, node, time, binding)
    if kind == "binop":
        left = _eval_expr(shadow, node[2], time, binding)
        right = _eval_expr(shadow, node[3], time, binding)
        if left is SHADOW_NOVALUE or right is SHADOW_NOVALUE:
            return SHADOW_NOVALUE
        return _BINOPS[node[1]](left, right)
    if kind == "and":
        return bool(_eval_expr(shadow, node[1], time, binding)) and bool(
            _eval_expr(shadow, node[2], time, binding)
        )
    if kind == "or":
        return bool(_eval_expr(shadow, node[1], time, binding)) or bool(
            _eval_expr(shadow, node[2], time, binding)
        )
    if kind == "not":
        return not bool(_eval_expr(shadow, node[1], time, binding))
    if kind in ("exists", "forall"):
        return _eval_quantifier(shadow, node, time, binding)
    raise ValueError(f"unknown spec node {kind!r}")


def _eval_compare(shadow, node, time, binding) -> bool:
    _kind, op, left_spec, right_spec = node
    left = _eval_expr(shadow, left_spec, time, binding)
    right = _eval_expr(shadow, right_spec, time, binding)
    if op == "==":
        return _shadow_equal(left, right)
    if left is SHADOW_NOVALUE or right is SHADOW_NOVALUE:
        return False  # no-value fails every ordering and every !=
    if op == "!=":
        return not _shadow_equal(left, right)
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _eval_quantifier(shadow, node, time, binding) -> bool:
    kind, var, source_spec, condition = node
    source = _eval_expr(shadow, source_spec, time, binding)
    if source is SHADOW_NOVALUE:
        return kind == "forall"  # ∀ is vacuously true over no-value
    assert _is_obj(source) and source[0] == "coll"
    inner = dict(binding)
    for member in shadow.members(source[1], time):
        inner[var] = member
        holds = bool(_eval_expr(shadow, condition, time, inner))
        if kind == "exists" and holds:
            return True
        if kind == "forall" and not holds:
            return False
    return kind == "forall"


# -- query evaluation --------------------------------------------------------


def evaluate_reference(
    shadow: ShadowStore, query: QuerySpec, time: Optional[int]
) -> list[Any]:
    """Nested-loop evaluation of *query* against the shadow at *time*.

    Returns raw (un-canonicalized) rows: symbolic ids, scalars,
    :data:`SHADOW_NOVALUE`, or dicts for record templates.
    """
    rows: list[Any] = []
    _bind_loop(shadow, query, time, 0, {}, rows)
    return rows


def _bind_loop(shadow, query, time, depth, binding, rows) -> None:
    if depth == len(query.binders):
        if query.condition is None or bool(
            _eval_expr(shadow, query.condition, time, binding)
        ):
            rows.append(_construct(shadow, query, time, binding))
        return
    var, source_spec = query.binders[depth]
    source = _eval_expr(shadow, source_spec, time, binding)
    if source is SHADOW_NOVALUE or source is None:
        return
    assert _is_obj(source) and source[0] == "coll"
    for member in shadow.members(source[1], time):
        binding[var] = member
        _bind_loop(shadow, query, time, depth + 1, binding, rows)
    binding.pop(var, None)


def _construct(shadow, query, time, binding) -> Any:
    if query.result[0] == "record":
        return {
            label: _eval_expr(shadow, spec, time, binding)
            for label, spec in query.result[1]
        }
    return _eval_expr(shadow, query.result, time, binding)
