"""Reproducer formatting: every failure prints how to re-run itself."""

from __future__ import annotations

from .spec import CaseSpec


def reproducer_command(
    seed: int,
    case: int,
    oracle: str = "differential",
    bug: str | None = None,
) -> str:
    """The copy-pasteable command that replays one failing case."""
    command = f"python -m repro.check --seed {seed} --case {case}"
    if oracle != "differential":
        command += f" --oracle {oracle}"
    if bug is not None:
        command += f" --bug {bug}"
    return command


def describe_case(spec: CaseSpec) -> str:
    """A compact, human-readable dump of one (usually shrunk) case."""
    lines = [
        f"case seed={spec.seed} index={spec.index} epochs={spec.n_epochs}",
    ]
    for coll in spec.collections:
        fields = ", ".join(f"{name}:{kind}" for name, kind in coll.fields)
        lines.append(
            f"  collection {coll.cid}: {coll.size} objects [{fields}] "
            f"members={list(coll.initial_members)}"
        )
        for obj, fieldname, value in coll.initial_values:
            lines.append(f"    init ({coll.cid}.{obj}).{fieldname} = {value!r}")
    for mutation in spec.mutations:
        lines.append(f"  epoch {mutation[1]}: {mutation!r}")
    for event in spec.dir_events:
        lines.append(f"  epoch {event[1]}: {event[0]} directory {event[2]}!{event[3]}")
    for index, query in enumerate(spec.queries):
        lines.append(
            f"  query {index}: binders={query.binders!r} "
            f"where={query.condition!r} result={query.result!r} "
            f"at_epoch={query.at_epoch} eval_epochs={query.eval_epochs}"
        )
    return "\n".join(lines)
