"""Seeded generation of random STDM instances and calculus queries.

Everything here is a pure function of ``(seed, case index)`` — the same
determinism contract as :class:`repro.faults.plan.FaultPlan` — so a
failing case prints its coordinates and nothing else needs saving.

The generated universe deliberately stays inside the semantics both
evaluation families define identically:

* each field has one fixed scalar type (mixed-type ordering comparisons
  would raise in the naive evaluator but rank-compare in a directory);
* an object occupies at most one member slot of a set at a time, so
  scans and index probes agree on multiplicity;
* reference fields may be rebound or nil'd, scalar fields are never
  bound to ``nil`` (ordering against ``nil`` is a type error);
* some fields start unbound, so paths genuinely produce no-value.

Within those rules the generator is adversarial: nested discriminators,
time-pinned path steps, ∃/∀ brackets over second collections, equality
join conjuncts between the two binders (exercising hash-join fusion and
index nested-loop joins), directory creation *mid-history* (exercising
pre-build temporal fallbacks) and directory drops (exercising plan-memo
invalidation).
"""

from __future__ import annotations

import random
from typing import Any, Optional

from .spec import CaseSpec, CollectionSpec, QuerySpec

_INT_POOL = tuple(range(0, 55, 5))
_STR_POOL = ("ada", "bob", "cy", "dee", "eve", "fay", "gus")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_VAR_NAMES = ("e", "d", "m")


def _rng_for(seed: int, index: int) -> random.Random:
    return random.Random(seed * 1_000_003 + index)


def generate_case(seed: int, index: int, queries_per_case: int = 3) -> CaseSpec:
    """Build the ``index``-th case of ``seed``'s deterministic stream."""
    rng = _rng_for(seed, index)
    collections = _generate_collections(rng)
    n_epochs = rng.randint(2, 5)
    dir_events = _generate_dir_events(rng, collections, n_epochs)
    mutations = _generate_mutations(rng, collections, n_epochs, dir_events)
    queries = tuple(
        _generate_query(rng, collections, n_epochs, dir_events)
        for _ in range(queries_per_case)
    )
    return CaseSpec(
        seed=seed,
        index=index,
        n_epochs=n_epochs,
        collections=collections,
        mutations=mutations,
        dir_events=dir_events,
        queries=queries,
    )


# -- instances ---------------------------------------------------------------


def _generate_collections(rng: random.Random) -> tuple[CollectionSpec, ...]:
    count = rng.choice((1, 2, 2, 3))
    specs = []
    for cid in range(count):
        size = rng.randint(2, 6)
        fields: list[tuple[str, Any]] = [("i0", "int")]
        if rng.random() < 0.8:
            fields.append(("s0", "str"))
        if rng.random() < 0.5:
            fields.append(("i1", "int"))
        if count > 1 and rng.random() < 0.7:
            target = rng.choice([c for c in range(count) if c != cid])
            fields.append(("r0", ("ref", target)))
        initial_members = tuple(
            i for i in range(size) if rng.random() < 0.85
        )
        specs.append(
            CollectionSpec(
                cid=cid,
                size=size,
                fields=tuple(fields),
                initial_members=initial_members,
                initial_values=(),  # filled below, needs all pools sized
            )
        )
    # initial values may reference any pool, so fill them second
    filled = []
    for spec in specs:
        values = []
        for i in range(spec.size):
            for field, kind in spec.fields:
                if rng.random() < 0.15:
                    continue  # leave unbound: a genuine no-value source
                values.append((i, field, _field_value(rng, kind, specs)))
        filled.append(
            CollectionSpec(
                cid=spec.cid,
                size=spec.size,
                fields=spec.fields,
                initial_members=spec.initial_members,
                initial_values=tuple(values),
            )
        )
    return tuple(filled)


def _field_value(rng: random.Random, kind: Any, specs) -> Any:
    if kind == "int":
        return rng.choice(_INT_POOL)
    if kind == "str":
        return rng.choice(_STR_POOL)
    _tag, target = kind
    target_spec = specs[target]
    if rng.random() < 0.15:
        return None  # nil reference
    return ("obj", target, rng.randrange(target_spec.size))


def _generate_mutations(
    rng: random.Random, collections, n_epochs: int, dir_events=()
) -> tuple[tuple, ...]:
    mutations: list[tuple] = []
    for epoch in range(1, n_epochs + 1):
        for _ in range(rng.randint(0, 4)):
            spec = rng.choice(collections)
            obj = rng.randrange(spec.size)
            if rng.random() < 0.35:
                mutations.append(
                    ("member", epoch, spec.cid, obj, rng.random() < 0.5)
                )
            else:
                field, kind = rng.choice(spec.fields)
                value = _field_value(rng, kind, collections)
                mutations.append(("field", epoch, spec.cid, obj, field, value))
    # after a directory drop, churn its keyed field: exactly the window
    # where a stale cached plan would keep probing the dead directory
    for event in dir_events:
        if event[0] != "drop" or event[1] >= n_epochs:
            continue
        _kind, dropped, cid, path_text = event
        spec = collections[cid]
        fields = dict(spec.fields)
        field = path_text.split("!")[0]
        kind = fields.get(field)
        if kind is None or rng.random() < 0.3:
            continue
        for _ in range(rng.randint(1, 2)):
            mutations.append((
                "field", rng.randint(dropped + 1, n_epochs), cid,
                rng.randrange(spec.size), field,
                _field_value(rng, kind, collections),
            ))
    return tuple(mutations)


def _indexable_paths(spec: CollectionSpec, collections) -> list[str]:
    paths = []
    for field, kind in spec.fields:
        if kind in ("int", "str"):
            paths.append(field)
        elif isinstance(kind, tuple):
            target = collections[kind[1]]
            paths.extend(
                f"{field}!{inner}"
                for inner, inner_kind in target.fields
                if inner_kind in ("int", "str")
            )
            paths.append(field)  # index on the reference itself
    return paths


def _generate_dir_events(
    rng: random.Random, collections, n_epochs: int
) -> tuple[tuple, ...]:
    events: list[tuple] = []
    for _ in range(rng.choice((1, 1, 2))):
        if rng.random() < 0.15:
            continue
        spec = rng.choice(collections)
        paths = _indexable_paths(spec, collections)
        if not paths:
            continue
        path = rng.choice(paths)
        if any(e[2] == spec.cid and e[3] == path for e in events):
            continue  # one directory per (owner, path)
        created = rng.randint(0, n_epochs - 1)
        events.append(("create", created, spec.cid, path))
        if rng.random() < 0.35:
            dropped = rng.randint(created + 1, n_epochs)
            events.append(("drop", dropped, spec.cid, path))
    return tuple(sorted(events, key=lambda e: (e[1], e[0] == "drop", e[2])))


# -- queries -----------------------------------------------------------------


def _scalar_fields(spec: CollectionSpec) -> list[tuple[str, str]]:
    return [(f, k) for f, k in spec.fields if k in ("int", "str")]


def _paths_by_type(
    spec: CollectionSpec, collections
) -> list[tuple[tuple, str]]:
    """(path steps, value type) pairs reachable from a member of *spec*."""
    out: list[tuple[tuple, str]] = []
    for field, kind in spec.fields:
        if kind in ("int", "str"):
            out.append((((field, None),), kind))
        elif isinstance(kind, tuple):
            out.append((((field, None),), "ref"))
            target = collections[kind[1]]
            out.extend(
                (((field, None), (inner, None)), inner_kind)
                for inner, inner_kind in target.fields
                if inner_kind in ("int", "str")
            )
    return out


def _const_for(rng: random.Random, value_type: str, collections) -> tuple:
    if value_type == "int":
        return ("const", rng.choice(_INT_POOL))
    if value_type == "str":
        return ("const", rng.choice(_STR_POOL))
    spec = rng.choice(collections)
    if rng.random() < 0.2:
        return ("const", None)
    return ("obj", spec.cid, rng.randrange(spec.size))


def _maybe_pin(
    rng: random.Random, steps: tuple, max_epoch: int
) -> tuple:
    """Occasionally pin path steps to a past epoch (``a@T`` syntax)."""
    if rng.random() >= 0.2:
        return steps
    pinned = []
    for name, _at in steps:
        at = rng.randint(0, max_epoch) if rng.random() < 0.6 else None
        pinned.append((name, at))
    return tuple(pinned)


def _atom(
    rng: random.Random,
    var: str,
    spec: CollectionSpec,
    collections,
    max_epoch: int,
    other: Optional[tuple[str, CollectionSpec]] = None,
) -> Optional[tuple]:
    """One comparison over *var* (possibly against *other*'s variable)."""
    paths = _paths_by_type(spec, collections)
    if not paths:
        return None
    steps, value_type = rng.choice(paths)
    steps = _maybe_pin(rng, steps, max_epoch)
    left = ("path", ("var", var), steps)
    ops = ("==", "!=") if value_type == "ref" else _CMP_OPS
    op = rng.choice(ops)
    if other is not None and rng.random() < 0.4:
        other_var, other_spec = other
        candidates = [
            (s, t)
            for s, t in _paths_by_type(other_spec, collections)
            if t == value_type
        ]
        if candidates:
            o_steps, _ = rng.choice(candidates)
            right = ("path", ("var", other_var), _maybe_pin(rng, o_steps, max_epoch))
            return ("cmp", op, left, right)
    right = _const_for(rng, value_type, collections)
    if value_type == "int" and rng.random() < 0.15:
        right = ("binop", rng.choice(("+", "-")), right,
                 ("const", rng.choice((1, 2, 5))))
    return ("cmp", op, left, right)


def _quantifier(
    rng: random.Random,
    outer_var: str,
    outer_spec: CollectionSpec,
    collections,
    max_epoch: int,
) -> Optional[tuple]:
    inner_spec = rng.choice(collections)
    inner_var = "q"
    inner = _atom(
        rng, inner_var, inner_spec, collections, max_epoch,
        other=(outer_var, outer_spec),
    )
    if inner is None:
        return None
    kind = rng.choice(("exists", "forall"))
    return (kind, inner_var, ("coll", inner_spec.cid), inner)


def _directory_atom(
    rng: random.Random, var: str, spec: CollectionSpec, collections,
    dir_events,
) -> Optional[tuple]:
    """An atom over one of *spec*'s directory paths, in the exact
    ``var!path op const`` shape the optimizer matches — so generated
    queries actually exercise (and, across drops, invalidate) plans."""
    dir_paths = [
        e[3] for e in dir_events if e[0] == "create" and e[2] == spec.cid
    ]
    if not dir_paths:
        return None
    names = rng.choice(dir_paths).split("!")
    steps = tuple((name, None) for name in names)
    value_type: Any = None
    fields = dict(spec.fields)
    for name in names:
        kind = fields.get(name)
        if isinstance(kind, tuple):
            value_type = "ref"
            fields = dict(collections[kind[1]].fields)
        else:
            value_type = kind
    ops = ("==", "!=") if value_type == "ref" else ("==", "==", "<=", ">")
    return ("cmp", rng.choice(ops), ("path", ("var", var), steps),
            _const_for(rng, value_type, collections))


def _join_atom(
    rng: random.Random,
    var: str,
    spec: CollectionSpec,
    other_var: str,
    other_spec: CollectionSpec,
    collections,
    max_epoch: int,
) -> Optional[tuple]:
    """An equality join conjunct ``var!p == other_var!p'`` over matching
    value types — exactly the shape join fusion rewrites into a
    :class:`~repro.stdm.algebra.HashJoin` (or an index nested-loop join
    when a directory covers ``var!p``)."""
    other_paths = _paths_by_type(other_spec, collections)
    pairs = [
        (steps, o_steps)
        for steps, value_type in _paths_by_type(spec, collections)
        for o_steps, other_type in other_paths
        if value_type == other_type
    ]
    if not pairs:
        return None
    steps, other_steps = rng.choice(pairs)
    left = ("path", ("var", var), _maybe_pin(rng, steps, max_epoch))
    right = ("path", ("var", other_var), _maybe_pin(rng, other_steps, max_epoch))
    if rng.random() < 0.5:
        left, right = right, left
    return ("cmp", "==", left, right)


def _generate_query(
    rng: random.Random, collections, n_epochs: int, dir_events=()
) -> QuerySpec:
    n_binders = 1 if len(collections) == 1 or rng.random() < 0.5 else 2
    binders = []
    binder_specs = []
    for b in range(n_binders):
        spec = rng.choice(collections)
        binders.append((_VAR_NAMES[b], ("coll", spec.cid)))
        binder_specs.append(spec)

    eval_epochs = tuple(sorted(rng.sample(
        range(n_epochs + 1), k=min(2, n_epochs + 1)
    )))
    max_epoch = eval_epochs[0]  # pins must be visible at every eval point
    at_epoch = rng.randint(0, max_epoch) if rng.random() < 0.3 else None

    atoms: list[tuple] = []
    if rng.random() < 0.5:
        indexed = _directory_atom(
            rng, _VAR_NAMES[0], binder_specs[0], collections, dir_events
        )
        if indexed is not None:
            atoms.append(indexed)
    for b, spec in enumerate(binder_specs):
        var = _VAR_NAMES[b]
        # favor the indexable shape the optimizer looks for: var!path op const
        for _ in range(rng.choice((1, 1, 2))):
            other = None
            if b > 0 and rng.random() < 0.5:
                other = (_VAR_NAMES[0], binder_specs[0])
            atom = _atom(rng, var, spec, collections, max_epoch, other)
            if atom is not None:
                atoms.append(atom)
    if n_binders == 2 and rng.random() < 0.6:
        join = _join_atom(
            rng, _VAR_NAMES[1], binder_specs[1],
            _VAR_NAMES[0], binder_specs[0], collections, max_epoch,
        )
        if join is not None:
            atoms.append(join)
    if rng.random() < 0.35:
        quantified = _quantifier(
            rng, _VAR_NAMES[0], binder_specs[0], collections, max_epoch
        )
        if quantified is not None:
            atoms.append(quantified)
    condition: Optional[tuple] = None
    for atom in atoms:
        if rng.random() < 0.12:
            atom = ("not", atom)
        if condition is None:
            condition = atom
        else:
            condition = (rng.choice(("and", "and", "or")), condition, atom)

    result = _generate_result(rng, binder_specs, collections, max_epoch)
    return QuerySpec(
        binders=tuple(binders),
        condition=condition,
        result=result,
        at_epoch=at_epoch,
        eval_epochs=eval_epochs,
    )


def _generate_result(
    rng: random.Random, binder_specs, collections, max_epoch: int
) -> tuple:
    var = _VAR_NAMES[0]
    spec = binder_specs[0]
    choice = rng.random()
    if choice < 0.3:
        return ("var", var)
    paths = _paths_by_type(spec, collections)
    if not paths:
        return ("var", var)
    steps, _type = rng.choice(paths)
    single = ("path", ("var", var), _maybe_pin(rng, steps, max_epoch))
    if choice < 0.8 or len(paths) < 2:
        return single
    other_steps, _t = rng.choice(paths)
    return ("record", (
        ("a", single),
        ("b", ("path", ("var", var), other_steps)),
    ))
