"""One-call soak: all four oracles over a seed range, with a digest.

``run_soak`` is the engine behind ``benchmarks/bench_check_soak.py`` and
the CI ``check-soak`` job: it runs the differential, temporal, schedule,
and sharded oracles over a seed range against fresh stores, raises
:class:`~repro.check.differential.CheckFailure` on any divergence, and
returns a metrics dict whose ``digest`` field is identical across runs
of the same seed — the determinism contract inherited from
:mod:`repro.faults.plan`.
"""

from __future__ import annotations

from hashlib import sha256
from typing import Any

from .differential import CheckFailure, run_differential_range
from .schedule import run_schedule_range
from .sharded import run_sharded_range
from .temporal import run_temporal_range


def _soak_database():
    from ..db import GemStone

    return GemStone.create(track_count=256, track_size=2048)


def run_soak(
    seed: int,
    *,
    diff_cases: int = 40,
    queries_per_case: int = 3,
    temporal_cases: int = 10,
    schedule_cases: int = 6,
    sharded_cases: int = 3,
    registry=None,
    raise_on_failure: bool = True,
) -> dict[str, Any]:
    """Run every oracle; return aggregate metrics (or raise on failure)."""
    diff = run_differential_range(
        seed, diff_cases, queries_per_case=queries_per_case, registry=registry
    )

    database = _soak_database()
    temporal = run_temporal_range(
        database, seed, temporal_cases, registry=registry
    )
    schedule = run_schedule_range(
        database, seed, schedule_cases, registry=registry
    )
    sharded = run_sharded_range(seed, sharded_cases, registry=registry)

    problems: list[str] = []
    problems.extend(m.describe() for m in diff.mismatches)
    problems.extend(temporal.problems)
    problems.extend(schedule.problems)
    problems.extend(m.describe() for m in sharded.mismatches)

    metrics = {
        "seed": seed,
        "diff_cases": diff.cases,
        "diff_queries": diff.queries,
        "diff_evaluations": diff.evaluations,
        "diff_memo_hits": diff.memo_hits,
        "diff_memo_misses": diff.memo_misses,
        "temporal_histories": temporal.histories,
        "temporal_commits": temporal.commits,
        "temporal_reads": temporal.reads,
        "temporal_clamps": temporal.clamps,
        "schedule_samples": schedule.samples,
        "schedule_steps": schedule.steps,
        "schedule_commits": schedule.commits,
        "schedule_aborts": schedule.aborts,
        "sharded_statements": sharded.statements,
        "sharded_commits": sharded.commits,
        "sharded_cross_shard_commits": sharded.cross_shard_commits,
        "problems": len(problems),
    }
    metrics["digest"] = sha256(
        (repr(sorted(metrics.items())) + schedule.digest).encode()
    ).hexdigest()

    if problems and raise_on_failure:
        raise CheckFailure(
            f"{len(problems)} oracle failure(s) at seed {seed}:\n"
            + "\n\n".join(problems)
        )
    metrics["problem_details"] = problems
    return metrics
