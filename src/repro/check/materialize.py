"""Build a real store (and its shadow twin) from a symbolic case spec.

One :class:`CaseEnv` owns a :class:`~repro.core.object_manager.MemoryObjectManager`,
a :class:`~repro.directories.manager.DirectoryManager`, and the oid ↔
symbolic-id mapping.  Replay is epoch-by-epoch so the differential
runner can interleave query evaluations with history: each epoch ticks
the logical clock once, applies that epoch's binds, feeds the resulting
:class:`~repro.storage.linker.Write` records to the Directory Manager
exactly as a commit would, then applies directory create/drop events.

The shadow (:class:`~repro.check.reference.ShadowStore`) is driven in
lockstep with identical times, so at any evaluation point both sides
hold the same prefix of history.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.object_manager import MemoryObjectManager
from ..core.paths import Path, Step
from ..core.values import Ref
from ..directories.manager import DirectoryManager
from ..stdm.calculus import (
    And,
    BinOp,
    Binder,
    Compare,
    Const,
    Exists,
    Expr,
    ForAll,
    Not,
    Or,
    PathApply,
    QueryContext,
    SetQuery,
    Var,
)
from ..storage.linker import Write
from .reference import SHADOW_NOVALUE, ShadowStore
from .spec import CaseSpec, QuerySpec


class CaseEnv:
    """A materialized case: real store, directories, and id mappings."""

    def __init__(self, spec: CaseSpec, *, skip_maintenance: bool = False) -> None:
        self.spec = spec
        #: when set, commit-time directory maintenance is *not* run — a
        #: deliberately injected bug the oracle must catch (test-only)
        self.skip_maintenance = skip_maintenance
        self.store = MemoryObjectManager()
        self.directory_manager = DirectoryManager(self.store)
        self.shadow = ShadowStore(spec)
        self.coll_objs: dict[int, Any] = {}
        self.pool_objs: dict[tuple[int, int], Any] = {}
        self.sym_of_oid: dict[int, str] = {}
        #: absolute transaction time of each epoch, index = epoch number
        #: (aliased into the shadow so its pin lookups stay in lockstep)
        self.epoch_times: list[int] = self.shadow.epoch_times
        self.applied_epoch = -1
        self._build_initial()

    # -- construction ------------------------------------------------------

    def _build_initial(self) -> None:
        store = self.store
        for coll in self.spec.collections:
            store.define_class(f"C{coll.cid}")
        for coll in self.spec.collections:
            set_obj = store.instantiate("Object")
            self.coll_objs[coll.cid] = set_obj
            self.sym_of_oid[set_obj.oid] = f"@c{coll.cid}"
            for i in range(coll.size):
                obj = store.instantiate(f"C{coll.cid}")
                self.pool_objs[(coll.cid, i)] = obj
                self.sym_of_oid[obj.oid] = f"@{coll.cid}.{i}"
        t0 = store.tick()
        self.epoch_times.append(t0)
        # keyed like a session workspace: one staged write per slot, so
        # the directory manager sees real commit-shaped write sets
        writes: dict[tuple[int, str], Write] = {}
        for coll in self.spec.collections:
            for i in coll.initial_members:
                self._bind_member(coll.cid, i, True, t0, writes)
            for i, field, value in coll.initial_values:
                self._bind_field(coll.cid, i, field, value, t0, writes)
        self._commit_epoch(t0, list(writes.values()), epoch=0)
        self.applied_epoch = 0

    def apply_epoch(self, epoch: int) -> None:
        """Replay one epoch of mutations and directory events."""
        assert epoch == self.applied_epoch + 1, "epochs replay in order"
        t = self.store.tick()
        self.epoch_times.append(t)
        writes: dict[tuple[int, str], Write] = {}
        for mutation in self.spec.mutations:
            if mutation[1] != epoch:
                continue
            if mutation[0] == "member":
                _kind, _e, cid, obj, present = mutation
                self._bind_member(cid, obj, present, t, writes)
            else:
                _kind, _e, cid, obj, field, value = mutation
                self._bind_field(cid, obj, field, value, t, writes)
        self._commit_epoch(t, list(writes.values()), epoch)
        self.applied_epoch = epoch

    def _commit_epoch(self, t: int, writes: list[Write], epoch: int) -> None:
        if writes and not self.skip_maintenance:
            self.directory_manager.on_commit(t, [], writes, [])
        for event in self.spec.dir_events:
            kind, at_epoch, cid, path_text = event
            if at_epoch != epoch:
                continue
            if kind == "create":
                self.directory_manager.create_directory(
                    self.coll_objs[cid], path_text
                )
            else:
                directory = self.directory_manager.find_directory(
                    self.coll_objs[cid].oid, path_text
                )
                if directory is not None:
                    self.directory_manager.drop_directory(directory)

    def _bind_member(
        self, cid: int, obj: int, present: bool, t: int,
        writes: dict[tuple[int, str], Write],
    ) -> None:
        set_obj = self.coll_objs[cid]
        value = Ref(self.pool_objs[(cid, obj)].oid) if present else None
        self.store.bind(set_obj, f"m{obj}", value)
        writes[(set_obj.oid, f"m{obj}")] = Write(set_obj.oid, f"m{obj}", value)
        self.shadow.record_member(cid, obj, t, present)

    def _bind_field(
        self, cid: int, obj: int, field: str, value: Any, t: int,
        writes: dict[tuple[int, str], Write],
    ) -> None:
        target = self.pool_objs[(cid, obj)]
        if isinstance(value, tuple):  # ("obj", tcid, ti)
            stored: Any = Ref(self.pool_objs[(value[1], value[2])].oid)
        else:
            stored = value
        self.store.bind(target, field, stored)
        writes[(target.oid, field)] = Write(target.oid, field, stored)
        self.shadow.record(("obj", cid, obj), field, t, value)

    # -- times -------------------------------------------------------------

    def time_of_epoch(self, epoch: Optional[int]) -> Optional[int]:
        """The absolute transaction time an epoch pin resolves to."""
        if epoch is None:
            return None
        if epoch < len(self.epoch_times):
            return self.epoch_times[epoch]
        # a pin past the replayed prefix reads the newest state there is
        return self.epoch_times[0] + epoch

    def context(self, at_epoch: Optional[int]) -> QueryContext:
        return QueryContext(
            self.store,
            time=self.time_of_epoch(at_epoch),
            directory_manager=self.directory_manager,
        )

    # -- compilation -------------------------------------------------------

    def compile_query(self, query: QuerySpec) -> SetQuery:
        binders = [
            Binder(var, self.compile_expr(source))
            for var, source in query.binders
        ]
        condition = (
            self.compile_expr(query.condition)
            if query.condition is not None
            else None
        )
        if query.result[0] == "record":
            result: Any = {
                label: self.compile_expr(spec)
                for label, spec in query.result[1]
            }
        else:
            result = self.compile_expr(query.result)
        return SetQuery(result=result, binders=binders, condition=condition)

    def compile_expr(self, node: tuple) -> Expr:
        kind = node[0]
        if kind == "const":
            return Const(node[1])
        if kind == "coll":
            # Const(Ref(...)) not Const(obj): the production plan memo
            # binds constants as refs so cached plans re-deref (PR 3)
            return Const(Ref(self.coll_objs[node[1]].oid))
        if kind == "obj":
            return Const(Ref(self.pool_objs[(node[1], node[2])].oid))
        if kind == "var":
            return Var(node[1])
        if kind == "path":
            steps = tuple(
                Step(name, self.time_of_epoch(at)) for name, at in node[2]
            )
            return PathApply(self.compile_expr(node[1]), Path(steps))
        if kind == "cmp":
            return Compare(node[1], self.compile_expr(node[2]),
                           self.compile_expr(node[3]))
        if kind == "binop":
            return BinOp(node[1], self.compile_expr(node[2]),
                         self.compile_expr(node[3]))
        if kind == "and":
            return And(self.compile_expr(node[1]), self.compile_expr(node[2]))
        if kind == "or":
            return Or(self.compile_expr(node[1]), self.compile_expr(node[2]))
        if kind == "not":
            return Not(self.compile_expr(node[1]))
        if kind in ("exists", "forall"):
            cls = Exists if kind == "exists" else ForAll
            return cls(node[1], self.compile_expr(node[2]),
                       self.compile_expr(node[3]))
        raise ValueError(f"unknown spec node {kind!r}")

    # -- canonicalization --------------------------------------------------

    def canon_real(self, value: Any) -> str:
        """Canonical string for a value produced by the real engine."""
        from ..core.objects import GemObject
        from ..stdm.calculus import NOVALUE

        if isinstance(value, dict):
            return "{" + ";".join(
                f"{k}={self.canon_real(v)}" for k, v in sorted(value.items())
            ) + "}"
        if isinstance(value, GemObject):
            return self.sym_of_oid.get(value.oid, f"@?{value.oid}")
        if isinstance(value, Ref):
            return self.sym_of_oid.get(value.oid, f"@?{value.oid}")
        if value is NOVALUE:
            return "?"
        if value is None:
            return "nil"
        return repr(value)


def canon_shadow(value: Any) -> str:
    """Canonical string for a value produced by the reference evaluator."""
    if isinstance(value, dict):
        return "{" + ";".join(
            f"{k}={canon_shadow(v)}" for k, v in sorted(value.items())
        ) + "}"
    if isinstance(value, tuple):
        if value[0] == "obj":
            return f"@{value[1]}.{value[2]}"
        if value[0] == "coll":
            return f"@c{value[1]}"
    if value is SHADOW_NOVALUE:
        return "?"
    if value is None:
        return "nil"
    return repr(value)
