"""The five-way differential oracle over generated calculus queries.

Every generated query is evaluated five ways at every scheduled point
of its case's history:

1. **reference** — the naive shadow evaluator (:mod:`.reference`);
2. **uncached** — fresh calculus→algebra translation, no directories,
   row-at-a-time execution;
3. **memoized** — the plan a warm production-style memo serves, keyed
   on ``(query, store token, class epoch, directory epoch, executor
   mode)`` exactly like :mod:`repro.opal.declarative`'s block memos;
4. **optimized** — a fresh :func:`~repro.stdm.optimize.best_plan`
   (index-aware, join-fused), row-at-a-time execution;
5. **vectorized** — the same optimized plan run through the batched
   columnar executor (``mode="vectorized"``), so every fused/indexed
   plan shape is also exercised batch-wise.

All five row sets are canonicalized to sorted strings and must be
*identical*.  Any disagreement is a :class:`Mismatch` carrying enough
coordinates (seed, case, query, epoch) to reproduce it with
``python -m repro.check``.

The memo can be constructed with ``ignore_epochs=True`` — the
deliberately-injected staleness bug of the acceptance criteria: such a
memo keeps serving plans compiled against directories that have since
been dropped, and the oracle must catch it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..perf import class_epoch
from ..perf.coherence import verify_cache_coherence
from ..stdm.algebra import executor_mode
from ..stdm.optimize import best_plan
from ..stdm.translate import translate
from .materialize import CaseEnv, canon_shadow
from .reference import evaluate_reference
from .spec import CaseSpec, QuerySpec, case_key

PATHS = ("reference", "uncached", "memoized", "optimized", "vectorized")


class CheckFailure(AssertionError):
    """An oracle found a divergence; the message embeds a reproducer."""


@dataclass
class Mismatch:
    """One disagreement between evaluation paths (or oracles)."""

    seed: int
    case_index: int
    query_index: int
    eval_epoch: int
    rows: dict[str, list[str]]
    detail: str = ""
    #: the injected-bug mode active when this was found (reproducer flag)
    bug: Optional[str] = None

    def divergent_paths(self) -> list[str]:
        baseline = self.rows.get("reference")
        return [name for name, rows in self.rows.items() if rows != baseline]

    def describe(self) -> str:
        lines = [
            f"differential mismatch: seed={self.seed} case={self.case_index} "
            f"query={self.query_index} epoch={self.eval_epoch}",
        ]
        if self.detail:
            lines.append(f"  {self.detail}")
        for name in PATHS:
            if name in self.rows:
                lines.append(f"  {name:>9}: {self.rows[name]}")
        from .report import reproducer_command

        lines.append("reproduce with:")
        lines.append(
            f"  {reproducer_command(self.seed, self.case_index, bug=self.bug)}"
        )
        return "\n".join(lines)


@dataclass
class DifferentialReport:
    """Aggregate outcome of a differential run."""

    cases: int = 0
    queries: int = 0
    evaluations: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def merge(self, other: "DifferentialReport") -> None:
        self.cases += other.cases
        self.queries += other.queries
        self.evaluations += other.evaluations
        self.memo_hits += other.memo_hits
        self.memo_misses += other.memo_misses
        self.mismatches.extend(other.mismatches)


class PlanMemo:
    """A production-shaped plan memo for the oracle's "warm cache" path.

    The correct key mirrors :mod:`repro.opal.declarative`: the query
    identity plus the store token, the class-hierarchy epoch, and the
    directory-manager epoch — so any directory create/drop forces a
    re-plan.  ``ignore_epochs=True`` drops the epochs from the key,
    reproducing the classic staleness bug the oracle exists to catch.
    """

    def __init__(self, ignore_epochs: bool = False) -> None:
        self.ignore_epochs = ignore_epochs
        self._plans: dict[tuple, Any] = {}
        self.hits = 0
        self.misses = 0

    def plan_for(self, env: CaseEnv, query: QuerySpec):
        key: tuple = (
            case_key(query), env.store.perf.store_token, executor_mode()
        )
        if not self.ignore_epochs:
            key += (class_epoch.value, env.directory_manager.epoch)
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            env.store.perf.plan_hits += 1
            return plan
        self.misses += 1
        env.store.perf.plan_misses += 1
        plan = best_plan(env.compile_query(query), env.directory_manager)
        self._plans[key] = plan
        return plan


def _plan_directories(plan) -> list:
    from ..stdm.algebra import IndexEq, IndexRange

    found = []
    if isinstance(plan, (IndexEq, IndexRange)):
        found.append(plan.directory)
    for child in plan.children():
        found.extend(_plan_directories(child))
    return found


def _stale_plan_detail(env: CaseEnv, plan) -> str:
    """Non-empty when *plan* probes a directory no longer maintained.

    A dropped directory stops receiving commit maintenance, so a cached
    plan still holding one is incoherent even before its rows diverge —
    with correct epoch keying the memo can never serve such a plan."""
    live = set(map(id, env.directory_manager.all_directories()))
    stale = [d for d in _plan_directories(plan) if id(d) not in live]
    if not stale:
        return ""
    return (
        "memoized plan probes dropped directories: "
        + ", ".join(f"!{d.path}" for d in stale)
    )


def _evaluate_paths(
    env: CaseEnv, query: QuerySpec, memo: PlanMemo
) -> tuple[dict[str, list[str]], str]:
    """All five row sets (canonicalized, sorted) + any staleness detail."""
    time = env.time_of_epoch(query.at_epoch)
    reference = sorted(
        canon_shadow(row)
        for row in evaluate_reference(env.shadow, query, time)
    )
    compiled = env.compile_query(query)
    ctx = env.context(query.at_epoch)
    uncached = sorted(
        env.canon_real(row)
        for row in translate(compiled).run(ctx, mode="row")
    )
    memo_plan = memo.plan_for(env, query)
    memoized = sorted(
        env.canon_real(row)
        for row in memo_plan.run(env.context(query.at_epoch), mode="row")
    )
    optimized_plan = best_plan(compiled, env.directory_manager)
    optimized = sorted(
        env.canon_real(row)
        for row in optimized_plan.run(env.context(query.at_epoch), mode="row")
    )
    # same optimized/fused plan instance, batched columnar execution —
    # a plan must be reusable across modes, and every plan shape the
    # optimizer emits gets exercised both ways
    vectorized = sorted(
        env.canon_real(row)
        for row in optimized_plan.run(
            env.context(query.at_epoch), mode="vectorized"
        )
    )
    rows = {
        "reference": reference,
        "uncached": uncached,
        "memoized": memoized,
        "optimized": optimized,
        "vectorized": vectorized,
    }
    return rows, _stale_plan_detail(env, memo_plan)


def run_differential_case(
    spec: CaseSpec,
    *,
    memo: Optional[PlanMemo] = None,
    skip_maintenance: bool = False,
    registry=None,
    stop_at_first: bool = False,
) -> DifferentialReport:
    """Replay one case's history, cross-checking queries at each point."""
    report = DifferentialReport(cases=1, queries=len(spec.queries))
    memo = memo if memo is not None else PlanMemo()
    bug = (
        "stale-memo" if memo.ignore_epochs
        else "skip-maintenance" if skip_maintenance
        else None
    )
    env = CaseEnv(spec, skip_maintenance=skip_maintenance)
    for epoch in range(spec.n_epochs + 1):
        if epoch > 0:
            env.apply_epoch(epoch)
        for q_index, query in enumerate(spec.queries):
            if epoch not in query.eval_epochs:
                continue
            rows, stale_detail = _evaluate_paths(env, query, memo)
            report.evaluations += 1
            if registry is not None:
                registry.inc("check.diff.evaluations")
            if len({tuple(r) for r in rows.values()}) != 1 or stale_detail:
                report.mismatches.append(
                    Mismatch(
                        seed=spec.seed,
                        case_index=spec.index,
                        query_index=q_index,
                        eval_epoch=epoch,
                        rows=rows,
                        detail=stale_detail,
                        bug=bug,
                    )
                )
                if registry is not None:
                    registry.inc("check.diff.mismatches")
                if stop_at_first:
                    break
        else:
            continue
        break
    report.memo_hits = memo.hits
    report.memo_misses = memo.misses
    problems = verify_cache_coherence(env.store)
    if problems:
        report.mismatches.append(
            Mismatch(
                seed=spec.seed,
                case_index=spec.index,
                query_index=-1,
                eval_epoch=env.applied_epoch,
                rows={},
                detail="cache coherence: " + "; ".join(problems),
                bug=bug,
            )
        )
    if registry is not None:
        registry.inc("check.diff.cases")
        registry.inc("check.diff.queries", len(spec.queries))
    return report


def run_differential_range(
    seed: int,
    cases: int,
    *,
    queries_per_case: int = 3,
    skip_maintenance: bool = False,
    ignore_epochs: bool = False,
    registry=None,
    stop_at_first: bool = False,
) -> DifferentialReport:
    """Run ``cases`` generated cases from one seed; aggregate results."""
    from .generate import generate_case

    total = DifferentialReport()
    for index in range(cases):
        spec = generate_case(seed, index, queries_per_case=queries_per_case)
        report = run_differential_case(
            spec,
            memo=PlanMemo(ignore_epochs=ignore_epochs),
            skip_maintenance=skip_maintenance,
            registry=registry,
            stop_at_first=stop_at_first,
        )
        total.merge(report)
        if stop_at_first and not total.ok:
            break
    return total
