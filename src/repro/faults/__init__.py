"""``repro.faults`` — deterministic fault injection and resilience.

A chaos layer for the storage and link stack (ROADMAP: "as many
scenarios as you can imagine"), built on three rules:

* every fault schedule is a pure function of a seed (no wall clock, no
  hidden state) — see :mod:`~repro.faults.plan`;
* fault wrappers (:class:`FaultyDisk`, :class:`FaultyLink`) preserve the
  exact interfaces of the components they wrap, so the whole stack runs
  over them unchanged;
* resilience policies (:class:`ResilientDisk`, the Executor protocol's
  sequence envelopes) consume the faults and are tested by exhaustive
  sweeps — :mod:`~repro.faults.soak` crashes a workload at *every* write
  index and proves recovery each time.
"""

from .disk import FaultyDisk
from .link import FaultyLink, make_faulty_link
from .plan import FaultClock, FaultEvent, FaultPlan, FaultSpec
from .resilience import ResilientDisk
from .soak import SoakReport, SoakStep, build_workload, run_crash_sweep
from .transport import FaultyTransport, SocketFaultSpec, TransportFaults

__all__ = [
    "FaultClock",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "FaultyDisk",
    "FaultyLink",
    "FaultyTransport",
    "ResilientDisk",
    "SoakReport",
    "SoakStep",
    "SocketFaultSpec",
    "TransportFaults",
    "build_workload",
    "make_faulty_link",
    "run_crash_sweep",
]
