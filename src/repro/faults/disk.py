"""A whole-track disk wrapper that injects planned faults.

:class:`FaultyDisk` preserves the :class:`~repro.storage.disk.SimulatedDisk`
interface exactly — the Track Manager, the replication layer and the
resilience layer all run over it unchanged — while consulting a
:class:`~repro.faults.plan.FaultPlan` before every operation:

* **transient** — the operation raises
  :class:`~repro.errors.TransientDiskError` and (for writes) is lost;
  a retry draws a fresh decision, so bounded retry can mask it;
* **bit-rot** — the write lands, then one byte silently flips, so the
  next read fails checksum verification (what read-repair must mask);
* **latency** — the operation succeeds but charges extra simulated time
  to the fault clock;
* **crash** — the disk goes down exactly as ``crash_after(0)`` would:
  the triggering write is lost and all I/O fails until ``restart()``.
  A *read* crash point (``crash_reads_at``) downs the disk from this
  layer instead, since the inner disk's crash arming is write-driven —
  it is how a crash lands inside read-only recovery itself.
"""

from __future__ import annotations

from ..errors import DiskCrashed, TransientDiskError
from .plan import FaultClock, FaultPlan


class FaultyDisk:
    """Injects a :class:`FaultPlan`'s disk faults under any track disk."""

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        clock: FaultClock | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.clock = clock or FaultClock()
        self.transient_errors = 0
        self.rotted_tracks = 0
        self.delays = 0
        self._crashed = False  # read-crash points down the disk from here

    # -- geometry / accounting (mirrors SimulatedDisk) ----------------------

    @property
    def geometry(self):
        return self.inner.geometry

    @property
    def track_count(self) -> int:
        return self.inner.track_count

    @property
    def track_size(self) -> int:
        return self.inner.track_size

    @property
    def stats(self):
        return self.inner.stats

    # -- I/O ----------------------------------------------------------------

    def read_track(self, track: int) -> bytes:
        if self._crashed:
            raise DiskCrashed(f"disk is down; read of track {track} refused")
        fault = self.plan.disk_fault("read", track)
        if fault == "crash":
            self._crashed = True
            raise DiskCrashed(f"disk crashed during read of track {track}")
        if fault == "transient":
            self.transient_errors += 1
            raise TransientDiskError(f"transient read failure on track {track}")
        if fault == "latency":
            self.delays += 1
            self.clock.advance(self.plan.spec.latency_cost)
        return self.inner.read_track(track)

    def write_track(self, track: int, data: bytes) -> None:
        if self._crashed:
            raise DiskCrashed(f"disk is down; write of track {track} refused")
        fault = self.plan.disk_fault("write", track)
        if fault == "crash":
            # fail-stop: down the disk so the triggering write is lost,
            # exactly as an armed crash_after(0) behaves
            self.inner.crash_after(0)
            self.inner.write_track(track, data)
            return  # unreachable: the inner disk raises DiskCrashed
        if fault == "transient":
            self.transient_errors += 1
            raise TransientDiskError(f"transient write failure on track {track}")
        if fault == "latency":
            self.delays += 1
            self.clock.advance(self.plan.spec.latency_cost)
        self.inner.write_track(track, data)
        if fault == "bit-rot":
            self.rotted_tracks += 1
            self.inner.corrupt_track(track, flip_byte=track % self.track_size)

    def is_written(self, track: int) -> bool:
        return self.inner.is_written(track)

    # -- fault-injection passthrough ----------------------------------------

    def crash_after(self, writes: int) -> None:
        self.inner.crash_after(writes)

    def cancel_crash(self) -> None:
        self.inner.cancel_crash()

    @property
    def crashed(self) -> bool:
        return self._crashed or self.inner.crashed

    def restart(self) -> None:
        self._crashed = False
        self.inner.restart()

    def corrupt_track(self, track: int, flip_byte: int = 0) -> None:
        self.inner.corrupt_track(track, flip_byte)
