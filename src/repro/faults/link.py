"""A host-link wrapper that injects planned frame faults.

:class:`FaultyLink` mirrors the :class:`~repro.executor.link.LinkEnd`
interface, so either side of a connection can be wrapped without the
peer noticing.  Outgoing frames consult the plan:

* **drop** — the frame vanishes (the host's retry loop must resend);
* **duplicate** — the frame is delivered twice (the Executor's replay
  cache must deduplicate);
* **truncate** — a prefix of the frame is delivered as a complete wire
  frame, so the payload checksum fails at the receiver;
* **reorder** — the frame is held back and delivered *after* the next
  frame sent on the same direction (at most one frame is in the hold
  slot at a time), so receivers must correlate by sequence number
  rather than arrival order;
* **partition** — an explicit state (not rate-drawn): every frame sent
  into a partition is lost until :meth:`heal`, modelling a severed
  host ↔ Gem connection that forces a reconnect.
"""

from __future__ import annotations

from ..executor.link import LinkEnd, make_link
from .plan import FaultPlan


class FaultyLink:
    """Injects a :class:`FaultPlan`'s link faults on one link endpoint."""

    def __init__(self, inner: LinkEnd, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.partitioned = False
        self.dropped = 0
        self.duplicated = 0
        self.truncated = 0
        self.reordered = 0
        #: the frame a "reorder" decision held back, delivered after the
        #: next frame that actually reaches the wire
        self._held: bytes | None = None

    # -- LinkEnd interface --------------------------------------------------

    def send(self, frame: bytes) -> None:
        if self.partitioned:
            self.dropped += 1
            return
        fault = self.plan.link_fault(len(frame))
        if fault == "drop":
            self.dropped += 1
            return
        if fault == "truncate" and len(frame) > 1:
            self.truncated += 1
            self.inner.send(frame[: max(1, len(frame) // 2)])
            return
        if fault == "reorder" and self._held is None:
            # hold this frame; it rides out behind the next delivery
            # (a held frame with no successor is simply a drop, which
            # the sender's retry loop already covers)
            self.reordered += 1
            self._held = frame
            return
        self.inner.send(frame)
        if self._held is not None:
            held, self._held = self._held, None
            self.inner.send(held)
        if fault == "duplicate":
            self.duplicated += 1
            self.inner.send(frame)

    def receive(self) -> bytes | None:
        return self.inner.receive()

    def close(self) -> None:
        self.inner.close()

    @property
    def peer_closed(self) -> bool:
        return self.inner.peer_closed

    @property
    def frames_sent(self) -> int:
        return self.inner.frames_sent

    @property
    def bytes_sent(self) -> int:
        return self.inner.bytes_sent

    # -- partition control --------------------------------------------------

    def partition(self) -> None:
        """Sever this direction: all sends are lost until :meth:`heal`."""
        self.partitioned = True

    def heal(self) -> None:
        """Restore delivery after a partition."""
        self.partitioned = False


def make_faulty_link(
    plan: FaultPlan,
    host_faulty: bool = True,
    gem_faulty: bool = True,
) -> tuple[LinkEnd | FaultyLink, LinkEnd | FaultyLink]:
    """A connected (host_end, gem_end) pair with faults on chosen sides."""
    host_end, gem_end = make_link()
    host: LinkEnd | FaultyLink = host_end
    gem: LinkEnd | FaultyLink = gem_end
    if host_faulty:
        host = FaultyLink(host_end, plan)
    if gem_faulty:
        gem = FaultyLink(gem_end, plan)
    return host, gem
