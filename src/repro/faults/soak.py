"""Crash-recovery soak: prove every recovery path, not just one.

The Commit Manager's safe-write guarantee is all-or-nothing per commit;
the only honest way to test it is to crash at *every* write index of a
workload and check recovery each time.  :func:`run_crash_sweep` does
exactly that:

1. format a database and snapshot the platter;
2. replay a mixed OPAL workload once, uninterrupted, to learn the total
   number of track writes and the expected state after each commit;
3. for each crash index, clone the snapshot, arm the crash, replay until
   the disk dies, restart, run recovery (``GemStone.open`` drives
   ``CommitManager.recover``), and assert the root-epoch and
   object-table invariants: the recovered epoch is exactly the epoch of
   the last completed commit, and every workload key reads back the
   value that commit gave it — never a torn mixture.

Everything is deterministic: the workload is fixed, crash points are
exact write indexes, and time is the disk's simulated cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..db import GemStone
from ..errors import StorageError
from ..storage.disk import DiskGeometry, SimulatedDisk


@dataclass(frozen=True)
class SoakStep:
    """The outcome of one crash point."""

    crash_index: int  #: write index the crash was armed on
    commits_survived: int  #: workload commits that completed before it
    recovered_epoch: int  #: root epoch adopted by recovery
    recovery_time_units: float  #: simulated disk time spent recovering


@dataclass
class SoakReport:
    """What an exhaustive crash sweep observed."""

    total_writes: int  #: track writes in the uninterrupted workload
    crash_points: int  #: crash indexes exercised
    recoveries: int  #: successful recoveries (must equal crash_points)
    torn_states: int  #: recoveries exposing a mixed commit (must be 0)
    steps: list[SoakStep] = field(default_factory=list)

    @property
    def max_recovery_time(self) -> float:
        return max((s.recovery_time_units for s in self.steps), default=0.0)

    @property
    def mean_recovery_time(self) -> float:
        if not self.steps:
            return 0.0
        return sum(s.recovery_time_units for s in self.steps) / len(self.steps)


def build_workload(commits: int = 12, writes_per_commit: int = 3) -> list[list[str]]:
    """A mixed OPAL workload: *commits* batches of key assignments.

    Every batch rewrites the same keys with a new generation marker, so
    a torn commit is visible as keys disagreeing on their generation.
    """
    return [
        [f"World!k{key} := 'gen{batch}_{key}'" for key in range(writes_per_commit)]
        for batch in range(commits)
    ]


def _replay(db: GemStone, workload: list[list[str]]) -> int:
    """Run batches until the storage stack fails; return completed commits."""
    session = db.login()
    completed = 0
    try:
        for batch in workload:
            for statement in batch:
                session.execute(statement)
            session.commit()
            completed += 1
    except StorageError:
        pass  # the armed crash fired somewhere inside a commit
    return completed


def run_crash_sweep(
    commits: int = 12,
    writes_per_commit: int = 3,
    track_count: int = 1024,
    track_size: int = 512,
    stride: int = 1,
    crash_points: list[int] | None = None,
) -> SoakReport:
    """Crash at every write index of the workload; assert recovery each time.

    Raises ``AssertionError`` on the first violated invariant; returns
    the full :class:`SoakReport` when every crash point recovered.
    *stride* subsamples crash indexes for quick smoke runs;
    *crash_points* replaces the sweep with an explicit list of write
    indexes (out-of-range points are rejected) — the handle the CLI's
    ``--crash-points`` uses to re-run one interesting crash exactly.
    """
    workload = build_workload(commits, writes_per_commit)
    geometry = DiskGeometry(track_count=track_count, track_size=track_size)

    # 1+2: base image and the uninterrupted reference run
    base_disk = SimulatedDisk(geometry)
    GemStone.create(disk=base_disk)
    base_epoch = 1  # format's bootstrap commit
    reference = base_disk.clone()
    reference_db = GemStone.open(reference)
    writes_before = reference.stats.writes
    completed = _replay(reference_db, workload)
    assert completed == len(workload), "reference run must not fail"
    total_writes = reference.stats.writes - writes_before

    report = SoakReport(
        total_writes=total_writes,
        crash_points=0,
        recoveries=0,
        torn_states=0,
    )

    if crash_points is None:
        sweep = range(0, total_writes, stride)
    else:
        bad = [p for p in crash_points if not 0 <= p < total_writes]
        if bad:
            raise ValueError(
                f"crash points {bad} outside the workload's "
                f"{total_writes} writes"
            )
        sweep = sorted(set(crash_points))

    # 3: the sweep — crash index i kills the (i+1)-th workload write
    for crash_index in sweep:
        disk = base_disk.clone()
        db = GemStone.open(disk)
        disk.crash_after(crash_index)
        completed = _replay(db, workload)
        assert completed < len(workload), (
            f"crash index {crash_index} inside the workload never fired"
        )
        disk.restart()

        recovery_started = disk.stats.time_units
        recovered = GemStone.open(disk)  # CommitManager.recover + reload
        recovery_time = disk.stats.time_units - recovery_started

        expected_epoch = base_epoch + completed
        actual_epoch = recovered.store.commit_manager.current_epoch
        assert actual_epoch == expected_epoch, (
            f"crash index {crash_index}: recovered epoch {actual_epoch}, "
            f"expected {expected_epoch} ({completed} commits survived)"
        )
        session = recovered.login()
        generations = set()
        for key in range(writes_per_commit):
            value = session.execute(f"World!k{key}")
            expected = f"gen{completed - 1}_{key}" if completed else None
            if value != expected:
                report.torn_states += 1
            if isinstance(value, str):
                generations.add(value.split("_")[0])
        assert len(generations) <= 1, (
            f"crash index {crash_index}: torn commit visible, "
            f"generations {sorted(generations)}"
        )
        assert report.torn_states == 0, (
            f"crash index {crash_index}: recovered state is not the last "
            f"completed commit's state"
        )

        report.crash_points += 1
        report.recoveries += 1
        report.steps.append(
            SoakStep(
                crash_index=crash_index,
                commits_survived=completed,
                recovered_epoch=actual_epoch,
                recovery_time_units=recovery_time,
            )
        )
    return report
