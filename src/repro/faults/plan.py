"""Deterministic, seed-driven fault schedules.

The paper's operational claim (section 6) is that safe writes, the
replicated volume, and the host link keep the shared object space
consistent across failures.  To *walk* every one of those recovery paths
— rather than assume them — this module produces fault schedules that
are a pure function of a seed and the operation sequence:

* :class:`FaultClock` is the only notion of time (simulated units; never
  the wall clock), so backoff and latency are deterministic;
* :class:`FaultSpec` declares the fault mix (rates and costs);
* :class:`FaultPlan` turns a seed + spec into per-operation decisions,
  recording every decision so two runs can be compared byte for byte.

Wrapper classes consume the plan: :class:`~repro.faults.disk.FaultyDisk`
injects disk faults, :class:`~repro.faults.link.FaultyLink` injects link
faults, and :class:`~repro.faults.resilience.ResilientDisk` is the
policy layer that masks what can be masked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from hashlib import sha256
from typing import Iterable


class FaultClock:
    """Simulated time for fault schedules and backoff.

    A plain monotone accumulator: wrappers charge latency to it, retry
    policies charge backoff to it.  There is deliberately no way to read
    the wall clock, so every schedule is reproducible.
    """

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time, in arbitrary units."""
        return self._now

    def advance(self, units: float) -> None:
        """Move time forward; negative steps are rejected."""
        if units < 0:
            raise ValueError("the fault clock cannot run backwards")
        self._now += units


@dataclass(frozen=True)
class FaultSpec:
    """The fault mix a plan draws from (all rates are probabilities)."""

    #: disk: probability an I/O raises a retryable ``TransientDiskError``
    transient_rate: float = 0.0
    #: disk: probability a successful write silently rots on the platter
    bit_rot_rate: float = 0.0
    #: disk: probability an I/O costs extra simulated time
    latency_rate: float = 0.0
    #: simulated time units charged per injected latency event
    latency_cost: float = 5.0
    #: link: probability an outgoing frame is dropped
    drop_rate: float = 0.0
    #: link: probability an outgoing frame is delivered twice
    duplicate_rate: float = 0.0
    #: link: probability an outgoing frame is truncated in transit
    truncate_rate: float = 0.0
    #: link: probability an outgoing frame is *reordered* — held back and
    #: delivered after the next frame on the same direction
    reorder_rate: float = 0.0
    #: cap on injected faults (None = unbounded)
    max_faults: int | None = None


@dataclass(frozen=True)
class FaultEvent:
    """One recorded decision: what the plan did to one operation."""

    index: int  #: decision sequence number
    channel: str  #: "disk" or "link"
    operation: str  #: "read", "write", or "send"
    target: int  #: track number or frame length
    fault: str  #: "none", "transient", "bit-rot", "latency", "crash", ...


class FaultPlan:
    """A seeded schedule of faults; identical seeds yield identical runs.

    Random faults are drawn from ``spec``; *crash points* are explicit
    and exact — ``crash_at={n}`` downs the disk on the n-th write the
    plan sees (0-based), which is what the soak harness sweeps, and
    ``crash_reads_at={n}`` downs it on the n-th *read* — the only way
    to crash inside read-only paths such as recovery itself.
    """

    def __init__(
        self,
        seed: int,
        spec: FaultSpec | None = None,
        crash_at: Iterable[int] = (),
        crash_reads_at: Iterable[int] = (),
    ) -> None:
        self.seed = seed
        self.spec = spec or FaultSpec()
        self.crash_at = frozenset(crash_at)
        self.crash_reads_at = frozenset(crash_reads_at)
        self._rng = random.Random(seed)
        self.events: list[FaultEvent] = []
        self.injected = 0
        self._write_index = 0
        self._read_index = 0

    # -- decisions ----------------------------------------------------------

    def disk_fault(self, operation: str, track: int) -> str:
        """Decide the fate of one disk operation ("read" or "write")."""
        if operation == "write":
            index = self._write_index
            self._write_index += 1
            if index in self.crash_at:
                return self._record("disk", operation, track, "crash")
            choices = (
                ("transient", self.spec.transient_rate),
                ("bit-rot", self.spec.bit_rot_rate),
                ("latency", self.spec.latency_rate),
            )
        else:
            index = self._read_index
            self._read_index += 1
            if index in self.crash_reads_at:
                return self._record("disk", operation, track, "crash")
            choices = (
                ("transient", self.spec.transient_rate),
                ("latency", self.spec.latency_rate),
            )
        return self._record("disk", operation, track, self._draw(choices))

    def link_fault(self, frame_length: int) -> str:
        """Decide the fate of one outgoing link frame."""
        choices = (
            ("drop", self.spec.drop_rate),
            ("duplicate", self.spec.duplicate_rate),
            ("truncate", self.spec.truncate_rate),
            ("reorder", self.spec.reorder_rate),
        )
        return self._record("link", "send", frame_length, self._draw(choices))

    def _draw(self, choices) -> str:
        roll = self._rng.random()
        if self.spec.max_faults is not None and self.injected >= self.spec.max_faults:
            return "none"
        edge = 0.0
        for fault, rate in choices:
            edge += rate
            if roll < edge:
                return fault
        return "none"

    def _record(self, channel: str, operation: str, target: int, fault: str) -> str:
        if fault != "none":
            self.injected += 1
        self.events.append(
            FaultEvent(len(self.events), channel, operation, target, fault)
        )
        return fault

    # -- reproducibility ----------------------------------------------------

    def schedule_bytes(self) -> bytes:
        """The full decision log, serialized deterministically.

        Two plans built from the same seed and spec, driven by the same
        operation sequence, produce byte-identical output — the
        determinism guarantee the soak harness asserts.
        """
        lines = [f"seed={self.seed}"]
        lines.extend(
            f"{e.index}:{e.channel}:{e.operation}:{e.target}:{e.fault}"
            for e in self.events
        )
        return "\n".join(lines).encode("ascii")

    def schedule_digest(self) -> str:
        """SHA-256 of :meth:`schedule_bytes` (compact comparison key)."""
        return sha256(self.schedule_bytes()).hexdigest()
