"""Resilience policy: bounded retry, backoff, graceful degradation.

:class:`ResilientDisk` wraps any whole-track disk (simulated, faulty, or
replicated) and masks :class:`~repro.errors.TransientDiskError` with
bounded retry plus exponential backoff.  Backoff is charged to a
:class:`~repro.faults.plan.FaultClock` — simulated time, never the wall
clock — so recovery schedules are as deterministic as the fault
schedules that provoke them.

When a *write* exhausts its retry budget the volume degrades to
read-only mode: further writes raise the typed
:class:`~repro.errors.DegradedError` immediately (no pointless retries),
while reads continue to be served — the storage stack stays queryable
even when it can no longer accept commits.  ``restore()`` re-arms
writes after the operator (or test) repairs the underlying fault.

Permanent faults are not retried: :class:`~repro.errors.DiskCrashed` is
fail-stop until ``restart()``, and a checksum failure will not heal by
re-reading the same platter (replication's read-repair owns that).
"""

from __future__ import annotations

from ..errors import DegradedError, TransientDiskError
from .plan import FaultClock


class ResilientDisk:
    """Retry + backoff + read-only degradation over any track disk."""

    def __init__(
        self,
        inner,
        clock: FaultClock | None = None,
        max_retries: int = 4,
        backoff_base: float = 1.0,
        backoff_factor: float = 2.0,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.inner = inner
        self.clock = clock or FaultClock()
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.retries = 0
        self.backoff_time = 0.0
        self._degraded = False

    # -- geometry / accounting (mirrors SimulatedDisk) ----------------------

    @property
    def geometry(self):
        return self.inner.geometry

    @property
    def track_count(self) -> int:
        return self.inner.track_count

    @property
    def track_size(self) -> int:
        return self.inner.track_size

    @property
    def stats(self):
        return self.inner.stats

    # -- degradation --------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once a write exhausted its retries; writes now refuse."""
        return self._degraded

    def restore(self) -> None:
        """Leave read-only mode (the underlying fault was repaired)."""
        self._degraded = False

    # -- I/O ----------------------------------------------------------------

    def read_track(self, track: int) -> bytes:
        return self._with_retry(lambda: self.inner.read_track(track))

    def write_track(self, track: int, data: bytes) -> None:
        if self._degraded:
            raise DegradedError(
                f"volume is degraded to read-only; write of track {track} refused"
            )
        try:
            self._with_retry(lambda: self.inner.write_track(track, data))
        except TransientDiskError as error:
            self._degraded = True
            raise DegradedError(
                f"write of track {track} failed after {self.max_retries} retries; "
                "volume degraded to read-only"
            ) from error

    def is_written(self, track: int) -> bool:
        return self.inner.is_written(track)

    def _with_retry(self, operation):
        delay = self.backoff_base
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            try:
                return operation()
            except TransientDiskError:
                if attempt + 1 == attempts:
                    raise
                self.retries += 1
                self.clock.advance(delay)
                self.backoff_time += delay
                delay *= self.backoff_factor

    # -- fault-injection passthrough ----------------------------------------

    def crash_after(self, writes: int) -> None:
        self.inner.crash_after(writes)

    def cancel_crash(self) -> None:
        self.inner.cancel_crash()

    @property
    def crashed(self) -> bool:
        return self.inner.crashed

    def restart(self) -> None:
        self.inner.restart()

    def corrupt_track(self, track: int, flip_byte: int = 0) -> None:
        self.inner.corrupt_track(track, flip_byte)
