"""Socket-level fault injection for the TCP transport (``repro.net``).

``FaultyAsyncLink`` perturbs whole frames; a real wire fails *under*
the framing layer.  ``FaultyTransport`` wraps a ``StreamLink``-shaped
async endpoint and injects the three socket-native failure modes:

- **disconnect-mid-frame** — write a seeded prefix of the
  length-prefixed frame, then hard-close the connection (RST).  The
  receiver sees a truncated frame on a closed link; the client
  reconnects and resends unacked seqs;
- **stalled read** — sleep before delivering the next frame, modelling
  a congested or half-wedged peer;
- **split write (1-byte dribble)** — deliver the frame one byte per
  write/drain cycle, exercising every partial-read path in the framer.

Faults are drawn from one seeded ``random.Random`` held by a
``TransportFaults`` schedule shared across reconnections, so a whole
session — drops, redials, and all — replays from its seed.
"""

from __future__ import annotations

import asyncio
import random
import struct

from ..errors import ProtocolError

_HEADER = struct.Struct("<I")


class SocketFaultSpec:
    """Rates for each socket-level fault (independent draws per frame)."""

    def __init__(
        self,
        disconnect_rate: float = 0.0,
        stall_rate: float = 0.0,
        dribble_rate: float = 0.0,
        stall_seconds: float = 0.02,
        max_disconnects: int | None = None,
    ) -> None:
        self.disconnect_rate = disconnect_rate
        self.stall_rate = stall_rate
        self.dribble_rate = dribble_rate
        self.stall_seconds = stall_seconds
        #: bound on injected disconnects (None = unbounded) so a seeded
        #: run cannot livelock redialing forever
        self.max_disconnects = max_disconnects


class TransportFaults:
    """One seeded fault schedule, shared across a session's transports.

    Each reconnection wraps its fresh link in a new
    :class:`FaultyTransport` carrying this same schedule, so the fault
    stream (and the counters the tests assert on) continues across
    transport generations instead of resetting.
    """

    def __init__(self, spec: SocketFaultSpec, seed: int = 0) -> None:
        self.spec = spec
        self.rng = random.Random(seed)
        self.disconnects = 0
        self.stalls = 0
        self.dribbles = 0

    def wrap(self, link) -> "FaultyTransport":
        return FaultyTransport(link, self)

    def draw_send(self) -> str | None:
        spec = self.spec
        roll = self.rng.random()
        if roll < spec.disconnect_rate and self._disconnect_budget():
            return "disconnect"
        if roll < spec.disconnect_rate + spec.dribble_rate:
            return "dribble"
        return None

    def draw_receive(self) -> str | None:
        spec = self.spec
        roll = self.rng.random()
        if roll < spec.stall_rate:
            return "stall"
        return None

    def _disconnect_budget(self) -> bool:
        cap = self.spec.max_disconnects
        return cap is None or self.disconnects < cap


class FaultyTransport:
    """A ``StreamLink`` wrapper injecting seeded socket-level faults."""

    def __init__(self, inner, faults: TransportFaults) -> None:
        self.inner = inner
        self.faults = faults

    async def send(self, frame: bytes) -> None:
        fault = self.faults.draw_send()
        if fault == "disconnect":
            self.faults.disconnects += 1
            data = _HEADER.pack(len(frame)) + frame
            cut = self.faults.rng.randrange(1, len(data))
            writer = getattr(self.inner, "_writer", None)
            if writer is not None:
                try:
                    writer.write(data[:cut])
                    await writer.drain()
                except (ConnectionError, RuntimeError, OSError):
                    pass
            abort = getattr(self.inner, "abort", self.inner.close)
            abort()
            raise ProtocolError("link is closed")
        if fault == "dribble":
            self.faults.dribbles += 1
            writer = getattr(self.inner, "_writer", None)
            if writer is None:
                await self.inner.send(frame)
                return
            data = _HEADER.pack(len(frame)) + frame
            try:
                for i in range(len(data)):
                    writer.write(data[i : i + 1])
                    await writer.drain()
                    await asyncio.sleep(0)
            except (ConnectionError, RuntimeError, OSError) as exc:
                raise ProtocolError("link is closed") from exc
            self.inner.frames_sent += 1
            self.inner.bytes_sent += len(data)
            return
        await self.inner.send(frame)

    async def receive(self) -> bytes | None:
        if self.faults.draw_receive() == "stall":
            self.faults.stalls += 1
            await asyncio.sleep(self.faults.spec.stall_seconds)
        return await self.inner.receive()

    def close(self) -> None:
        self.inner.close()

    def abort(self) -> None:
        abort = getattr(self.inner, "abort", self.inner.close)
        abort()

    @property
    def peer_closed(self) -> bool:
        return self.inner.peer_closed


__all__ = ["FaultyTransport", "SocketFaultSpec", "TransportFaults"]
