"""Abstract syntax of OPAL programs.

The parser produces these nodes; the compiler walks them into bytecodes,
and the declarative-select recognizer (:mod:`repro.opal.declarative`)
walks block bodies to translate them into set calculus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence


class Node:
    """Base class for OPAL AST nodes."""


@dataclass(frozen=True)
class Literal(Node):
    """A literal value: number, string, symbol, char, boolean, nil, array."""

    value: Any


@dataclass(frozen=True)
class VarRef(Node):
    """A variable reference: temp, argument, instance variable or global."""

    name: str


@dataclass(frozen=True)
class PathStepNode(Node):
    """One ``!component`` step, optionally ``@time``.

    The component is a literal name (identifier, string or integer); the
    time pin, when present, is a full expression evaluated at run time
    (``x!balance @ (t - 1)`` is legal OPAL).
    """

    name: Any
    time: Optional[Node] = None


@dataclass(frozen=True)
class PathFetch(Node):
    """``base!a!b@T!c`` — navigation from an expression."""

    base: Node
    steps: tuple[PathStepNode, ...]


@dataclass(frozen=True)
class PathAssign(Node):
    """``base!a!b := value`` — assignment through a path (section 4.3)."""

    base: Node
    steps: tuple[PathStepNode, ...]
    value: Node


@dataclass(frozen=True)
class Assign(Node):
    """``var := value`` — plain variable assignment."""

    name: str
    value: Node


@dataclass(frozen=True)
class MessageSend(Node):
    """``receiver selector: arg ...`` — unary, binary or keyword send."""

    receiver: Node
    selector: str
    args: tuple[Node, ...] = ()
    to_super: bool = False


@dataclass(frozen=True)
class Cascade(Node):
    """``expr msg1; msg2; msg3`` — several messages to one receiver.

    ``first`` must be a MessageSend; the cascaded messages go to *its*
    receiver, per Smalltalk-80 semantics.
    """

    first: MessageSend
    rest: tuple[tuple[str, tuple[Node, ...]], ...]


@dataclass(frozen=True)
class BlockNode(Node):
    """``[:x :y | temps | statements]`` — a lexical closure."""

    params: tuple[str, ...]
    temps: tuple[str, ...]
    body: tuple[Node, ...]


@dataclass(frozen=True)
class Return(Node):
    """``^expression`` — method return (non-local from inside blocks)."""

    value: Node


@dataclass(frozen=True)
class Sequence(Node):
    """A statement sequence (a method body or executable code block)."""

    temps: tuple[str, ...]
    statements: tuple[Node, ...]


@dataclass(frozen=True)
class MethodNode(Node):
    """A parsed method: pattern (selector + params) and body."""

    selector: str
    params: tuple[str, ...]
    body: Sequence
    source: str = ""
