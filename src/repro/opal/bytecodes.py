"""Bytecodes and compiled code objects for the OPAL virtual machine.

Section 6: "The Interpreter is an abstract stack machine that executes
compiledMethods consisting of sequences of bytecodes, much the same as
the ST80 interpreter.  It dispatches bytecodes, performs stack
manipulations and some primitive methods, and makes calls to the Object
Manager."

Instructions are (opcode, operand) pairs.  Temp addressing is lexical:
``(level, slot)`` where level counts enclosing block scopes (0 = the
current frame), so closures read and write their defining contexts.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Any, Optional

from ..core.classes import Method


class Op(Enum):
    """The OPAL instruction set."""

    PUSH_CONST = auto()      # operand: literal index
    PUSH_SELF = auto()
    PUSH_TEMP = auto()       # operand: (level, slot)
    STORE_TEMP = auto()      # operand: (level, slot); leaves value on stack
    PUSH_INSTVAR = auto()    # operand: name
    STORE_INSTVAR = auto()   # operand: name; leaves value on stack
    PUSH_GLOBAL = auto()     # operand: name (class, System, World, ...)
    PUSH_BLOCK = auto()      # operand: literal index of a CompiledBlock
    SEND = auto()            # operand: (selector, argc)
    SUPER_SEND = auto()      # operand: (selector, argc)
    PATH_FETCH = auto()      # operand: tuple[(name, has_time), ...]
    PATH_ASSIGN = auto()     # operand: tuple[(name, has_time), ...]
    POP = auto()
    DUP = auto()
    RETURN_TOP = auto()      # return value from the current method frame
    NONLOCAL_RETURN = auto() # ^ inside a block: unwind to the home method
    BLOCK_END = auto()       # end of block body: value of last statement
    JUMP = auto()            # operand: absolute target pc
    JUMP_IF_FALSE = auto()   # operand: (target, error selector); pops a Boolean
    JUMP_IF_TRUE = auto()    # operand: (target, error selector); pops a Boolean


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    op: Op
    operand: Any = None

    def __repr__(self) -> str:
        if self.operand is None:
            return self.op.name
        return f"{self.op.name} {self.operand!r}"


@dataclass
class CompiledBlock:
    """The compiled form of a block literal (a closure's code)."""

    params: tuple[str, ...]
    temps: tuple[str, ...]
    code: list[Instruction]
    literals: list[Any]
    #: the source AST, kept for declarative select-block recognition
    ast: Any = None

    @property
    def slot_names(self) -> tuple[str, ...]:
        """Frame slot layout: params then temps."""
        return self.params + self.temps

    def __repr__(self) -> str:
        return f"<CompiledBlock [{', '.join(self.params)}] {len(self.code)} ops>"


@dataclass
class CompiledMethod(Method):
    """A method compiled from OPAL source.

    Satisfies the core :class:`~repro.core.classes.Method` protocol by
    delegating to the store's attached OPAL engine, so message dispatch
    through the Object Manager runs OPAL code transparently.
    """

    selector: str
    params: tuple[str, ...]
    temps: tuple[str, ...]
    code: list[Instruction]
    literals: list[Any]
    source: Optional[str] = None
    class_name: str = ""

    @property
    def slot_names(self) -> tuple[str, ...]:
        """Frame slot layout: params then temps."""
        return self.params + self.temps

    def invoke(self, manager: Any, receiver: Any, args: tuple) -> Any:
        engine = getattr(manager, "opal_runtime", None)
        if engine is None:
            raise RuntimeError(
                "store has no OPAL engine attached; create an OpalEngine first"
            )
        return engine.invoke_method(self, receiver, args)

    def __repr__(self) -> str:
        where = f" in {self.class_name}" if self.class_name else ""
        return f"<CompiledMethod #{self.selector}{where}>"


def disassemble(code: list[Instruction], literals: list[Any]) -> str:
    """A printable listing of compiled code (debugging aid)."""
    lines = []
    for index, instruction in enumerate(code):
        note = ""
        if instruction.op in (Op.PUSH_CONST, Op.PUSH_BLOCK):
            note = f"  ; {literals[instruction.operand]!r}"
        lines.append(f"{index:4d}  {instruction!r}{note}")
    return "\n".join(lines)
