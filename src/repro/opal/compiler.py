"""The OPAL compiler: AST to bytecodes.

"The Compiler requires some modifications from the ST80 compiler.  Most
are small changes in syntax or for slightly different bytecodes, but a
large addition is needed to translate calculus expressions into
procedural form" (section 6).  The calculus translation lives in
:mod:`repro.opal.declarative`; this module does the classic part:
resolving names against the lexical scope chain, instance variables and
globals, and emitting stack-machine code.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import CompileError
from .bytecodes import CompiledBlock, CompiledMethod, Instruction, Op
from .nodes import (
    Assign,
    BlockNode,
    Cascade,
    Literal,
    MessageSend,
    MethodNode,
    Node,
    PathAssign,
    PathFetch,
    Return,
    Sequence,
    VarRef,
)
from .parser import parse_expression_code, parse_method


class _Scope:
    """One lexical frame's slot names, linked to its parent scope."""

    def __init__(self, names: tuple[str, ...], parent: Optional["_Scope"]) -> None:
        self.slots = {name: index for index, name in enumerate(names)}
        if len(self.slots) != len(names):
            raise CompileError(f"duplicate variable name in {names}")
        self.parent = parent

    def resolve(self, name: str) -> Optional[tuple[int, int]]:
        """(level, slot) for a temp/param, or None if not lexical."""
        level = 0
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.slots:
                return (level, scope.slots[name])
            scope = scope.parent
            level += 1
        return None


class Compiler:
    """Compiles parsed methods and code blocks.

    ``instvar_names`` (from the target class) decide which bare
    identifiers compile to instance-variable access; everything else
    unresolved becomes a global reference looked up at run time.

    Like the ST80 compiler, control-flow messages whose arguments are
    simple literal blocks (``ifTrue:``, ``and:``, ``whileTrue:`` …) are
    inlined as conditional jumps instead of closure sends; semantics are
    identical, including the errors non-Boolean values raise.  Pass
    ``inline_control_flow=False`` to compile everything as real sends.
    """

    def __init__(
        self,
        instvar_names: tuple[str, ...] = (),
        inline_control_flow: bool = True,
    ) -> None:
        self.instvar_names = set(instvar_names)
        self.inline_control_flow = inline_control_flow

    # -- entry points ------------------------------------------------------------

    def compile_method(self, node: MethodNode, class_name: str = "") -> CompiledMethod:
        """Compile a parsed method for installation in a class."""
        unit = _Unit(self, _Scope(node.params + node.body.temps, None))
        unit.compile_body(node.body.statements, is_method_body=True)
        return CompiledMethod(
            selector=node.selector,
            params=node.params,
            temps=node.body.temps,
            code=unit.code,
            literals=unit.literals,
            source=node.source,
            class_name=class_name,
        )

    def compile_code(self, node: Sequence, extra_names: tuple[str, ...] = ()) -> CompiledMethod:
        """Compile an executable code block (a "doit") as a 0-arg method.

        ``extra_names`` become pre-filled temps (the Executor binds them
        to session workspace variables).
        """
        temps = extra_names + node.temps
        unit = _Unit(self, _Scope(temps, None))
        unit.compile_body(node.statements, is_method_body=True, is_doit=True)
        return CompiledMethod(
            selector="doIt",
            params=(),
            temps=temps,
            code=unit.code,
            literals=unit.literals,
            source=None,
        )

    def compile_method_source(self, source: str, class_name: str = "") -> CompiledMethod:
        """Parse and compile method source text."""
        return self.compile_method(parse_method(source), class_name)

    def compile_source(self, source: str, extra_names: tuple[str, ...] = ()) -> CompiledMethod:
        """Parse and compile a code block."""
        return self.compile_code(parse_expression_code(source), extra_names)


class _Unit:
    """Code emission for one frame (a method body or one block)."""

    def __init__(
        self, compiler: Compiler, scope: _Scope, is_block_unit: bool = False
    ) -> None:
        self.compiler = compiler
        self.scope = scope
        self.is_block_unit = is_block_unit
        self.code: list[Instruction] = []
        self.literals: list[Any] = []

    # -- emission helpers --------------------------------------------------------

    def emit(self, op: Op, operand: Any = None) -> None:
        self.code.append(Instruction(op, operand))

    def emit_jump_placeholder(self, op: Op) -> int:
        """Emit a jump with an unknown target; returns its index."""
        self.code.append(Instruction(op, None))
        return len(self.code) - 1

    def patch_jump(self, index: int, extra: tuple = (),
                   target: int | None = None) -> None:
        """Fix a placeholder: target defaults to the next instruction.

        Conditional jumps carry ``(target, error_kind, error_what)``;
        plain JUMP carries the bare target.
        """
        target = len(self.code) if target is None else target
        op = self.code[index].op
        operand: Any = target if op is Op.JUMP else (target,) + tuple(extra)
        self.code[index] = Instruction(op, operand)

    def literal_index(self, value: Any) -> int:
        self.literals.append(value)
        return len(self.literals) - 1

    # -- bodies --------------------------------------------------------------------

    def compile_body(
        self,
        statements: tuple[Node, ...],
        is_method_body: bool,
        is_doit: bool = False,
    ) -> None:
        """Statements discard intermediate values; the tail returns.

        Methods without ``^`` answer self (Smalltalk-80); executable code
        blocks ("doits") answer their last statement's value; blocks end
        with BLOCK_END yielding the last value.
        """
        if not statements:
            if is_method_body and not is_doit:
                self.emit(Op.PUSH_SELF)
                self.emit(Op.RETURN_TOP)
            else:
                index = self.literal_index(None)
                self.emit(Op.PUSH_CONST, index)
                self.emit(Op.RETURN_TOP if is_method_body else Op.BLOCK_END)
            return
        for index, statement in enumerate(statements):
            last = index == len(statements) - 1
            if isinstance(statement, Return):
                self.expression(statement.value)
                self.emit(
                    Op.RETURN_TOP if is_method_body else Op.NONLOCAL_RETURN
                )
                return
            self.expression(statement)
            if not last:
                self.emit(Op.POP)
        if is_method_body and not is_doit:
            # a method without ^ answers self (Smalltalk-80 semantics)
            self.emit(Op.POP)
            self.emit(Op.PUSH_SELF)
            self.emit(Op.RETURN_TOP)
        elif is_doit:
            self.emit(Op.RETURN_TOP)
        else:
            self.emit(Op.BLOCK_END)

    # -- expressions ------------------------------------------------------------------

    def expression(self, node: Node) -> None:
        if isinstance(node, Literal):
            self.emit(Op.PUSH_CONST, self.literal_index(node.value))
        elif isinstance(node, VarRef):
            self.variable_read(node.name)
        elif isinstance(node, Assign):
            self.expression(node.value)
            self.variable_write(node.name)
        elif isinstance(node, MessageSend):
            self.message_send(node)
        elif isinstance(node, Cascade):
            self.cascade(node)
        elif isinstance(node, PathFetch):
            self.path_fetch(node)
        elif isinstance(node, PathAssign):
            self.path_assign(node)
        elif isinstance(node, BlockNode):
            self.block(node)
        elif isinstance(node, Return):
            raise CompileError("^ return is only legal as a statement")
        else:
            raise CompileError(f"cannot compile node {node!r}")

    def variable_read(self, name: str) -> None:
        if name == "self" or name == "super":
            self.emit(Op.PUSH_SELF)
            return
        if name == "thisContext":
            raise CompileError("thisContext is not supported in OPAL")
        location = self.scope.resolve(name)
        if location is not None:
            self.emit(Op.PUSH_TEMP, location)
            return
        if name in self.compiler.instvar_names:
            self.emit(Op.PUSH_INSTVAR, name)
            return
        self.emit(Op.PUSH_GLOBAL, name)

    def variable_write(self, name: str) -> None:
        location = self.scope.resolve(name)
        if location is not None:
            self.emit(Op.STORE_TEMP, location)
            return
        if name in self.compiler.instvar_names:
            self.emit(Op.STORE_INSTVAR, name)
            return
        raise CompileError(f"cannot assign to undeclared variable {name!r}")

    def message_send(self, node: MessageSend) -> None:
        if (
            self.compiler.inline_control_flow
            and not node.to_super
            and self._try_inline(node)
        ):
            return
        self.expression(node.receiver)
        for argument in node.args:
            self.expression(argument)
        op = Op.SUPER_SEND if node.to_super else Op.SEND
        self.emit(op, (node.selector, len(node.args)))

    # -- control-flow inlining --------------------------------------------------

    @staticmethod
    def _inlinable_block(node: Node) -> bool:
        return isinstance(node, BlockNode) and not node.params and not node.temps

    def _inline_body(self, block: BlockNode) -> None:
        """Emit a block's body in the current frame, leaving its value.

        ``^`` inside the body returns from the frame exactly as it would
        have through a closure (RETURN_TOP in a method frame, a
        non-local return when this unit is itself a block's).
        """
        statements = block.body
        if not statements:
            self.emit(Op.PUSH_CONST, self.literal_index(None))
            return
        for index, statement in enumerate(statements):
            if isinstance(statement, Return):
                self.expression(statement.value)
                self.emit(
                    Op.NONLOCAL_RETURN if self.is_block_unit else Op.RETURN_TOP
                )
                if index == len(statements) - 1:
                    # the jump that follows needs *a* stack value even
                    # though this path never falls through
                    self.emit(Op.PUSH_CONST, self.literal_index(None))
                return
            self.expression(statement)
            if index != len(statements) - 1:
                self.emit(Op.POP)

    def _try_inline(self, node: MessageSend) -> bool:
        selector = node.selector
        args = node.args
        if selector in ("ifTrue:", "ifFalse:") and len(args) == 1 and (
            self._inlinable_block(args[0])
        ):
            self._inline_conditional(
                node.receiver, selector,
                then_block=args[0] if selector == "ifTrue:" else None,
                else_block=args[0] if selector == "ifFalse:" else None,
            )
            return True
        if selector == "ifTrue:ifFalse:" and len(args) == 2 and all(
            self._inlinable_block(a) for a in args
        ):
            self._inline_conditional(node.receiver, selector, args[0], args[1])
            return True
        if selector == "ifFalse:ifTrue:" and len(args) == 2 and all(
            self._inlinable_block(a) for a in args
        ):
            self._inline_conditional(node.receiver, selector, args[1], args[0])
            return True
        if selector in ("and:", "or:") and len(args) == 1 and (
            self._inlinable_block(args[0])
        ):
            self._inline_short_circuit(node.receiver, selector, args[0])
            return True
        if selector in ("whileTrue:", "whileFalse:") and len(args) == 1 and (
            self._inlinable_block(node.receiver)
            and self._inlinable_block(args[0])
        ):
            self._inline_while(node.receiver, selector, args[0])
            return True
        if selector == "whileTrue" and not args and self._inlinable_block(
            node.receiver
        ):
            self._inline_while(node.receiver, "whileTrue:", None)
            return True
        return False

    def _inline_conditional(self, receiver: Node, selector: str,
                            then_block, else_block) -> None:
        self.expression(receiver)
        skip = self.emit_jump_placeholder(Op.JUMP_IF_FALSE)
        if then_block is not None:
            self._inline_body(then_block)
        else:
            self.emit(Op.PUSH_CONST, self.literal_index(None))
        to_end = self.emit_jump_placeholder(Op.JUMP)
        self.patch_jump(skip, extra=("dnu", selector))
        if else_block is not None:
            self._inline_body(else_block)
        else:
            self.emit(Op.PUSH_CONST, self.literal_index(None))
        self.patch_jump(to_end)

    def _inline_short_circuit(self, receiver: Node, selector: str,
                              block: BlockNode) -> None:
        self.expression(receiver)
        if selector == "and:":
            into = self.emit_jump_placeholder(Op.JUMP_IF_TRUE)
            self.emit(Op.PUSH_CONST, self.literal_index(False))
        else:
            into = self.emit_jump_placeholder(Op.JUMP_IF_FALSE)
            self.emit(Op.PUSH_CONST, self.literal_index(True))
        to_end = self.emit_jump_placeholder(Op.JUMP)
        self.patch_jump(into, extra=("dnu", selector))
        self._inline_body(block)
        self.patch_jump(to_end)

    def _inline_while(self, condition: BlockNode, selector: str,
                      body) -> None:
        top = len(self.code)
        self._inline_body(condition)
        out = self.emit_jump_placeholder(
            Op.JUMP_IF_FALSE if selector == "whileTrue:" else Op.JUMP_IF_TRUE
        )
        if body is not None:
            self._inline_body(body)
            self.emit(Op.POP)
        self.emit(Op.JUMP, top)
        self.patch_jump(
            out, extra=("loop", f"{selector.rstrip(':')} condition")
        )
        self.emit(Op.PUSH_CONST, self.literal_index(None))

    def cascade(self, node: Cascade) -> None:
        """Evaluate the receiver once; send every message to it.

        All but the last send DUP the receiver and POP their value; the
        last send consumes the receiver and its value is the cascade's.
        """
        first = node.first
        messages = [(first.selector, first.args)] + list(node.rest)
        self.expression(first.receiver)
        for selector, args in messages[:-1]:
            self.emit(Op.DUP)
            for argument in args:
                self.expression(argument)
            self.emit(Op.SEND, (selector, len(args)))
            self.emit(Op.POP)
        selector, args = messages[-1]
        for argument in args:
            self.expression(argument)
        self.emit(Op.SEND, (selector, len(args)))

    def path_fetch(self, node: PathFetch) -> None:
        self.expression(node.base)
        descriptor = []
        for step in node.steps:
            if step.time is not None:
                self.expression(step.time)
            descriptor.append((step.name, step.time is not None))
        self.emit(Op.PATH_FETCH, tuple(descriptor))

    def path_assign(self, node: PathAssign) -> None:
        self.expression(node.base)
        descriptor = []
        for step in node.steps:
            if step.time is not None:
                self.expression(step.time)
            descriptor.append((step.name, step.time is not None))
        self.expression(node.value)
        self.emit(Op.PATH_ASSIGN, tuple(descriptor))

    def block(self, node: BlockNode) -> None:
        inner = _Unit(
            self.compiler, _Scope(node.params + node.temps, self.scope),
            is_block_unit=True,
        )
        inner.compile_body(node.body, is_method_body=False)
        compiled = CompiledBlock(
            params=node.params,
            temps=node.temps,
            code=inner.code,
            literals=inner.literals,
            ast=node,
        )
        self.emit(Op.PUSH_BLOCK, self.literal_index(compiled))
