"""The OPAL parser: tokens to AST.

Standard Smalltalk-80 precedence — unary binds tighter than binary,
binary tighter than keyword; parentheses override — extended with path
steps, which bind at unary level:

    x foo!name@7!city bar   ≡   ((x foo)!name@7!city) bar

``@`` inside a path pins that component's time; its operand is a primary
expression (use parentheses for arithmetic: ``!balance@(t - 1)``).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from .lexer import Lexer
from .nodes import (
    Assign,
    BlockNode,
    Cascade,
    Literal,
    MessageSend,
    MethodNode,
    Node,
    PathAssign,
    PathFetch,
    PathStepNode,
    Return,
    Sequence,
)
from .tokens import Token, TokenType
from ..core.values import Char, Symbol

_RESERVED = {"self", "super", "true", "false", "nil", "thisContext"}


def parse_expression_code(source: str) -> Sequence:
    """Parse a code block (a "doit"): optional temps then statements."""
    return Parser(source).parse_code()


def parse_method(source: str) -> MethodNode:
    """Parse a method definition: message pattern, temps, statements."""
    return Parser(source).parse_method()


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str) -> None:
        self.source = source
        self._tokens = Lexer(source).tokens()
        self._index = 0

    # -- token plumbing ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.END:
            self._index += 1
        return token

    def _expect(self, token_type: TokenType) -> Token:
        if self.current.type is not token_type:
            raise ParseError(
                f"expected {token_type.name}, found {self.current!r}"
            )
        return self._advance()

    def _at(self, token_type: TokenType) -> bool:
        return self.current.type is token_type

    # -- entry points ------------------------------------------------------------

    def parse_code(self) -> Sequence:
        """temporaries? statements END

        Executable code blocks (unlike methods) tolerate additional
        ``| x y |`` declarations between statements — hosts send
        accumulated workspace code as one block (section 6).
        """
        temps = self._temporaries()
        statements: list[Node] = []
        while not self._at(TokenType.END):
            if self._at(TokenType.PIPE):
                temps.extend(self._temporaries())
                continue
            chunk = self._statements(TokenType.END, stop_at_pipe=True)
            statements.extend(chunk)
            if not chunk:
                break
        self._expect(TokenType.END)
        return Sequence(tuple(temps), tuple(statements))

    def parse_method(self) -> MethodNode:
        """message-pattern temporaries? statements END"""
        selector, params = self._message_pattern()
        temps = self._temporaries()
        statements = self._statements(TokenType.END)
        self._expect(TokenType.END)
        return MethodNode(
            selector, tuple(params), Sequence(tuple(temps), tuple(statements)),
            source=self.source,
        )

    def _message_pattern(self) -> tuple[str, list[str]]:
        token = self.current
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value, []
        if token.type is TokenType.BINARY:
            self._advance()
            param = self._expect(TokenType.IDENTIFIER).value
            return token.value, [param]
        if token.type is TokenType.KEYWORD:
            selector = ""
            params = []
            while self._at(TokenType.KEYWORD):
                selector += self._advance().value
                params.append(self._expect(TokenType.IDENTIFIER).value)
            return selector, params
        raise ParseError(f"malformed method pattern at {token!r}")

    # -- statements ----------------------------------------------------------------

    def _temporaries(self) -> list[str]:
        if not self._at(TokenType.PIPE):
            return []
        self._advance()
        temps = []
        while self._at(TokenType.IDENTIFIER):
            temps.append(self._advance().value)
        self._expect(TokenType.PIPE)
        return temps

    def _statements(
        self, closer: TokenType, stop_at_pipe: bool = False
    ) -> list[Node]:
        statements: list[Node] = []
        while not self._at(closer):
            if stop_at_pipe and self._at(TokenType.PIPE):
                break
            if self._at(TokenType.CARET):
                self._advance()
                statements.append(Return(self._expression()))
                if self._at(TokenType.PERIOD):
                    self._advance()
                break
            statements.append(self._expression())
            if self._at(TokenType.PERIOD):
                self._advance()
            else:
                break
        return statements

    # -- expressions -----------------------------------------------------------------

    def _expression(self) -> Node:
        # assignment?  identifier (path-steps)? ':=' ...
        if self._at(TokenType.IDENTIFIER):
            saved = self._index
            name = self._advance().value
            if self._at(TokenType.ASSIGN):
                self._advance()
                if name in _RESERVED:
                    raise ParseError(f"cannot assign to {name!r}")
                return Assign(name, self._expression())
            if self._at(TokenType.BANG):
                steps = self._path_steps()
                if self._at(TokenType.ASSIGN):
                    self._advance()
                    return PathAssign(VarRefFor(name), tuple(steps),
                                      self._expression())
            self._index = saved  # not an assignment: reparse as expression
        return self._cascade()

    def _cascade(self) -> Node:
        expr = self._keyword_expression()
        if not self._at(TokenType.SEMICOLON):
            return expr
        if not isinstance(expr, MessageSend):
            raise ParseError("cascade requires a message send before ';'")
        rest: list[tuple[str, tuple[Node, ...]]] = []
        while self._at(TokenType.SEMICOLON):
            self._advance()
            rest.append(self._cascade_message())
        return Cascade(expr, tuple(rest))

    def _cascade_message(self) -> tuple[str, tuple[Node, ...]]:
        token = self.current
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value, ()
        if token.type is TokenType.BINARY:
            self._advance()
            return token.value, (self._unary_expression(),)
        if token.type is TokenType.KEYWORD:
            selector = ""
            args: list[Node] = []
            while self._at(TokenType.KEYWORD):
                selector += self._advance().value
                args.append(self._binary_expression())
            return selector, tuple(args)
        raise ParseError(f"malformed cascade message at {token!r}")

    def _keyword_expression(self) -> Node:
        receiver = self._binary_expression()
        if not self._at(TokenType.KEYWORD):
            return receiver
        selector = ""
        args: list[Node] = []
        while self._at(TokenType.KEYWORD):
            selector += self._advance().value
            args.append(self._binary_expression())
        to_super = _is_super(receiver)
        return MessageSend(receiver, selector, tuple(args), to_super)

    def _binary_expression(self) -> Node:
        left = self._unary_expression()
        # `|` is a binary selector in expression position (the lexer emits
        # PIPE because it is also the temps/block-parameter separator)
        while self._at(TokenType.BINARY) or self._at(TokenType.PIPE):
            selector = self._advance().value
            right = self._unary_expression()
            left = MessageSend(left, selector, (right,), _is_super(left))
        return left

    def _unary_expression(self) -> Node:
        node = self._primary()
        while True:
            if self._at(TokenType.IDENTIFIER) and not (
                self._peek().type is TokenType.ASSIGN
            ):
                selector = self._advance().value
                node = MessageSend(node, selector, (), _is_super(node))
            elif self._at(TokenType.BANG):
                steps = self._path_steps()
                node = PathFetch(node, tuple(steps))
            else:
                return node

    def _path_steps(self) -> list[PathStepNode]:
        steps: list[PathStepNode] = []
        while self._at(TokenType.BANG):
            self._advance()
            token = self.current
            if token.type in (TokenType.IDENTIFIER, TokenType.STRING,
                              TokenType.INTEGER):
                self._advance()
                name = token.value
            else:
                raise ParseError(f"bad path component at {token!r}")
            time: Optional[Node] = None
            if self._at(TokenType.AT):
                self._advance()
                time = self._primary()
            steps.append(PathStepNode(name, time))
        return steps

    def _primary(self) -> Node:
        token = self.current
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return VarRefFor(token.value)
        if token.type is TokenType.INTEGER or token.type is TokenType.FLOAT:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.CHARACTER:
            self._advance()
            return Literal(Char(token.value))
        if token.type is TokenType.SYMBOL:
            self._advance()
            return Literal(Symbol(token.value))
        if token.type is TokenType.ARRAY_START:
            self._advance()
            return Literal(tuple(self._array_elements()))
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._expression()
            self._expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.LBRACKET:
            return self._block()
        raise ParseError(f"unexpected {token!r}")

    def _array_elements(self) -> list:
        elements: list = []
        while not self._at(TokenType.RPAREN):
            token = self.current
            if token.type in (TokenType.INTEGER, TokenType.FLOAT,
                              TokenType.STRING):
                self._advance()
                elements.append(token.value)
            elif token.type is TokenType.CHARACTER:
                self._advance()
                elements.append(Char(token.value))
            elif token.type is TokenType.SYMBOL:
                self._advance()
                elements.append(Symbol(token.value))
            elif token.type is TokenType.IDENTIFIER and token.value in (
                "true", "false", "nil",
            ):
                self._advance()
                elements.append({"true": True, "false": False, "nil": None}[
                    token.value
                ])
            elif token.type is TokenType.IDENTIFIER:
                # bare identifiers in literal arrays are symbols (ST80)
                self._advance()
                elements.append(Symbol(token.value))
            elif token.type is TokenType.KEYWORD:
                self._advance()
                elements.append(Symbol(token.value))
            elif token.type is TokenType.ARRAY_START or (
                token.type is TokenType.LPAREN
            ):
                # nested literal arrays may omit the leading # (ST80)
                self._advance()
                elements.append(tuple(self._array_elements()))
            elif token.type is TokenType.BINARY:
                self._advance()
                elements.append(Symbol(token.value))
            else:
                raise ParseError(f"bad literal array element {token!r}")
        self._expect(TokenType.RPAREN)
        return elements

    def _block(self) -> BlockNode:
        self._expect(TokenType.LBRACKET)
        params: list[str] = []
        while self._at(TokenType.COLON):
            self._advance()
            params.append(self._expect(TokenType.IDENTIFIER).value)
        if params:
            if self._at(TokenType.PIPE):
                self._advance()
            elif not self._at(TokenType.RBRACKET):
                raise ParseError("expected '|' after block parameters")
        temps = self._temporaries() if self._at(TokenType.PIPE) else []
        statements = self._statements(TokenType.RBRACKET)
        self._expect(TokenType.RBRACKET)
        return BlockNode(tuple(params), tuple(temps), tuple(statements))


def VarRefFor(name: str):
    """Build a VarRef or literal for the pseudo-variables."""
    from .nodes import VarRef

    constants = {"true": True, "false": False, "nil": None}
    if name in constants:
        return Literal(constants[name])
    return VarRef(name)


def _is_super(node: Node) -> bool:
    from .nodes import VarRef

    return isinstance(node, VarRef) and node.name == "super"
