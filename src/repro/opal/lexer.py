"""The OPAL lexer: source text to tokens.

Smalltalk-80 lexical rules: double-quoted comments are whitespace,
single-quoted strings double their quotes to escape, ``$x`` is a
character, ``#`` introduces symbols and literal arrays, identifiers
followed immediately by ``:`` are keywords.  OPAL adds ``!`` and ``@``
as path tokens (never part of binary selectors).
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import BINARY_CHARS, Token, TokenType


def _is_digit(char: str) -> bool:
    """ASCII digits only: Unicode digit-likes are not OPAL numerals."""
    return "0" <= char <= "9"


class Lexer:
    """Streams tokens from OPAL source text."""

    #: token types after which `-` is subtraction, not a numeric sign
    _OPERAND_ENDS = frozenset(
        {
            TokenType.IDENTIFIER,
            TokenType.INTEGER,
            TokenType.FLOAT,
            TokenType.STRING,
            TokenType.CHARACTER,
            TokenType.SYMBOL,
            TokenType.RPAREN,
            TokenType.RBRACKET,
        }
    )

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1
        self._prev_type: TokenType | None = None

    def tokens(self) -> list[Token]:
        """Lex the whole source; the final token is always END."""
        result = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.type is TokenType.END:
                return result

    # -- internals --------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self) -> str:
        char = self.source[self.pos]
        self.pos += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def _skip_blank(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char.isspace():
                self._advance()
            elif char == '"':  # comment
                self._advance()
                while True:
                    if self.pos >= len(self.source):
                        raise LexError("unterminated comment", self.line, self.column)
                    if self._advance() == '"':
                        break
            else:
                return

    def next_token(self) -> Token:
        """Lex one token."""
        token = self._lex_token()
        self._prev_type = token.type
        return token

    def _lex_token(self) -> Token:
        self._skip_blank()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token(TokenType.END, None, line, column)
        char = self._peek()

        if char.isalpha() or char == "_":
            return self._identifier_or_keyword(line, column)
        if _is_digit(char):
            return self._number(line, column)
        if char == "'":
            return Token(TokenType.STRING, self._string_body(), line, column)
        if char == "$":
            self._advance()
            if self.pos >= len(self.source):
                raise LexError("character literal at end of input", line, column)
            return Token(TokenType.CHARACTER, self._advance(), line, column)
        if char == "#":
            return self._hash(line, column)

        simple = {
            "(": TokenType.LPAREN, ")": TokenType.RPAREN,
            "[": TokenType.LBRACKET, "]": TokenType.RBRACKET,
            ";": TokenType.SEMICOLON, ".": TokenType.PERIOD,
            "^": TokenType.CARET, "!": TokenType.BANG, "@": TokenType.AT,
        }
        if char in simple:
            self._advance()
            return Token(simple[char], char, line, column)

        if char == ":":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenType.ASSIGN, ":=", line, column)
            return Token(TokenType.COLON, ":", line, column)

        if char == "|":
            # `|` may start a binary selector like || — keep single | as PIPE
            self._advance()
            if self._peek() in BINARY_CHARS and self._peek() != "|":
                selector = "|" + self._advance()
                return Token(TokenType.BINARY, selector, line, column)
            return Token(TokenType.PIPE, "|", line, column)

        if (
            char == "-"
            and _is_digit(self._peek(1))
            and self._prev_type not in self._OPERAND_ENDS
        ):
            self._advance()
            token = self._number(line, column)
            value = -token.value
            return Token(token.type, value, line, column)

        if char in BINARY_CHARS:
            selector = self._advance()
            if self._peek() in BINARY_CHARS | {"|"}:
                selector += self._advance()
            return Token(TokenType.BINARY, selector, line, column)

        raise LexError(f"unexpected character {char!r}", line, column)

    def _identifier_or_keyword(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        if self._peek() == ":" and self._peek(1) != "=":
            self._advance()
            return Token(TokenType.KEYWORD, text + ":", line, column)
        return Token(TokenType.IDENTIFIER, text, line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        while _is_digit(self._peek()):
            self._advance()
        if self._peek() == "." and _is_digit(self._peek(1)):
            self._advance()
            while _is_digit(self._peek()):
                self._advance()
            if self._peek() in ("e", "E") and (
                _is_digit(self._peek(1))
                or (self._peek(1) == "-" and _is_digit(self._peek(2)))
            ):
                self._advance()
                if self._peek() == "-":
                    self._advance()
                while _is_digit(self._peek()):
                    self._advance()
            return Token(
                TokenType.FLOAT, float(self.source[start : self.pos]), line, column
            )
        if self._peek() == "r":  # radix integers, e.g. 16rFF
            radix = int(self.source[start : self.pos])
            if 2 <= radix <= 36:
                self._advance()
                digit_start = self.pos
                while self._peek().isalnum():
                    self._advance()
                digits = self.source[digit_start : self.pos]
                if not digits:
                    raise LexError("radix integer needs digits", line, column)
                try:
                    return Token(
                        TokenType.INTEGER, int(digits, radix), line, column
                    )
                except ValueError as error:
                    raise LexError(
                        f"bad radix-{radix} literal {digits!r}", line, column
                    ) from error
        return Token(
            TokenType.INTEGER, int(self.source[start : self.pos]), line, column
        )

    def _string_body(self) -> str:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated string", self.line, self.column)
            char = self._advance()
            if char == "'":
                if self._peek() == "'":
                    chars.append(self._advance())
                    continue
                return "".join(chars)
            chars.append(char)

    def _hash(self, line: int, column: int) -> Token:
        self._advance()  # the '#'
        char = self._peek()
        if char == "(":
            self._advance()
            return Token(TokenType.ARRAY_START, "#(", line, column)
        if char == "'":
            return Token(TokenType.SYMBOL, self._string_body(), line, column)
        if char.isalpha() or char == "_":
            start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
                if self._peek() == ":":
                    self._advance()
            return Token(
                TokenType.SYMBOL, self.source[start : self.pos], line, column
            )
        if char in BINARY_CHARS | {"|"}:
            selector = self._advance()
            if self._peek() in BINARY_CHARS | {"|"}:
                selector += self._advance()
            return Token(TokenType.SYMBOL, selector, line, column)
        raise LexError("malformed symbol literal", line, column)
