"""Token definitions for the OPAL language.

OPAL keeps Smalltalk-80's surface syntax (section 5.4: "we have been able
to incorporate declarative statements in OPAL without departing from
Smalltalk syntax") plus two path operators the paper adds: ``!`` for
component access and ``@`` for time pinning.  ``!`` and ``@`` are
therefore *not* available as binary selector characters.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    """Kinds of OPAL tokens."""

    IDENTIFIER = auto()   # foo
    KEYWORD = auto()      # foo:
    BINARY = auto()       # + - * <= ~= , // etc.
    INTEGER = auto()      # 42
    FLOAT = auto()        # 3.14
    STRING = auto()       # 'text'
    CHARACTER = auto()    # $a
    SYMBOL = auto()       # #foo  #foo:bar:  #+  #'quoted'
    ARRAY_START = auto()  # #(
    LPAREN = auto()       # (
    RPAREN = auto()       # )
    LBRACKET = auto()     # [
    RBRACKET = auto()     # ]
    SEMICOLON = auto()    # ;
    PERIOD = auto()       # .
    CARET = auto()        # ^
    PIPE = auto()         # | (temporaries / block separator)
    ASSIGN = auto()       # :=
    COLON = auto()        # : (block parameter marker)
    BANG = auto()         # ! (path component)
    AT = auto()           # @ (path time pin)
    END = auto()          # end of input


@dataclass(frozen=True)
class Token:
    """One lexed token with its source position."""

    type: TokenType
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"<{self.type.name} {self.value!r} @{self.line}:{self.column}>"


#: characters that may form binary selectors (``!`` and ``@`` excluded —
#: they are path operators in OPAL)
BINARY_CHARS = set("+-*/~<>=&|%,?\\")
