"""The OPAL Interpreter: an abstract stack machine over the Object Manager.

Section 6: the Executor "maintains a Compiler and Interpreter for each
active user.  The Interpreter is an abstract stack machine that executes
compiledMethods consisting of sequences of bytecodes ... and makes calls
to the Object Manager."

:class:`OpalEngine` binds one store (a session or a standalone memory
manager) to the language: it owns the globals (``System``, ``World``,
class names), creates closures, runs frames, and dispatches sends
through the store's method lookup — so OPAL methods and Python
primitives intermix freely on the same classes.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.history import MISSING
from ..core.objects import GemObject
from ..core.values import Char, Ref, Symbol
from ..errors import (
    DoesNotUnderstand,
    OpalRuntimeError,
    TransactionConflict,
)
from ..perf.epochs import class_epoch
from .bytecodes import CompiledBlock, CompiledMethod, Op
from .compiler import Compiler

#: immediate receiver types whose Python type identifies their Gem class
#: exactly — safe as a monomorphic inline-cache key.  ``type()`` keeps
#: bool/int and Symbol/str apart where isinstance would not.
_INLINE_CACHEABLE = frozenset(
    (int, float, str, bool, Symbol, Char, type(None))
)


class _NonLocalReturn(Exception):
    """Unwinds block frames to the home method's frame (``^`` in a block)."""

    def __init__(self, home: "Frame", value: Any) -> None:
        super().__init__("non-local return escaped its home context")
        self.home = home
        self.value = value


class Frame:
    """One activation: a method's or block's slots, stack and pc."""

    __slots__ = (
        "code", "literals", "slots", "slot_names", "stack", "pc",
        "receiver", "lexical_parent", "home", "is_block", "method", "ics",
    )

    def __init__(
        self,
        code,
        literals,
        slot_names: tuple[str, ...],
        receiver: Any,
        lexical_parent: Optional["Frame"],
        home: Optional["Frame"],
        is_block: bool,
    ) -> None:
        self.code = code
        self.literals = literals
        self.slot_names = slot_names
        self.slots: list[Any] = [None] * len(slot_names)
        self.stack: list[Any] = []
        self.pc = 0
        self.receiver = receiver
        self.lexical_parent = lexical_parent
        self.home = home if home is not None else self
        self.is_block = is_block
        #: the CompiledMethod this frame (or its home) is executing
        self.method: Optional[CompiledMethod] = None
        #: per-call-site inline caches, shared by every activation of the
        #: same compiled code (lives on the compiled object)
        self.ics: Optional[list] = None

    def up(self, level: int) -> "Frame":
        """The frame *level* lexical scopes out."""
        frame: Frame = self
        for _ in range(level):
            if frame.lexical_parent is None:
                raise OpalRuntimeError("lexical scope chain broken")
            frame = frame.lexical_parent
        return frame


class BlockClosure:
    """A block with its defining context captured (OPAL's BlockContext)."""

    __slots__ = ("engine", "compiled", "home_frame", "receiver")

    def __init__(self, engine: "OpalEngine", compiled: CompiledBlock,
                 home_frame: Frame, receiver: Any) -> None:
        self.engine = engine
        self.compiled = compiled
        self.home_frame = home_frame
        self.receiver = receiver

    @property
    def num_args(self) -> int:
        """Number of block parameters."""
        return len(self.compiled.params)

    def call(self, *args: Any) -> Any:
        """Evaluate the block with *args*."""
        return self.engine.call_block(self, args)

    def __repr__(self) -> str:
        return f"<BlockClosure/{self.num_args}>"


class SystemObject:
    """The ``System`` global: transaction control and database commands.

    Section 6: "we have added classes and primitive methods to OPAL to
    provide transaction control, storage hints and requests for
    replication of data" — those system commands dispatch here, outside
    the class hierarchy, because System belongs to the engine, not to
    any one store state.
    """

    def __init__(self, engine: "OpalEngine") -> None:
        self.engine = engine
        #: the GemStone database facade, set when a GemSession owns the
        #: engine; enables DBA commands from OPAL
        self.database = None

    def __repr__(self) -> str:
        return "<System>"

    def send(self, selector: str, args: tuple) -> Any:
        store = self.engine.store
        if selector == "commitTransaction":
            if hasattr(store, "commit"):
                try:
                    store.commit()
                    return True
                except TransactionConflict:
                    return False
            if hasattr(store, "tick"):
                store.tick()
                return True
            return False
        if selector == "abortTransaction":
            if hasattr(store, "abort"):
                store.abort()
            return True
        if selector == "time":
            return store.current_time()
        if selector == "safeTime":
            if hasattr(store, "safe_time"):
                return store.safe_time()
            return store.current_time()
        if selector == "timeDial":
            dial = getattr(store, "time_dial", None)
            return dial.time if dial is not None else None
        if selector == "timeDial:":
            dial = getattr(store, "time_dial", None)
            if dial is None:
                raise OpalRuntimeError("this store has no time dial")
            dial.set(args[0])
            return args[0]
        if selector == "dialSafeTime":
            dial = getattr(store, "time_dial", None)
            if dial is None:
                raise OpalRuntimeError("this store has no time dial")
            return dial.set_safe()
        if selector == "index:on:":
            dm = self.engine.directory_manager
            if dm is None:
                raise OpalRuntimeError("no Directory Manager attached")
            owner = args[0]
            hint = f"{owner.oid} on {args[1]}"  # the translated hint
            return dm.apply_hint(hint)
        if selector == "objectCount":
            if hasattr(store, "object_count"):
                return store.object_count()
            if hasattr(store, "table"):
                return len(store.table)
            if hasattr(store, "store") and hasattr(store.store, "table"):
                return len(store.store.table)
            return 0
        if selector == "user":
            user = getattr(store, "user", None)
            return user.name if user is not None else None
        if selector == "replicas":
            # the paper lists "requests for replication of data" among
            # the OPAL system additions; replication here is volume-wide
            if self.database is None:
                return 1
            return len(getattr(self.database.disk, "replicas", (None,)))
        if selector in self._DBA_SELECTORS:
            return self._dba_command(selector, args)
        raise DoesNotUnderstand("System", selector)

    _DBA_SELECTORS = frozenset(
        {
            "createUser:password:",
            "createSegment:",
            "grantOn:to:privilege:",
            "compact",
            "storageReport",
        }
    )

    def _dba_command(self, selector: str, args: tuple) -> Any:
        """DBA operations as system messages (sections 4.3, 6).

        These require a full database behind the session (not a bare
        memory store) and an authenticated DBA user.
        """
        database = self.database
        if database is None:
            raise OpalRuntimeError("no database attached to this session")
        store = self.engine.store
        user = getattr(store, "user", None)
        if selector == "storageReport":
            report = database.storage_report()
            return tuple(sorted(
                (key, value) for key, value in report.items()
                if isinstance(value, (int, float, str))
            ))
        if selector == "compact":
            self._require_dba(user)
            return database.compact()
        self._require_dba(user)
        if selector == "createUser:password:":
            made = database.authorizer.create_user(user, str(args[0]), str(args[1]))
            database._persist_system_state()
            return made.name
        if selector == "createSegment:":
            segment = database.authorizer.create_segment(user, str(args[0]))
            database._persist_system_state()
            return segment.segment_id
        if selector == "grantOn:to:privilege:":
            from ..concurrency.authorization import Privilege

            privilege = Privilege[str(args[2]).upper()]
            database.authorizer.grant(user, args[0], str(args[1]), privilege)
            database._persist_system_state()
            return True
        raise DoesNotUnderstand("System", selector)

    @staticmethod
    def _require_dba(user) -> None:
        if user is None or not user.is_dba:
            raise OpalRuntimeError("DBA privileges required")


class OpalEngine:
    """The language runtime bound to one store."""

    def __init__(self, store, directory_manager=None,
                 globals_: Optional[dict[str, Any]] = None,
                 budget=None) -> None:
        self.store = store
        self.directory_manager = directory_manager
        self.globals: dict[str, Any] = dict(globals_ or {})
        self.system = SystemObject(self)
        self._world: Optional[GemObject] = None
        #: optional :class:`~repro.govern.budget.QueryBudget`: fuel the
        #: dispatch loop, sends and allocations spend, reset per execute
        self.budget = budget
        #: optional :class:`~repro.obs.Observability` (wired by GemStone):
        #: spans for execute, slow-query log for the declarative path
        self.obs = None
        store.opal_runtime = self
        from .kernel import install_kernel

        install_kernel(store)

    # -- globals ---------------------------------------------------------------

    @property
    def world(self) -> GemObject:
        """The persistent root object (``World`` in OPAL source)."""
        if self._world is None:
            catalog = getattr(self.store, "catalog", None)
            store_catalog = catalog if catalog is not None else getattr(
                getattr(self.store, "store", None), "catalog", None
            )
            if store_catalog is not None and "world" in store_catalog:
                self._world = self.store.object(store_catalog["world"])
            else:
                self._world = self.store.instantiate("Object")
                if store_catalog is not None:
                    store_catalog["world"] = self._world.oid
        return self._world

    def global_lookup(self, name: str) -> Any:
        if name == "System":
            return self.system
        if name == "World":
            return self.world
        if name in self.globals:
            return self.globals[name]
        if self.store.has_class(name):
            return self.store.class_named(name)
        raise OpalRuntimeError(f"undefined global {name!r}")

    # -- compilation -------------------------------------------------------------

    def compiler_for(self, gem_class=None) -> Compiler:
        instvars = (
            gem_class.all_instvar_names(self.store) if gem_class is not None else ()
        )
        return Compiler(instvars)

    def compile_method_into(self, gem_class, source: str) -> CompiledMethod:
        """Compile *source* and install it as an instance method."""
        method = self.compiler_for(gem_class).compile_method_source(
            source, gem_class.name
        )
        gem_class.define_method(method)
        return method

    def compile_class_method_into(self, gem_class, source: str) -> CompiledMethod:
        """Compile *source* and install it as a class-side method."""
        method = self.compiler_for(gem_class).compile_method_source(
            source, gem_class.name
        )
        gem_class.define_class_method(method)
        return method

    # -- execution ------------------------------------------------------------------

    def execute(self, source: str, bindings: Optional[dict[str, Any]] = None) -> Any:
        """Compile and run a block of OPAL source; return its value.

        This is the paper's unit of host communication: "communication
        with GemStone is done in blocks of OPAL source code" (section 6).
        ``bindings`` pre-fill workspace variables by name.
        """
        bindings = bindings or {}
        if self.budget is not None:
            self.budget.start_query()  # fresh fuel for each block
        obs = self.obs
        if obs is not None and obs.tracer.enabled:
            # guarded: with tracing off this branch costs one attribute
            # load and no span allocation
            with obs.tracer.span("opal.execute", chars=len(source)):
                return self._execute(source, bindings)
        return self._execute(source, bindings)

    def _execute(self, source: str, bindings: dict[str, Any]) -> Any:
        method = Compiler().compile_source(source, tuple(bindings))
        frame = Frame(
            method.code, method.literals, method.slot_names,
            receiver=None, lexical_parent=None, home=None, is_block=False,
        )
        frame.ics = self._inline_caches(method)
        for index, name in enumerate(bindings):
            frame.slots[index] = bindings[name]
        return self._run_method_frame(frame)

    def invoke_method(self, method: CompiledMethod, receiver: Any, args: tuple) -> Any:
        """Run a compiled method (dispatched through the Object Manager)."""
        if len(args) != len(method.params):
            raise OpalRuntimeError(
                f"#{method.selector} expects {len(method.params)} args, "
                f"got {len(args)}"
            )
        frame = Frame(
            method.code, method.literals, method.slot_names,
            receiver=receiver, lexical_parent=None, home=None, is_block=False,
        )
        frame.method = method
        frame.ics = self._inline_caches(method)
        frame.slots[: len(args)] = list(args)
        return self._run_method_frame(frame)

    @staticmethod
    def _inline_caches(compiled) -> list:
        """The compiled object's per-call-site cache list (Deutsch &
        Schiffman): one slot per bytecode, shared by all activations."""
        ics = getattr(compiled, "ics", None)
        if ics is None:
            ics = [None] * len(compiled.code)
            compiled.ics = ics
        return ics

    def _run_method_frame(self, frame: Frame) -> Any:
        try:
            return self.run_frame(frame)
        except _NonLocalReturn as unwound:
            if unwound.home is frame:
                return unwound.value
            raise

    def call_block(self, closure: BlockClosure, args: tuple) -> Any:
        """Evaluate a closure in its captured lexical context."""
        compiled = closure.compiled
        if len(args) != len(compiled.params):
            raise OpalRuntimeError(
                f"block expects {len(compiled.params)} args, got {len(args)}"
            )
        frame = Frame(
            compiled.code, compiled.literals, compiled.slot_names,
            receiver=closure.receiver,
            lexical_parent=closure.home_frame,
            home=closure.home_frame.home,
            is_block=True,
        )
        frame.method = closure.home_frame.home.method
        frame.ics = self._inline_caches(compiled)
        frame.slots[: len(args)] = list(args)
        return self.run_frame(frame)

    # -- sends ------------------------------------------------------------------------

    def send(self, receiver: Any, selector: str, *args: Any) -> Any:
        """Full OPAL dispatch, including engine-level receivers."""
        budget = self.budget
        if budget is None:
            return self._dispatch(receiver, selector, args)
        budget.enter_send()
        try:
            return self._dispatch(receiver, selector, args)
        finally:
            budget.exit_send()

    def _dispatch(self, receiver: Any, selector: str, args: tuple) -> Any:
        if isinstance(receiver, SystemObject):
            return receiver.send(selector, args)
        if isinstance(receiver, BlockClosure):
            return self._block_send(receiver, selector, args)
        if isinstance(receiver, tuple):
            return self._tuple_send(receiver, selector, args)
        method = self.store.lookup_method(receiver, selector)
        if method is None:
            class_name = self.store.class_of(receiver).name
            raise DoesNotUnderstand(class_name, selector)
        return method.invoke(self.store, receiver, args)

    def _super_send(self, defining_class_name: str, receiver: Any,
                    selector: str, args: tuple) -> Any:
        defining = self.store.class_named(defining_class_name)
        parent = defining.superclass(self.store)
        if parent is None:
            raise DoesNotUnderstand("Object(super)", selector)
        if isinstance(receiver, type(defining)) and receiver is defining:
            method = parent.lookup_class_side(self.store, selector)
            if method is None:
                method = parent.lookup(self.store, selector)
        else:
            method = parent.lookup(self.store, selector)
        if method is None:
            raise DoesNotUnderstand(f"{parent.name}(super)", selector)
        return method.invoke(self.store, receiver, args)

    def _block_send(self, closure: BlockClosure, selector: str, args: tuple) -> Any:
        if selector in ("value", "value:", "value:value:", "value:value:value:",
                        "value:value:value:value:"):
            return closure.call(*args)
        if selector == "numArgs":
            return closure.num_args
        if selector == "whileTrue:":
            body = args[0]
            while self._as_boolean(closure.call(), "whileTrue: condition"):
                self.send(body, "value")
            return None
        if selector == "whileFalse:":
            body = args[0]
            while not self._as_boolean(closure.call(), "whileFalse: condition"):
                self.send(body, "value")
            return None
        if selector == "whileTrue":
            while self._as_boolean(closure.call(), "whileTrue condition"):
                pass
            return None
        raise DoesNotUnderstand("BlockContext", selector)

    def _tuple_send(self, receiver: tuple, selector: str, args: tuple) -> Any:
        """Literal arrays (#(1 2 3)) behave as read-only arrays."""
        if selector == "size":
            return len(receiver)
        if selector == "at:":
            index = args[0]
            if not 1 <= index <= len(receiver):
                raise OpalRuntimeError(f"array index {index} out of 1..{len(receiver)}")
            return receiver[index - 1]
        if selector == "isEmpty":
            return len(receiver) == 0
        if selector == "notEmpty":
            return len(receiver) != 0
        if selector == "includes:":
            return args[0] in receiver
        if selector == "do:":
            for element in receiver:
                self.send(args[0], "value:", element)
            return receiver
        if selector == "collect:":
            return tuple(self.send(args[0], "value:", e) for e in receiver)
        if selector == "select:":
            return tuple(
                e for e in receiver
                if self._as_boolean(self.send(args[0], "value:", e), "select:")
            )
        if selector == "inject:into:":
            accumulator = args[0]
            for element in receiver:
                accumulator = self.send(args[1], "value:value:", accumulator, element)
            return accumulator
        if selector == ",":
            other = args[0]
            if isinstance(other, tuple):
                return receiver + other
            raise OpalRuntimeError("can only concatenate literal arrays")
        if selector == "asOrderedTuple":
            return receiver
        if selector == "printString":
            return "#(" + " ".join(str(e) for e in receiver) + ")"
        raise DoesNotUnderstand("LiteralArray", selector)

    @staticmethod
    def _as_boolean(value: Any, what: str) -> bool:
        if value is True or value is False:
            return value
        raise OpalRuntimeError(f"{what} must answer a Boolean, got {value!r}")

    # -- the dispatch loop -----------------------------------------------------------------

    def run_frame(self, frame: Frame) -> Any:
        """Execute one frame to completion; returns its value."""
        store = self.store
        code = frame.code
        stack = frame.stack
        budget = self.budget
        perf = getattr(store, "perf", None)
        ics = frame.ics if (perf is not None and perf.enabled) else None
        while True:
            if budget is not None:
                budget.charge_steps()  # fuel: one unit per bytecode
            instruction = code[frame.pc]
            frame.pc += 1
            op = instruction.op

            if op is Op.PUSH_CONST:
                stack.append(frame.literals[instruction.operand])
            elif op is Op.PUSH_SELF:
                stack.append(frame.receiver)
            elif op is Op.PUSH_TEMP:
                level, slot = instruction.operand
                stack.append(frame.up(level).slots[slot])
            elif op is Op.STORE_TEMP:
                level, slot = instruction.operand
                frame.up(level).slots[slot] = stack[-1]
            elif op is Op.PUSH_INSTVAR:
                value = store.value_at(frame.receiver, instruction.operand)
                stack.append(None if value is MISSING else store.deref(value))
            elif op is Op.STORE_INSTVAR:
                store.bind(frame.receiver, instruction.operand, stack[-1])
            elif op is Op.PUSH_GLOBAL:
                stack.append(self.global_lookup(instruction.operand))
            elif op is Op.PUSH_BLOCK:
                compiled = frame.literals[instruction.operand]
                stack.append(BlockClosure(self, compiled, frame, frame.receiver))
            elif op is Op.SEND:
                selector, argc = instruction.operand
                args = tuple(stack[len(stack) - argc:]) if argc else ()
                del stack[len(stack) - argc:]
                receiver = stack.pop()
                method = None
                if ics is not None:
                    rtype = type(receiver)
                    if rtype is GemObject:
                        class_key = receiver.class_oid
                    elif rtype in _INLINE_CACHEABLE:
                        class_key = rtype
                    else:
                        class_key = None  # engine-level / exotic receiver
                    if class_key is not None:
                        site = frame.pc - 1
                        entry = ics[site]
                        epoch = class_epoch.value
                        if (
                            entry is not None
                            and entry[0] == class_key
                            and entry[1] == epoch
                        ):
                            perf.inline_hits += 1
                            method = entry[2]
                        else:
                            perf.inline_misses += 1
                            method = store.lookup_method(receiver, selector)
                            if method is not None:
                                ics[site] = (class_key, epoch, method)
                            # DNU: fall through to full dispatch, which
                            # raises with the receiver's class name
                if method is None:
                    stack.append(self.send(receiver, selector, *args))
                elif budget is None:
                    stack.append(method.invoke(store, receiver, args))
                else:
                    budget.enter_send()
                    try:
                        stack.append(method.invoke(store, receiver, args))
                    finally:
                        budget.exit_send()
            elif op is Op.SUPER_SEND:
                selector, argc = instruction.operand
                args = tuple(stack[len(stack) - argc:]) if argc else ()
                del stack[len(stack) - argc:]
                receiver = stack.pop()
                defining = self._defining_class_name(frame)
                stack.append(
                    self._super_send(defining, receiver, selector, args)
                )
            elif op is Op.PATH_FETCH:
                stack.append(self._path_fetch(frame, instruction.operand))
            elif op is Op.PATH_ASSIGN:
                value = stack.pop()
                self._path_assign(frame, instruction.operand, value)
                stack.append(value)
            elif op is Op.JUMP:
                frame.pc = instruction.operand
            elif op is Op.JUMP_IF_FALSE:
                target, kind, what = instruction.operand
                value = stack.pop()
                if value is False:
                    frame.pc = target
                elif value is not True:
                    self._branch_error(kind, what, value)
            elif op is Op.JUMP_IF_TRUE:
                target, kind, what = instruction.operand
                value = stack.pop()
                if value is True:
                    frame.pc = target
                elif value is not False:
                    self._branch_error(kind, what, value)
            elif op is Op.POP:
                stack.pop()
            elif op is Op.DUP:
                stack.append(stack[-1])
            elif op is Op.RETURN_TOP:
                return stack.pop()
            elif op is Op.NONLOCAL_RETURN:
                raise _NonLocalReturn(frame.home, stack.pop())
            elif op is Op.BLOCK_END:
                return stack.pop()
            else:  # pragma: no cover - exhaustive
                raise OpalRuntimeError(f"unknown opcode {op}")

    def _branch_error(self, kind: str, what: str, value: Any) -> None:
        """Inlined control flow keeps the un-inlined error behavior."""
        if kind == "dnu":
            # e.g. `3 ifTrue: [...]`: Integer does not understand #ifTrue:
            raise DoesNotUnderstand(self.store.class_of(value).name, what)
        raise OpalRuntimeError(f"{what} must answer a Boolean, got {value!r}")

    def _defining_class_name(self, frame: Frame) -> str:
        method = frame.home.method
        if method is None or not method.class_name:
            raise OpalRuntimeError("super send outside a method context")
        return method.class_name

    # -- paths --------------------------------------------------------------------------------

    def _pop_path_times(self, frame: Frame, descriptor) -> list[Optional[Any]]:
        pinned = sum(1 for _, has_time in descriptor if has_time)
        times = frame.stack[len(frame.stack) - pinned:] if pinned else []
        del frame.stack[len(frame.stack) - pinned:]
        iterator = iter(times)
        return [next(iterator) if has_time else None for _, has_time in descriptor]

    def _path_fetch(self, frame: Frame, descriptor) -> Any:
        times = self._pop_path_times(frame, descriptor)
        current = frame.stack.pop()
        for index, ((name, _), time) in enumerate(zip(descriptor, times)):
            if not isinstance(current, (GemObject, Ref)):
                raise OpalRuntimeError(
                    f"path component !{name}: receiver is not an object"
                )
            value = self.store.value_at(current, name, time)
            last = index == len(descriptor) - 1
            if value is MISSING:
                if last:
                    return None  # unbound optional element reads as nil
                raise OpalRuntimeError(f"no value at path component !{name}")
            if value is None and not last:
                raise OpalRuntimeError(f"nil at path component !{name}")
            current = self.store.deref(value)
        return current

    def _path_assign(self, frame: Frame, descriptor, value: Any) -> None:
        times = self._pop_path_times(frame, descriptor)
        current = frame.stack.pop()
        last_name, last_has_time = descriptor[-1]
        if last_has_time:
            raise OpalRuntimeError("cannot assign into the past")
        for (name, _), time in zip(descriptor[:-1], times[:-1]):
            if not isinstance(current, (GemObject, Ref)):
                raise OpalRuntimeError(
                    f"path component !{name}: receiver is not an object"
                )
            fetched = self.store.value_at(current, name, time)
            if fetched is MISSING or fetched is None:
                raise OpalRuntimeError(f"no value at path component !{name}")
            current = self.store.deref(fetched)
        if not isinstance(current, (GemObject, Ref)):
            raise OpalRuntimeError("path assignment target is not an object")
        self.store.bind(current, last_name, value)
