"""``repro.opal`` — the OPAL language.

Smalltalk-80 syntax extended with path expressions, time pins, and
declarative select blocks (sections 4-6 of the paper): lexer → parser →
compiler → bytecodes, executed by an abstract stack machine over any
Object Manager, with the kernel class library seeded as primitives.
"""

from .bytecodes import CompiledBlock, CompiledMethod, Instruction, Op, disassemble
from .compiler import Compiler
from .declarative import selector_is_element_fetch, try_declarative_filter
from .interpreter import BlockClosure, Frame, OpalEngine, SystemObject
from .kernel import install_kernel, print_string
from .lexer import Lexer
from .nodes import (
    Assign,
    BlockNode,
    Cascade,
    Literal,
    MessageSend,
    MethodNode,
    PathAssign,
    PathFetch,
    PathStepNode,
    Return,
    Sequence,
    VarRef,
)
from .parser import Parser, parse_expression_code, parse_method
from .tokens import Token, TokenType

__all__ = [
    "Assign",
    "BlockClosure",
    "BlockNode",
    "Cascade",
    "CompiledBlock",
    "CompiledMethod",
    "Compiler",
    "Frame",
    "Instruction",
    "Lexer",
    "Literal",
    "MessageSend",
    "MethodNode",
    "Op",
    "OpalEngine",
    "Parser",
    "PathAssign",
    "PathFetch",
    "PathStepNode",
    "Return",
    "Sequence",
    "SystemObject",
    "Token",
    "TokenType",
    "VarRef",
    "disassemble",
    "install_kernel",
    "parse_expression_code",
    "parse_method",
    "print_string",
    "selector_is_element_fetch",
    "try_declarative_filter",
]
