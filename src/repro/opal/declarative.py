"""Declarative select blocks: OPAL blocks translated to set calculus.

Section 6: "The Compiler requires some modifications from the ST80
compiler ... a large addition is needed to translate calculus
expressions into procedural form."  In this reproduction the recognizer
runs at ``select:``/``reject:`` time: if the block's AST is a pure
condition over its parameter — paths, literals, comparisons,
arithmetic, ``includes:``, ``and:``/``or:``/``not`` — it becomes a
:class:`~repro.stdm.calculus.SetQuery`, is translated to algebra, and is
optimized against the registered directories, so an indexed selection
never scans.  Anything else (outer-variable capture, general message
sends, multiple statements) falls back to procedural iteration, which is
exactly the paper's "calculus ... can include procedural parts".

A unary message in a block (``e salary``) is treated as an element fetch
only when it provably means that: either no class in the store defines
the selector as a method, or every definition is a simple same-named
getter (``salary ^salary`` compiles to ``PUSH_INSTVAR salary; RETURN``).
Otherwise the block is procedural — correctness over speed.
"""

from __future__ import annotations

import time as _time
from typing import Any, Optional

from ..core.classes import GemClass
from ..core.objects import GemObject
from ..core.paths import Path, Step
from ..core.values import Ref
from ..errors import GemStoneError, QueryBudgetExceeded
from ..perf.epochs import class_epoch
from ..stdm.calculus import (
    And,
    Apply,
    Compare,
    Const,
    Expr,
    In,
    Not,
    Or,
    PathApply,
    QueryContext,
    SetQuery,
    Var,
)
from ..stdm.algebra import executor_mode
from ..stdm.optimize import best_plan
from .bytecodes import Op
from .nodes import BlockNode, Literal, MessageSend, PathFetch, VarRef


class _NotDeclarative(Exception):
    """Internal: this block cannot be translated; run it procedurally."""


_COMPARISONS = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "=": "==", "~=": "!="}
_ARITHMETIC = {"+", "-", "*", "/"}


def selector_is_element_fetch(store, selector: str) -> bool:
    """True if a unary *selector* can only mean an element fetch.

    Either no class defines it, or every definition is the trivial
    getter of the same-named instance variable.
    """
    stores = [store]
    base = getattr(store, "store", None)
    if base is not None:  # the shared store behind a session overlay
        stores.append(base)
    for target in stores:
        for name in list(target.classes):
            cls = target.class_named(name)
            if not isinstance(cls, GemClass):
                continue
            method = cls.methods.get(selector)
            if method is not None and not _is_trivial_getter(method, selector):
                return False
    return True


def _is_trivial_getter(method: Any, selector: str) -> bool:
    code = getattr(method, "code", None)
    if code is None:
        return False  # a primitive: semantics unknown
    if len(code) != 2:
        return False
    return (
        code[0].op is Op.PUSH_INSTVAR
        and code[0].operand == selector
        and code[1].op is Op.RETURN_TOP
    )


class BlockTranslator:
    """Translates one block body into a calculus condition."""

    def __init__(self, store, param: str) -> None:
        self.store = store
        self.param = param

    def translate(self, block: BlockNode) -> Expr:
        if len(block.params) != 1 or block.temps:
            raise _NotDeclarative
        if len(block.body) != 1:
            raise _NotDeclarative
        return self.expression(block.body[0])

    def expression(self, node) -> Expr:
        if isinstance(node, Literal):
            if isinstance(node.value, tuple):
                return Const(list(node.value))
            return Const(node.value)
        if isinstance(node, VarRef):
            if node.name == self.param:
                return Var(self.param)
            raise _NotDeclarative  # outer capture: procedural
        if isinstance(node, PathFetch):
            return self.path(node)
        if isinstance(node, MessageSend):
            return self.message(node)
        raise _NotDeclarative

    def path(self, node: PathFetch) -> Expr:
        base = self.expression(node.base)
        steps = []
        for step in node.steps:
            if step.time is None:
                steps.append(Step(step.name))
            elif isinstance(step.time, Literal) and isinstance(
                step.time.value, int
            ):
                steps.append(Step(step.name, step.time.value))
            else:
                raise _NotDeclarative  # computed time pins stay procedural
        if isinstance(base, PathApply):
            return PathApply(base.base, Path(base.path_expr.steps + tuple(steps)))
        return PathApply(base, Path(tuple(steps)))

    def message(self, node: MessageSend) -> Expr:
        selector = node.selector
        if selector in _COMPARISONS and len(node.args) == 1:
            return Compare(
                _COMPARISONS[selector],
                self.expression(node.receiver),
                self.expression(node.args[0]),
            )
        if selector in _ARITHMETIC and len(node.args) == 1:
            from ..stdm.calculus import BinOp

            return BinOp(
                selector,
                self.expression(node.receiver),
                self.expression(node.args[0]),
            )
        if selector == "includes:":
            return In(self.expression(node.args[0]), self.expression(node.receiver))
        if selector == "between:and:":
            target = self.expression(node.receiver)
            low = self.expression(node.args[0])
            high = self.expression(node.args[1])
            return And(Compare(">=", target, low), Compare("<=", target, high))
        if selector == "not":
            return Not(self.expression(node.receiver))
        if selector in ("and:", "or:"):
            right = self.inner_block_condition(node.args[0])
            left = self.expression(node.receiver)
            return And(left, right) if selector == "and:" else Or(left, right)
        if selector in ("&", "|") and len(node.args) == 1:
            left = self.expression(node.receiver)
            right = self.expression(node.args[0])
            return And(left, right) if selector == "&" else Or(left, right)
        if selector == "isNil" and not node.args:
            return Compare("==", self.expression(node.receiver), Const(None))
        if selector == "notNil" and not node.args:
            return Not(Compare("==", self.expression(node.receiver), Const(None)))
        if not node.args and not node.to_super:
            # unary message as element fetch, when provably safe
            if selector_is_element_fetch(self.store, selector):
                base = self.expression(node.receiver)
                if isinstance(base, PathApply):
                    return PathApply(
                        base.base,
                        Path(base.path_expr.steps + (Step(selector),)),
                    )
                return PathApply(base, Path((Step(selector),)))
        raise _NotDeclarative

    def inner_block_condition(self, node) -> Expr:
        """The body of a 0-argument block (and:/or: arguments)."""
        if not isinstance(node, BlockNode) or node.params or node.temps:
            raise _NotDeclarative
        if len(node.body) != 1:
            raise _NotDeclarative
        return self.expression(node.body[0])


#: memoized "this block cannot be translated" (distinct from None results)
_NOT_DECLARATIVE = object()

#: per-compiled-block memo caps: one translation slot per store, a
#: handful of plans (same block over several collections); cleared
#: wholesale on overflow since stale-epoch keys just accumulate
_TRANSLATION_MEMO_MAX = 16
_PLAN_MEMO_MAX = 32


def _cached_condition(store, perf, compiled, block_ast, param):
    """The block's calculus condition, memoized on the compiled block.

    The memo key is (store token, class epoch): translation consults the
    store's classes (trivial-getter recognition), so any hierarchy
    change — method (re)definition, new class, overlay reset — re-runs
    the recognizer.  Returns :data:`_NOT_DECLARATIVE` for untranslatable
    blocks (also memoized: the failure repeats every call otherwise).

    The second element of the returned pair is cache provenance for the
    slow-query log: ``"memo"``, ``"fresh"``, or ``"uncached"``.
    """
    if perf is None or not perf.enabled:
        try:
            return BlockTranslator(store, param).translate(block_ast), "uncached"
        except _NotDeclarative:
            return _NOT_DECLARATIVE, "uncached"
    memo = getattr(compiled, "calc_memo", None)
    if memo is None:
        memo = {}
        compiled.calc_memo = memo
    key = (perf.store_token, class_epoch.value)
    cached = memo.get(key)
    if cached is not None:
        perf.translation_hits += 1
        return cached, "memo"
    perf.translation_misses += 1
    try:
        condition = BlockTranslator(store, param).translate(block_ast)
    except _NotDeclarative:
        condition = _NOT_DECLARATIVE
    if len(memo) >= _TRANSLATION_MEMO_MAX:
        memo.clear()
    memo[key] = condition
    return condition, "fresh"


def _collection_oid(collection) -> Optional[int]:
    """The oid when *collection* names one stored set object."""
    if type(collection) is GemObject or isinstance(collection, Ref):
        return collection.oid
    if isinstance(collection, GemObject):  # GemClass etc.: don't memoize
        return None
    return None


def try_declarative_filter(store, collection, closure, negate: bool) -> Optional[list]:
    """Run a select:/reject: block declaratively, or return None.

    Returns the chosen member list on success.  The plan is optimized
    against the engine's Directory Manager, and evaluation honours the
    session's time dial.  Both the block→calculus translation and the
    optimized plan are memoized on the compiled block; see
    ``docs/performance.md`` for the keys and invalidation triggers.
    """
    engine = getattr(store, "opal_runtime", None)
    compiled = getattr(closure, "compiled", None)
    block_ast = getattr(compiled, "ast", None)
    if engine is None or block_ast is None:
        return None
    if len(getattr(compiled, "params", ())) != 1:
        return None
    param = compiled.params[0]
    perf = getattr(store, "perf", None)
    condition, translation_provenance = _cached_condition(
        store, perf, compiled, block_ast, param
    )
    if condition is _NOT_DECLARATIVE:
        return None
    directory_manager = engine.directory_manager
    dm_epoch = directory_manager.epoch if directory_manager is not None else -1
    owner_oid = _collection_oid(collection)
    plan = None
    plan_key = None
    plan_provenance = "uncached"
    if perf is not None and perf.enabled and owner_oid is not None:
        # the executor-mode token: a plan cached under one execution
        # mode must not silently serve another (modes differ in how a
        # plan runs, and explain/slow-log provenance must stay truthful)
        plan_key = (
            perf.store_token, class_epoch.value, dm_epoch, negate, owner_oid,
            executor_mode(),
        )
        plan_memo = getattr(compiled, "plan_memo", None)
        if plan_memo is None:
            plan_memo = {}
            compiled.plan_memo = plan_memo
        plan = plan_memo.get(plan_key)
        if plan is not None:
            perf.plan_hits += 1
            plan_provenance = "memo"
    if plan is None:
        if negate:
            condition = Not(condition)
        # bind the collection by Ref, not by instance: a cached plan
        # must re-dereference at run time so ObjectCache evictions (and
        # later commits) can never serve it a stale set object
        source = Const(Ref(owner_oid)) if owner_oid is not None else Const(collection)
        query = SetQuery(
            result=Var(param),
            binders=[(Var(param), source)],
            condition=condition,
        )
        plan = best_plan(query, directory_manager)
        if plan_key is not None:
            perf.plan_misses += 1
            plan_provenance = "fresh"
            plan_memo = compiled.plan_memo
            if len(plan_memo) >= _PLAN_MEMO_MAX:
                plan_memo.clear()
            plan_memo[plan_key] = plan
    dial = getattr(store, "time_dial", None)
    time = dial.time if dial is not None else None
    budget = engine.budget
    if budget is not None:
        # one unit for the query itself; per-member fuel is charged by
        # the context during execution (no O(n) pre-count of the input)
        budget.charge_steps(1)
    context = QueryContext(store, time, directory_manager, budget)
    obs = getattr(engine, "obs", None)
    started = _time.perf_counter()
    try:
        chosen = plan.run(context)
    except QueryBudgetExceeded:
        if obs is not None:
            _log_query(
                obs, compiled, block_ast, plan, context, started,
                negate, translation_provenance, plan_provenance,
                outcome="killed",
            )
        raise  # a dead budget must kill the query, not go procedural
    except GemStoneError:
        return None  # fall back to procedural semantics
    if obs is not None:
        _log_query(
            obs, compiled, block_ast, plan, context, started,
            negate, translation_provenance, plan_provenance,
            result_count=len(chosen),
        )
    return chosen


def _log_query(
    obs, compiled, block_ast, plan, context, started,
    negate, translation_provenance, plan_provenance,
    result_count: Optional[int] = None, outcome: str = "ok",
) -> None:
    """Report one finished declarative query to the slow-query log."""
    from ..obs.slowlog import describe_plan, render_block

    elapsed_ms = (_time.perf_counter() - started) * 1e3
    source = getattr(compiled, "rendered_source", None)
    if source is None:
        source = render_block(block_ast)
        compiled.rendered_source = source  # unparse once per block
    entry = {
        "source": source,
        "plan": describe_plan(plan),
        "candidates": context.examined,
        "elapsed_ms": elapsed_ms,
        "negate": negate,
        "translation": translation_provenance,
        "plan_cache": plan_provenance,
        "executor": executor_mode(),
        "outcome": outcome,
        "request_id": obs.tracer.current_request,
    }
    if result_count is not None:
        entry["result_count"] = result_count
    obs.slow_queries.record(entry)
    obs.registry.inc("query.declarative")
    if obs.tracer.enabled:
        obs.tracer.event(
            "query.select", elapsed_ms,
            candidates=context.examined, outcome=outcome,
        )
