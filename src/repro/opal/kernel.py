"""The OPAL kernel: primitive methods on the bootstrap classes.

Section 6: the GemStone system structure "is similar to that of ST80,
minus display and file system classes, but with additions for set
calculus, path syntax, time, concurrency, authorization, recovery,
replication and directories."

This module seeds the bootstrap class hierarchy with primitives —
numbers, strings, booleans, blocks, and the collection protocol over
GSDM objects.  Collections are ordinary objects whose elements are
alias→member bindings, so ``remove:`` binds the member's alias to nil:
deletion is replaced by history (section 2E), and a time-dialed session
still sees the member in past states.

``install_kernel`` is idempotent per store (classes are shared through
the stable store, so it runs once per database plus once per fresh
memory manager).
"""

from __future__ import annotations

from typing import Any

from ..core.classes import GemClass
from ..core.history import MISSING
from ..core.objects import GemObject
from ..core.values import Char, Ref, Symbol
from ..errors import OpalRuntimeError


def _engine(om):
    engine = getattr(om, "opal_runtime", None)
    if engine is None:
        raise OpalRuntimeError("no OPAL engine attached to this store")
    return engine


def _check_number(value: Any, what: str = "argument") -> Any:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise OpalRuntimeError(f"{what} must be a number, got {value!r}")
    return value


def _call(om, block, *args):
    selector = "value" if not args else "value:" * len(args)
    return _engine(om).send(block, selector, *args)


def print_string(om, value: Any, depth: int = 0) -> str:
    """Smalltalk-style display of any value."""
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, Symbol):
        return f"#{str.__str__(value)}"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, Char):
        return f"${value.char}"
    if isinstance(value, tuple):
        inner = " ".join(print_string(om, v, depth + 1) for v in value)
        return f"#({inner})"
    if isinstance(value, Ref):
        value = om.deref(value)
    if isinstance(value, GemClass):
        return value.name
    if isinstance(value, GemObject):
        cls = om.class_of(value)
        if depth >= 2:
            return _article(cls.name)
        live = list(value.items_at(None))
        if not live or len(live) > 8:
            return _article(cls.name)
        body = ", ".join(
            f"{name}: {print_string(om, om.deref(v), depth + 1)}"
            for name, v in live
        )
        return f"{_article(cls.name)}({body})"
    return repr(value)


def _article(name: str) -> str:
    return ("an " if name[:1] in "AEIOU" else "a ") + name


# --------------------------------------------------------------------------
# collection helpers (GSDM objects as collections)
# --------------------------------------------------------------------------

def members(om, collection: GemObject) -> list:
    """Live, dereferenced members of a collection object."""
    return om.members_of(collection)


def collection_add(om, collection: GemObject, value: Any) -> Any:
    """Bind *value* under a fresh alias."""
    om.bind(collection, om.new_alias(), value)
    return value


def collection_remove(om, collection: GemObject, value: Any) -> Any:
    """Record departure: bind the member's alias to nil (history kept)."""
    from ..stdm.calculus import value_equal

    for name, element in om.live_items_of(collection):
        if value_equal(om.deref(element), value) or value_equal(element, value):
            om.unbind(collection, name)
            return value
    raise OpalRuntimeError("value not found in collection")


def collection_includes(om, collection: GemObject, value: Any) -> bool:
    from ..stdm.calculus import value_equal

    return any(
        value_equal(om.deref(element), value) or value_equal(element, value)
        for _, element in om.live_items_of(collection)
    )


def _new_like(om, collection: GemObject) -> GemObject:
    """A fresh (transient) collection of the receiver's class."""
    return om.instantiate_transient(om.class_of(collection))


# --------------------------------------------------------------------------
# installation
# --------------------------------------------------------------------------

def install_kernel(om) -> None:
    """Seed primitive methods onto the bootstrap classes (idempotent)."""
    object_class = om.class_named("Object")
    if "yourself" in object_class.methods:
        return
    _install_object(om, object_class)
    _install_class_side(om, object_class, om.class_named("Class"))
    _install_boolean(om)
    _install_nil(om)
    _install_magnitude(om)
    _install_numbers(om)
    _install_strings(om)
    _install_characters(om)
    _install_collections(om)
    _install_arrays(om)
    _install_dictionaries(om)
    _install_associations(om)


def _install_object(om, object_class: GemClass) -> None:
    from ..stdm.calculus import value_equal

    d = object_class.define_primitive
    d("yourself", lambda om, r: r)
    d("class", lambda om, r: om.class_of(r))
    d("isNil", lambda om, r: r is None)
    d("notNil", lambda om, r: r is not None)
    d("==", lambda om, r, o: value_equal(r, o))
    d("~~", lambda om, r, o: not value_equal(r, o))
    d("=", lambda om, r, o: value_equal(r, o))
    d("~=", lambda om, r, o: not om.send(r, "=", o))
    d("printString", lambda om, r: print_string(om, r))
    d("isKindOf:", lambda om, r, c: om.class_of(r).is_subclass_of(om, c))
    d("isMemberOf:", lambda om, r, c: om.class_of(r) is c)
    d("respondsTo:", lambda om, r, s: om.responds_to(r, str(s)))
    d("error:", _prim_error)
    d("->", lambda om, r, o: _make_association(om, r, o))
    d("ifNil:", lambda om, r, b: r)  # non-nil receiver: answer self
    d("ifNotNil:", lambda om, r, b: _call(om, b, r))
    d("ifNil:ifNotNil:", lambda om, r, nb, b: _call(om, b, r))
    d("ifNotNil:ifNil:", lambda om, r, b, nb: _call(om, b, r))
    d("perform:", lambda om, r, s: _engine(om).send(r, str(s)))
    d("perform:with:", lambda om, r, s, a: _engine(om).send(r, str(s), a))
    d(
        "perform:with:with:",
        lambda om, r, s, a, b: _engine(om).send(r, str(s), a, b),
    )
    d("copy", _prim_copy)
    # GSDM element access: every object is a labeled set
    d("at:", _prim_element_at)
    d("at:put:", _prim_element_at_put)
    d("at:ifAbsent:", _prim_element_at_if_absent)
    d("removeKey:", _prim_remove_key)
    d("elementNames", _prim_element_names)
    d("historyOf:", _prim_history_of)
    d("instVarAt:", _prim_element_at)


def _prim_error(om, receiver, message):
    raise OpalRuntimeError(f"error: {message}")


def _prim_copy(om, receiver):
    """Shallow copy: a new identity with the current element values.

    Immediates copy to themselves (value identity); structured objects
    get a fresh oid whose elements share components with the original —
    structurally equivalent, not identical (section 4.2).
    """
    value = om.deref(receiver) if isinstance(receiver, Ref) else receiver
    if not isinstance(value, GemObject):
        return receiver
    twin = om.instantiate_transient(om.class_of(value))
    for name, element in om.live_items_of(value):
        om.bind(twin, name, element)
    return twin


def _make_association(om, key, value):
    return om.instantiate_transient("Association", key=key, value=value)


def _require_object(om, receiver, selector: str) -> GemObject:
    value = om.deref(receiver) if isinstance(receiver, Ref) else receiver
    if not isinstance(value, GemObject):
        raise OpalRuntimeError(f"#{selector} needs a structured object receiver")
    return value


def _prim_element_at(om, receiver, name):
    obj = _require_object(om, receiver, "at:")
    value = om.value_at(obj, name)
    if value is MISSING:
        raise OpalRuntimeError(f"no element named {name!r}")
    return om.deref(value)


def _prim_element_at_if_absent(om, receiver, name, absent_block):
    obj = _require_object(om, receiver, "at:ifAbsent:")
    value = om.value_at(obj, name)
    if value is MISSING:
        return _call(om, absent_block)
    return om.deref(value)


def _prim_element_at_put(om, receiver, name, value):
    obj = _require_object(om, receiver, "at:put:")
    om.bind(obj, name, value)
    return value


def _prim_remove_key(om, receiver, name):
    obj = _require_object(om, receiver, "removeKey:")
    if om.value_at(obj, name) is MISSING:
        raise OpalRuntimeError(f"no element named {name!r}")
    om.unbind(obj, name)
    return name


def _prim_element_names(om, receiver):
    obj = _require_object(om, receiver, "elementNames")
    return tuple(om.live_names_of(obj))


def _prim_history_of(om, receiver, name):
    obj = _require_object(om, receiver, "historyOf:")
    om.note_read(obj.oid, name)
    table = obj.elements.get(name)
    if table is None:
        return ()
    return tuple((time, om.deref(value)) for time, value in table.history())


def _install_class_side(om, object_class: GemClass, class_class: GemClass) -> None:
    d = object_class.define_class_primitive
    d("new", lambda om, cls: om.instantiate(cls))
    d("name", lambda om, cls: cls.name)
    d("comment:", lambda om, cls, text: om.bind(cls, "comment", text))
    d("superclass", lambda om, cls: cls.superclass(om))
    d("subclass:instVarNames:", _prim_subclass)
    d(
        "subclass:instVarNames:constraints:isInvariant:",
        lambda om, cls, name, ivs, _c, _i: _prim_subclass(om, cls, name, ivs),
    )
    d("compile:", _prim_compile)
    d("classCompile:", _prim_class_compile)
    d("selectors", lambda om, cls: tuple(sorted(cls.selectors(om))))
    d("instVarNames", lambda om, cls: tuple(cls.all_instvar_names(om)))
    d("addInstVarName:", _prim_add_instvar)
    d("allInstances", _prim_all_instances)


def _prim_subclass(om, superclass, name, instvar_names):
    names = tuple(str(n) for n in instvar_names)
    cls = om.define_class(str(name), superclass, names)
    return cls


def _prim_add_instvar(om, cls, name):
    """Schema modification without restructuring (design goal C).

    Existing instances gain the new optional variable at zero storage
    cost; the change is image-wide (like method compilation) and the
    class record is re-persisted with the committing transaction.
    """
    text = str(name)
    targets = [cls]
    base_store = getattr(om, "store", None)
    if base_store is not None and base_store.contains(cls.oid):
        canonical = base_store.object(cls.oid)
        if canonical is not cls:
            targets.append(canonical)
    for target in targets:
        target.add_instvar(text)
    # touching an element puts the class in the write set, so the new
    # structural definition is encoded and persisted at commit
    om.bind(cls, "schemaVersion", len(targets[-1].instvar_names))
    return cls


def _prim_all_instances(om, cls):
    """DBA scan: every instance (subclasses included), as a literal array.

    Covers committed objects and, in a session, its uncommitted
    creations; archived objects are skipped (they are off-line).
    """
    found: dict[int, Any] = {}
    base = getattr(om, "store", om)
    if hasattr(base, "instances_of"):
        for obj in base.instances_of(cls):
            found[obj.oid] = om.object(obj.oid)  # session view, if any
    workspace = getattr(om, "workspace", None)
    if workspace is not None:
        for obj in workspace.values():
            if obj.oid not in found and om.class_of(obj).is_subclass_of(om, cls):
                found[obj.oid] = obj
    return tuple(found[oid] for oid in sorted(found))


def _prim_compile(om, cls, source):
    return _engine(om).compile_method_into(cls, source)


def _prim_class_compile(om, cls, source):
    return _engine(om).compile_class_method_into(cls, source)


def _install_boolean(om) -> None:
    d = om.class_named("Boolean").define_primitive

    def check(value):
        if value is not True and value is not False:
            raise OpalRuntimeError("Boolean primitive on a non-boolean")
        return value

    d("not", lambda om, r: not check(r))
    d("&", lambda om, r, o: check(r) and check(o))
    d("|", lambda om, r, o: check(r) or check(o))
    d("xor:", lambda om, r, o: check(r) != check(o))
    d("and:", lambda om, r, b: _call(om, b) if check(r) else False)
    d("or:", lambda om, r, b: True if check(r) else _call(om, b))
    d("ifTrue:", lambda om, r, b: _call(om, b) if check(r) else None)
    d("ifFalse:", lambda om, r, b: None if check(r) else _call(om, b))
    d(
        "ifTrue:ifFalse:",
        lambda om, r, t, f: _call(om, t) if check(r) else _call(om, f),
    )
    d(
        "ifFalse:ifTrue:",
        lambda om, r, f, t: _call(om, t) if check(r) else _call(om, f),
    )


def _install_nil(om) -> None:
    d = om.class_named("UndefinedObject").define_primitive
    d("isNil", lambda om, r: True)
    d("notNil", lambda om, r: False)
    d("ifNil:", lambda om, r, b: _call(om, b))
    d("ifNotNil:", lambda om, r, b: None)
    d("ifNil:ifNotNil:", lambda om, r, nb, b: _call(om, nb))
    d("ifNotNil:ifNil:", lambda om, r, b, nb: _call(om, nb))
    d("printString", lambda om, r: "nil")


def _install_magnitude(om) -> None:
    d = om.class_named("Magnitude").define_primitive
    d("min:", lambda om, r, o: r if om.send(r, "<", o) else o)
    d("max:", lambda om, r, o: o if om.send(r, "<", o) else r)
    d(
        "between:and:",
        lambda om, r, lo, hi: (not om.send(r, "<", lo)) and (
            not om.send(hi, "<", r)
        ),
    )


def _install_numbers(om) -> None:
    d = om.class_named("Number").define_primitive
    num = _check_number
    d("+", lambda om, r, o: num(r) + num(o))
    d("-", lambda om, r, o: num(r) - num(o))
    d("*", lambda om, r, o: num(r) * num(o))
    d("/", _prim_divide)
    d("//", lambda om, r, o: num(r) // _nonzero(num(o)))
    d("\\\\", lambda om, r, o: num(r) % _nonzero(num(o)))
    d("rem:", lambda om, r, o: _smalltalk_rem(num(r), _nonzero(num(o))))
    d("<", lambda om, r, o: num(r) < num(o))
    d("<=", lambda om, r, o: num(r) <= num(o))
    d(">", lambda om, r, o: num(r) > num(o))
    d(">=", lambda om, r, o: num(r) >= num(o))
    d("=", lambda om, r, o: isinstance(o, (int, float))
      and not isinstance(o, bool) and r == o)
    d("abs", lambda om, r: abs(num(r)))
    d("negated", lambda om, r: -num(r))
    d("squared", lambda om, r: num(r) ** 2)
    d("sqrt", lambda om, r: num(r) ** 0.5)
    d("isZero", lambda om, r: num(r) == 0)
    d("asFloat", lambda om, r: float(num(r)))
    d("asInteger", lambda om, r: int(num(r)))
    d("truncated", lambda om, r: int(num(r)))
    d("rounded", lambda om, r: round(num(r)))
    d("even", lambda om, r: int(num(r)) % 2 == 0)
    d("odd", lambda om, r: int(num(r)) % 2 == 1)
    d("to:do:", _prim_to_do)
    d("to:by:do:", _prim_to_by_do)
    d("timesRepeat:", _prim_times_repeat)
    d("max:", lambda om, r, o: max(num(r), num(o)))
    d("min:", lambda om, r, o: min(num(r), num(o)))
    d("gcd:", lambda om, r, o: _gcd(int(num(r)), int(num(o))))


def _nonzero(value):
    if value == 0:
        raise OpalRuntimeError("division by zero")
    return value


def _prim_divide(om, receiver, divisor):
    _check_number(receiver)
    _nonzero(_check_number(divisor))
    if isinstance(receiver, int) and isinstance(divisor, int) and (
        receiver % divisor == 0
    ):
        return receiver // divisor
    return receiver / divisor


def _smalltalk_rem(a, b):
    result = abs(a) % abs(b)
    return -result if a < 0 else result


def _gcd(a, b):
    import math

    return math.gcd(a, b)


def _prim_to_do(om, start, stop, block):
    _check_number(start)
    _check_number(stop)
    index = start
    while index <= stop:
        _call(om, block, index)
        index += 1
    return start


def _prim_to_by_do(om, start, stop, step, block):
    _check_number(step)
    if step == 0:
        raise OpalRuntimeError("to:by:do: with zero step")
    index = start
    if step > 0:
        while index <= stop:
            _call(om, block, index)
            index += step
    else:
        while index >= stop:
            _call(om, block, index)
            index += step
    return start


def _prim_times_repeat(om, count, block):
    for _ in range(int(count)):
        _call(om, block)
    return count


def _install_strings(om) -> None:
    d = om.class_named("String").define_primitive

    def text(value):
        if not isinstance(value, str):
            raise OpalRuntimeError(f"expected a string, got {value!r}")
        return value

    d("size", lambda om, r: len(text(r)))
    d("isEmpty", lambda om, r: len(text(r)) == 0)
    d("notEmpty", lambda om, r: len(text(r)) != 0)
    d(",", lambda om, r, o: text(r) + text(o))
    d("at:", lambda om, r, i: Char(text(r)[_string_index(r, i)]))
    d("<", lambda om, r, o: text(r) < text(o))
    d("<=", lambda om, r, o: text(r) <= text(o))
    d(">", lambda om, r, o: text(r) > text(o))
    d(">=", lambda om, r, o: text(r) >= text(o))
    d("=", lambda om, r, o: isinstance(o, str) and str(r) == str(o))
    d("asSymbol", lambda om, r: Symbol(str(r)))
    d("asString", lambda om, r: str(r))
    d("asUppercase", lambda om, r: text(r).upper())
    d("asLowercase", lambda om, r: text(r).lower())
    d("includesString:", lambda om, r, o: text(o) in text(r))
    d("startsWith:", lambda om, r, o: text(r).startswith(text(o)))
    d("indexOf:", lambda om, r, c: _string_index_of(text(r), c))
    d("copyFrom:to:", lambda om, r, a, b: text(r)[a - 1 : b])
    d("reversed", lambda om, r: text(r)[::-1])
    d("asNumber", _prim_as_number)

    om.class_named("Symbol").define_primitive(
        "printString", lambda om, r: f"#{str.__str__(r)}"
    )
    om.class_named("Symbol").define_primitive("asString", lambda om, r: str(r))


def _string_index(value: str, index) -> int:
    if not 1 <= index <= len(value):
        raise OpalRuntimeError(f"string index {index} out of 1..{len(value)}")
    return index - 1


def _string_index_of(value: str, char) -> int:
    wanted = char.char if isinstance(char, Char) else str(char)
    position = value.find(wanted)
    return position + 1


def _prim_as_number(om, receiver):
    try:
        return int(receiver)
    except ValueError:
        try:
            return float(receiver)
        except ValueError as error:
            raise OpalRuntimeError(f"{receiver!r} is not a number") from error


def _install_characters(om) -> None:
    d = om.class_named("Character").define_primitive
    d("asInteger", lambda om, r: r.codepoint)
    d("value", lambda om, r: r.codepoint)
    d("asString", lambda om, r: r.char)
    d("<", lambda om, r, o: r < o)
    d("=", lambda om, r, o: isinstance(o, Char) and r == o)
    d("isVowel", lambda om, r: r.char.lower() in "aeiou")


def _install_collections(om) -> None:
    collection = om.class_named("Collection")
    d = collection.define_primitive
    d("add:", lambda om, r, v: collection_add(om, _require_object(om, r, "add:"), v))
    d("remove:", lambda om, r, v: collection_remove(
        om, _require_object(om, r, "remove:"), v))
    d("includes:", lambda om, r, v: collection_includes(
        om, _require_object(om, r, "includes:"), v))
    d("size", lambda om, r: len(om.live_items_of(_require_object(om, r, "size"))))
    d("isEmpty", lambda om, r: not om.live_items_of(
        _require_object(om, r, "isEmpty")))
    d("notEmpty", lambda om, r: bool(om.live_items_of(
        _require_object(om, r, "notEmpty"))))
    d("do:", _prim_do)
    d("collect:", _prim_collect)
    d("select:", _prim_select)
    d("reject:", _prim_reject)
    d("detect:", _prim_detect)
    d("detect:ifNone:", _prim_detect_if_none)
    d("inject:into:", _prim_inject)
    d("anySatisfy:", _prim_any)
    d("allSatisfy:", _prim_all)
    d("addAll:", _prim_add_all)
    d("asBag", lambda om, r: _copy_into(om, r, "Bag"))
    d("asSet", _prim_as_set)
    d("members", lambda om, r: tuple(members(om, _require_object(om, r, "members"))))
    d("occurrencesOf:", _prim_occurrences)
    d("sum", _prim_sum)
    d("average", _prim_average)
    d("maxValue", lambda om, r: _prim_extreme(om, r, max))
    d("minValue", lambda om, r: _prim_extreme(om, r, min))
    d("asSortedArray", _prim_sorted_default)
    d("asSortedArray:", _prim_sorted_by)
    d("count:", _prim_count)

    set_class = om.class_named("Set")
    set_class.define_primitive("add:", _prim_set_add)


def _prim_do(om, receiver, block):
    for member in members(om, _require_object(om, receiver, "do:")):
        _call(om, block, member)
    return receiver


def _prim_collect(om, receiver, block):
    result = om.instantiate_transient("Bag")
    for member in members(om, _require_object(om, receiver, "collect:")):
        collection_add(om, result, _call(om, block, member))
    return result


def _prim_select(om, receiver, block):
    """select: — declarative when the block translates to calculus.

    Section 5.4: "our realization of set calculus is particularly
    powerful, as it can include procedural parts, and can be included in
    procedural methods."  The declarative recognizer hands translatable
    blocks to the algebra/optimizer; anything else runs procedurally.
    """
    from .declarative import try_declarative_filter

    obj = _require_object(om, receiver, "select:")
    chosen = try_declarative_filter(om, obj, block, negate=False)
    if chosen is None:
        chosen = [
            m for m in members(om, obj)
            if _truthy(_call(om, block, m))
        ]
    result = _new_like(om, obj)
    for member in chosen:
        collection_add(om, result, member)
    return result


def _prim_reject(om, receiver, block):
    from .declarative import try_declarative_filter

    obj = _require_object(om, receiver, "reject:")
    chosen = try_declarative_filter(om, obj, block, negate=True)
    if chosen is None:
        chosen = [
            m for m in members(om, obj)
            if not _truthy(_call(om, block, m))
        ]
    result = _new_like(om, obj)
    for member in chosen:
        collection_add(om, result, member)
    return result


def _truthy(value):
    if value is not True and value is not False:
        raise OpalRuntimeError("select:/reject: block must answer a Boolean")
    return value


def _prim_detect(om, receiver, block):
    for member in members(om, _require_object(om, receiver, "detect:")):
        if _truthy(_call(om, block, member)):
            return member
    raise OpalRuntimeError("detect: found no matching member")


def _prim_detect_if_none(om, receiver, block, none_block):
    for member in members(om, _require_object(om, receiver, "detect:")):
        if _truthy(_call(om, block, member)):
            return member
    return _call(om, none_block)


def _prim_inject(om, receiver, initial, block):
    accumulator = initial
    for member in members(om, _require_object(om, receiver, "inject:into:")):
        accumulator = _call(om, block, accumulator, member)
    return accumulator


def _prim_any(om, receiver, block):
    return any(
        _truthy(_call(om, block, m))
        for m in members(om, _require_object(om, receiver, "anySatisfy:"))
    )


def _prim_all(om, receiver, block):
    return all(
        _truthy(_call(om, block, m))
        for m in members(om, _require_object(om, receiver, "allSatisfy:"))
    )


def _prim_add_all(om, receiver, other):
    obj = _require_object(om, receiver, "addAll:")
    if isinstance(other, tuple):
        source = other
    else:
        source = members(om, _require_object(om, other, "addAll:"))
    for member in source:
        om.send(obj, "add:", member)
    return other


def _copy_into(om, receiver, class_name):
    result = om.instantiate_transient(class_name)
    for member in members(om, _require_object(om, receiver, "copy")):
        collection_add(om, result, member)
    return result


def _prim_as_set(om, receiver):
    result = om.instantiate_transient("Set")
    for member in members(om, _require_object(om, receiver, "asSet")):
        om.send(result, "add:", member)
    return result


def _prim_occurrences(om, receiver, value):
    from ..stdm.calculus import value_equal

    return sum(
        1
        for m in members(om, _require_object(om, receiver, "occurrencesOf:"))
        if value_equal(m, value)
    )


def _numeric_members(om, receiver, what):
    values = []
    for member in members(om, _require_object(om, receiver, what)):
        values.append(_check_number(member, f"{what} member"))
    return values


def _prim_sum(om, receiver):
    return sum(_numeric_members(om, receiver, "sum"))


def _prim_average(om, receiver):
    values = _numeric_members(om, receiver, "average")
    if not values:
        raise OpalRuntimeError("average of an empty collection")
    return sum(values) / len(values)


def _prim_extreme(om, receiver, chooser):
    values = _numeric_members(om, receiver, "maxValue/minValue")
    if not values:
        raise OpalRuntimeError("extreme of an empty collection")
    return chooser(values)


def _prim_sorted_default(om, receiver):
    """Members as a literal array, ascending by the natural `<`."""
    values = list(members(om, _require_object(om, receiver, "asSortedArray")))
    engine = _engine(om)
    import functools

    def compare(a, b):
        if engine.send(a, "<", b) is True:
            return -1
        if engine.send(b, "<", a) is True:
            return 1
        return 0

    return tuple(sorted(values, key=functools.cmp_to_key(compare)))


def _prim_sorted_by(om, receiver, sort_block):
    """Members sorted by a two-argument sort block (a <= b ordering)."""
    values = list(members(om, _require_object(om, receiver, "asSortedArray:")))
    engine = _engine(om)
    import functools

    def compare(a, b):
        ordered = engine.send(sort_block, "value:value:", a, b)
        if ordered is True:
            return -1
        reverse = engine.send(sort_block, "value:value:", b, a)
        return 1 if reverse is True else 0

    return tuple(sorted(values, key=functools.cmp_to_key(compare)))


def _prim_count(om, receiver, block):
    return sum(
        1
        for member in members(om, _require_object(om, receiver, "count:"))
        if _truthy(_call(om, block, member))
    )


def _prim_set_add(om, receiver, value):
    obj = _require_object(om, receiver, "add:")
    if collection_includes(om, obj, value):
        return value
    return collection_add(om, obj, value)


def _install_arrays(om) -> None:
    array = om.class_named("Array")
    array.define_class_primitive("new:", _prim_array_new)
    d = array.define_primitive
    d("size", _prim_array_size)
    d("at:", _prim_array_at)
    d("at:put:", _prim_array_at_put)
    d("do:", _prim_array_do)
    d("first", lambda om, r: _prim_array_at(om, r, 1))
    d("last", lambda om, r: _prim_array_at(om, r, _prim_array_size(om, r)))
    d("isEmpty", lambda om, r: _prim_array_size(om, r) == 0)
    d("grow:", _prim_array_grow)


def _prim_array_new(om, cls, size):
    if size < 0:
        raise OpalRuntimeError("array size must be non-negative")
    return om.instantiate(cls, **{"size": size})


def _array_size(om, receiver) -> int:
    obj = _require_object(om, receiver, "size")
    size = om.value_at(obj, "size")
    if size is MISSING:
        raise OpalRuntimeError("not an Array (no size element)")
    return size


def _prim_array_size(om, receiver):
    return _array_size(om, receiver)


def _prim_array_at(om, receiver, index):
    size = _array_size(om, receiver)
    if not 1 <= index <= size:
        raise OpalRuntimeError(f"array index {index} out of 1..{size}")
    value = om.value_at(_require_object(om, receiver, "at:"), index)
    return None if value is MISSING else om.deref(value)


def _prim_array_at_put(om, receiver, index, value):
    size = _array_size(om, receiver)
    if not 1 <= index <= size:
        raise OpalRuntimeError(f"array index {index} out of 1..{size}")
    om.bind(_require_object(om, receiver, "at:put:"), index, value)
    return value


def _prim_array_do(om, receiver, block):
    size = _array_size(om, receiver)
    obj = _require_object(om, receiver, "do:")
    for index in range(1, size + 1):
        value = om.value_at(obj, index)
        _call(om, block, None if value is MISSING else om.deref(value))
    return receiver


def _prim_array_grow(om, receiver, new_size):
    """ST80 arrays 'grow' to accommodate more values (section 4.1)."""
    size = _array_size(om, receiver)
    if new_size < size:
        raise OpalRuntimeError("grow: cannot shrink an array")
    om.bind(_require_object(om, receiver, "grow:"), "size", new_size)
    return receiver


def _install_dictionaries(om) -> None:
    d = om.class_named("Dictionary").define_primitive
    d("keys", lambda om, r: tuple(
        om.live_names_of(_require_object(om, r, "keys"))))
    d("includesKey:", lambda om, r, k: om.value_at(
        _require_object(om, r, "includesKey:"), k) not in (MISSING, None))
    d("keysAndValuesDo:", _prim_keys_values_do)
    d("values", lambda om, r: tuple(
        om.deref(v) for _, v in om.live_items_of(
            _require_object(om, r, "values"))))
    d("size", lambda om, r: len(om.live_items_of(_require_object(om, r, "size"))))


def _prim_keys_values_do(om, receiver, block):
    for name, value in om.live_items_of(_require_object(om, receiver, "do:")):
        _call(om, block, name, om.deref(value))
    return receiver


def _install_associations(om) -> None:
    d = om.class_named("Association").define_primitive
    d("key", lambda om, r: _prim_element_at(om, r, "key"))
    d("value", lambda om, r: _prim_element_at(om, r, "value"))
