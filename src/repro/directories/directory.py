"""Time-aware directories (indexes) over sets of objects.

Section 6: "The Directory Manager creates and maintains directories.
Directories use standard techniques modified to handle object histories.
... Another problem is using a nested element as a discriminator.  Since
that element may be different in different states of the database, its
object may need to appear along two branches of the directory."

A :class:`Directory` indexes the members of one owner set by a
*discriminator path* evaluated relative to each member (e.g. ``Salary``
or ``Name!Last``).  Entries are interval-stamped: each carries the
``[t_start, t_end)`` transaction-time range during which the member had
that key, so associative lookups work in any past state — and a member
whose discriminator changed does appear under both keys, on disjoint
intervals, exactly the paper's "two branches".

Nested discriminators record the chain of objects traversed, so the
Directory Manager can find which members to re-key when an *inner*
object changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..core.objects import GemObject
from ..core.paths import Path, parse_path, resolve
from ..core.values import Char, Ref, Symbol
from ..errors import DirectoryError, PathError
from .btree import BPlusTree

#: sentinel key for members whose discriminator path does not resolve;
#: type-rank 99 orders it after every real key so it stays comparable
UNKEYED = (99, "unkeyed")


def normalize_key(value: Any) -> tuple:
    """Map an element value to a totally ordered composite key.

    Mixed-type discriminators are legal in GSDM (a value "is not
    restricted to a single type", section 5.2), so keys are ranked by
    type first, then by value within the type.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):  # includes Symbol
        return (3, str(value))
    if isinstance(value, Char):
        return (4, value.codepoint)
    if isinstance(value, Ref):
        return (5, value.oid)
    if isinstance(value, GemObject):
        return (5, value.oid)
    raise DirectoryError(f"cannot index value {value!r}")


@dataclass
class Entry:
    """One interval of a member's presence under a key."""

    member_oid: int
    t_start: int
    t_end: Optional[int] = None  # None = still current

    def alive_at(self, time: Optional[int]) -> bool:
        """True if the interval covers *time* (None = now)."""
        if time is None:
            return self.t_end is None
        if time < self.t_start:
            return False
        return self.t_end is None or time < self.t_end


class Directory:
    """A B+tree of interval-stamped entries over one owner set."""

    def __init__(self, owner_oid: int, path: "Path | str", name: str = "") -> None:
        self.owner_oid = owner_oid
        self.path = parse_path(path) if isinstance(path, str) else path
        self.name = name or f"idx_{owner_oid}_{self.path}"
        self.tree = BPlusTree()
        #: member oid -> list of currently open (key, Entry) pairs
        self._open: dict[int, list[tuple[tuple, Entry]]] = {}
        #: member oid -> oids traversed computing its key (incl. member)
        self.dependencies: dict[int, set[int]] = {}
        self.lookups = 0
        #: the transaction time :meth:`build` populated the tree; interval
        #: entries only cover states from here on, so queries dialed to an
        #: *earlier* state are answered from the association tables instead
        self.build_time: Optional[int] = None
        self._store: Any = None  # kept by build() for historical fallbacks
        #: probes answered by :meth:`_historical` rather than the tree
        self.historical_lookups = 0

    def __repr__(self) -> str:
        return f"<Directory {self.name!r} on !{self.path} ({len(self.tree)} entries)>"

    # -- key computation ----------------------------------------------------------

    def compute_key(self, store, member: Any, time: Optional[int] = None):
        """Evaluate the discriminator for *member*; returns (key, deps).

        A member whose path does not resolve (optional element missing,
        simple value mid-path) is filed under :data:`UNKEYED` so it still
        has a home in the directory.
        """
        member_obj = store.deref(member)
        deps: set[int] = set()
        if isinstance(member_obj, GemObject):
            deps.add(member_obj.oid)
        current = member_obj
        try:
            for step in self.path.steps:
                if not isinstance(current, (GemObject, Ref)):
                    return UNKEYED, deps
                at = step.at if step.at is not None else time
                value = store.value_at(current, step.name, at)
                current = store.deref(value)
                if isinstance(current, GemObject):
                    deps.add(current.oid)
        except PathError:
            return UNKEYED, deps
        try:
            return normalize_key(current), deps
        except DirectoryError:
            return UNKEYED, deps

    # -- maintenance ---------------------------------------------------------------

    def add_member(self, store, member: Any, time: int) -> None:
        """A member joined the owner set at *time*: open an entry."""
        member_obj = store.deref(member)
        if not isinstance(member_obj, GemObject):
            return  # simple values are not indexed members
        oid = member_obj.oid
        if oid in self._open:
            return  # already present under another alias
        key, deps = self.compute_key(store, member_obj)
        entry = Entry(oid, t_start=time)
        self.tree.insert(key, entry)
        self._open[oid] = [(key, entry)]
        self.dependencies[oid] = deps

    def remove_member(self, store, member_oid: int, time: int) -> None:
        """A member left the owner set at *time*: close its open entries."""
        for _key, entry in self._open.pop(member_oid, ()):
            entry.t_end = time
        self.dependencies.pop(member_oid, None)

    def rekey_member(self, store, member_oid: int, time: int) -> None:
        """A member's discriminator changed at *time*: close old, open new."""
        open_entries = self._open.get(member_oid)
        if open_entries is None:
            return  # not (any longer) a member
        new_key, deps = self.compute_key(store, Ref(member_oid))
        if open_entries and open_entries[-1][0] == new_key:
            self.dependencies[member_oid] = deps
            return  # unchanged
        for _key, entry in open_entries:
            entry.t_end = time
        entry = Entry(member_oid, t_start=time)
        self.tree.insert(new_key, entry)
        self._open[member_oid] = [(new_key, entry)]
        self.dependencies[member_oid] = deps

    def is_member(self, member_oid: int) -> bool:
        """True if the member currently has an open entry."""
        return member_oid in self._open

    def depends_on(self, oid: int) -> list[int]:
        """Members whose keys were computed through object *oid*."""
        return [m for m, deps in self.dependencies.items() if oid in deps]

    # -- queries --------------------------------------------------------------------

    def lookup(self, value: Any, time: Optional[int] = None) -> list[int]:
        """Member oids whose discriminator equals *value* at *time*."""
        self.lookups += 1
        key = normalize_key(value)
        if self._predates_build(time):
            return [
                oid for k, oid in self._historical(time) if k == key
            ]
        return [
            entry.member_oid
            for entry in self.tree.search(key)
            if entry.alive_at(time)
        ]

    def lookup_unkeyed(self, time: Optional[int] = None) -> list[int]:
        """Member oids whose discriminator did not resolve at *time*.

        The scan semantics this bucket mirrors: an unresolvable path is
        *no-value*, and two no-values are equal — so an equality probe
        whose own key is no-value matches exactly these members.
        """
        self.lookups += 1
        if self._predates_build(time):
            return [
                oid for k, oid in self._historical(time) if k == UNKEYED
            ]
        return [
            entry.member_oid
            for entry in self.tree.search(UNKEYED)
            if entry.alive_at(time)
        ]

    def range(
        self,
        low: Any = None,
        high: Any = None,
        time: Optional[int] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Member oids with low ≤ discriminator ≤ high at *time*, ordered.

        ``None`` bounds are open.  The :data:`UNKEYED` bucket never
        matches a range query.
        """
        self.lookups += 1
        low_key = None if low is None else normalize_key(low)
        high_key = None if high is None else normalize_key(high)
        if self._predates_build(time):
            for key, oid in sorted(self._historical(time)):
                if key == UNKEYED:
                    continue
                if low_key is not None and (
                    key < low_key or (key == low_key and not include_low)
                ):
                    continue
                if high_key is not None and (
                    key > high_key or (key == high_key and not include_high)
                ):
                    continue
                yield oid
            return
        for key, entry in self.tree.range_scan(
            low_key, high_key, include_low, include_high
        ):
            if key == UNKEYED:
                continue
            if entry.alive_at(time):
                yield entry.member_oid

    def _predates_build(self, time: Optional[int]) -> bool:
        """True when *time* asks for a state older than the tree covers."""
        return (
            time is not None
            and self.build_time is not None
            and time < self.build_time
            and self._store is not None
        )

    def _historical(self, time: int) -> Iterator[tuple[tuple, int]]:
        """(key, member oid) pairs reconstructed from the owner's history.

        :meth:`build` stamps its entries at build time, so the tree knows
        nothing about membership *before* the directory existed.  Rather
        than widen those intervals (which would misstate when indexed
        maintenance began), pre-build queries walk the owner set's
        association tables directly — the same brute force a scan plan
        would use — so a time-dialed lookup agrees with an unindexed one.
        """
        self.historical_lookups += 1
        store = self._store
        owner = store.object(self.owner_oid)
        seen: set[int] = set()
        for _name, value in owner.items_at(time):
            if not isinstance(value, Ref):
                continue
            member = store.deref(value)
            if not isinstance(member, GemObject) or member.oid in seen:
                continue
            seen.add(member.oid)
            key, _deps = self.compute_key(store, member, time)
            yield key, member.oid

    def entry_count(self) -> int:
        """Total entries, closed intervals included."""
        return len(self.tree)

    # -- bulk build -------------------------------------------------------------------

    def build(self, store, time: int) -> int:
        """Populate from the owner set's membership as of *time*.

        Used when a directory is created over existing data; returns the
        number of members indexed.
        """
        self.build_time = time
        self._store = store
        owner = store.object(self.owner_oid)
        count = 0
        for _name, value in owner.items_at(None):
            if isinstance(value, Ref):
                self.add_member(store, value, time)
                count += 1
        return count
