"""``repro.directories`` — associative access structures.

The paper's Directory Manager (section 6): B+tree-backed directories
over sets, with interval-stamped entries so associative lookups work in
past database states, and dependency tracking for nested discriminators.
"""

from .btree import BPlusTree
from .directory import Directory, Entry, UNKEYED, normalize_key
from .manager import DirectoryManager

__all__ = [
    "BPlusTree",
    "Directory",
    "DirectoryManager",
    "Entry",
    "UNKEYED",
    "normalize_key",
]
