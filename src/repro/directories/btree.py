"""A B+tree: the ordered index structure under directories.

Section 6: "The Directory Manager creates and maintains directories.
Directories use standard techniques modified to handle object
histories."  The *standard technique* here is a B+tree — ordered keys in
leaves linked for range scans; the history modification lives one level
up in :mod:`repro.directories.directory`.

Each leaf key holds a bucket (list) of values, so duplicate keys are
supported.  Deletion is lazy: emptied keys are removed from their leaf,
but leaves are not rebalanced — the tree stays correct (scans skip empty
leaves) and only degrades toward a sparser shape under adversarial
delete patterns, the usual engineering trade.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator, Optional


class _Leaf:
    __slots__ = ("keys", "buckets", "next")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.buckets: list[list[Any]] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []      # separators: child i holds keys < keys[i]
        self.children: list[Any] = []  # len(children) == len(keys) + 1


class BPlusTree:
    """An order-*m* B+tree mapping comparable keys to value buckets."""

    def __init__(self, order: int = 32) -> None:
        if order < 4:
            raise ValueError("B+tree order must be at least 4")
        self.order = order
        self._root: Any = _Leaf()
        self._size = 0  # total values across all buckets

    def __len__(self) -> int:
        return self._size

    # -- search ------------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            index = bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def search(self, key: Any) -> list[Any]:
        """All values stored under *key* (empty list if none)."""
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.buckets[index])
        return []

    def __contains__(self, key: Any) -> bool:
        return bool(self.search(key))

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) pairs with low ≤/< key ≤/< high, key-ordered."""
        if low is None:
            leaf = self._leftmost_leaf()
            index = 0
        else:
            leaf = self._find_leaf(low)
            index = (
                bisect_left(leaf.keys, low)
                if include_low
                else bisect_right(leaf.keys, low)
            )
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if high is not None:
                    if key > high or (key == high and not include_high):
                        return
                for value in leaf.buckets[index]:
                    yield key, value
                index += 1
            leaf = leaf.next
            index = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        return self.range_scan()

    def keys(self) -> Iterator[Any]:
        """Distinct keys in order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            for key, bucket in zip(leaf.keys, leaf.buckets):
                if bucket:
                    yield key
            leaf = leaf.next

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def min_key(self) -> Any:
        """Smallest key, or None if empty."""
        for key in self.keys():
            return key
        return None

    def max_key(self) -> Any:
        """Largest key, or None if empty (O(n) over leaves)."""
        result = None
        for key in self.keys():
            result = key
        return result

    # -- insertion ------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Add *value* under *key* (duplicates under one key allowed)."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node: Any, key: Any, value: Any):
        if isinstance(node, _Leaf):
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.buckets[index].append(value)
                return None
            node.keys.insert(index, key)
            node.buckets.insert(index, [value])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.children) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.buckets = leaf.buckets[middle:]
        del leaf.keys[middle:]
        del leaf.buckets[middle:]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        del node.keys[middle:]
        del node.children[middle + 1 :]
        return separator, right

    # -- deletion ------------------------------------------------------------------------

    def remove(self, key: Any, value: Any) -> bool:
        """Remove one occurrence of *value* under *key*; True if found."""
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        bucket = leaf.buckets[index]
        try:
            bucket.remove(value)
        except ValueError:
            return False
        if not bucket:
            del leaf.keys[index]
            del leaf.buckets[index]
        self._size -= 1
        return True

    def remove_all(self, key: Any) -> int:
        """Remove every value under *key*; returns how many were removed."""
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return 0
        count = len(leaf.buckets[index])
        del leaf.keys[index]
        del leaf.buckets[index]
        self._size -= count
        return count

    # -- introspection ----------------------------------------------------------------------

    def depth(self) -> int:
        """Height of the tree (1 for a lone leaf)."""
        node = self._root
        levels = 1
        while isinstance(node, _Internal):
            node = node.children[0]
            levels += 1
        return levels
