"""The Directory Manager: creating and maintaining directories at commit.

Section 6 places directory maintenance in the commit path: "The Linker
incorporates updates made by a transaction in the permanent database at
commit time, calling for restructuring of directories as needed."

The manager registers itself as a Transaction Manager commit listener.
For each committed write it distinguishes:

* **membership changes** — a write to an owner set's element either adds
  a member (new Ref value), replaces one, or removes one (nil value);
* **discriminator changes** — a write to any object some member's key
  was computed through (the dependency sets collected by
  :meth:`Directory.compute_key`) re-keys the affected members.

One headache the paper reports — "hints given in OPAL for structuring
directories must be translated for use by the Object Manager" — shows up
here as :meth:`apply_hint`, which parses the OPAL-level hint string into
an owner + discriminator path.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..core.objects import GemObject
from ..core.paths import Path, parse_path
from ..core.values import Ref
from ..errors import DirectoryError
from .directory import Directory


class DirectoryManager:
    """Registry and commit-time maintainer of all directories."""

    def __init__(self, store) -> None:
        self.store = store
        self._by_owner: dict[int, list[Directory]] = {}
        self._all: list[Directory] = []
        #: bumped on every create/drop; memoized query plans embed the
        #: epoch in their key, so an index change re-plans the query
        self.epoch = 0

    def __len__(self) -> int:
        return len(self._all)

    # -- creation ------------------------------------------------------------

    def create_directory(
        self, owner: Any, path: "Path | str", name: str = ""
    ) -> Directory:
        """Create a directory over *owner*'s members, keyed by *path*.

        The directory is built from the current committed state and then
        maintained incrementally by commits.
        """
        owner_obj = self.store.deref(owner)
        if not isinstance(owner_obj, GemObject):
            raise DirectoryError("directories index structured owner objects")
        directory = Directory(owner_obj.oid, path, name)
        if any(
            d.path == directory.path for d in self._by_owner.get(owner_obj.oid, ())
        ):
            raise DirectoryError(
                f"owner {owner_obj.oid} already has a directory on !{directory.path}"
            )
        directory.build(self.store, self.store.current_time())
        self._by_owner.setdefault(owner_obj.oid, []).append(directory)
        self._all.append(directory)
        self.epoch += 1
        return directory

    def apply_hint(self, hint: str) -> Directory:
        """Translate an OPAL structuring hint into a directory.

        Hint syntax: ``"<owner-oid> on <path>"`` — e.g. the kernel's
        ``aSet indexOn: 'Salary'`` primitive formats one.
        """
        try:
            owner_text, _, path_text = hint.partition(" on ")
            owner_oid = int(owner_text)
        except ValueError as error:
            raise DirectoryError(f"malformed directory hint {hint!r}") from error
        if not path_text:
            raise DirectoryError(f"malformed directory hint {hint!r}")
        return self.create_directory(Ref(owner_oid), path_text.strip())

    def drop_directory(self, directory: Directory) -> None:
        """Remove a directory from maintenance."""
        self._all.remove(directory)
        owners = self._by_owner.get(directory.owner_oid, [])
        if directory in owners:
            owners.remove(directory)
        self.epoch += 1

    # -- lookup for the query optimizer ------------------------------------------

    def directories_for(self, owner_oid: int) -> list[Directory]:
        """All directories whose owner is *owner_oid*."""
        return list(self._by_owner.get(owner_oid, ()))

    def find_directory(
        self, owner_oid: int, path: "Path | str"
    ) -> Optional[Directory]:
        """A directory on exactly this owner and discriminator, if any."""
        wanted = parse_path(path) if isinstance(path, str) else path
        for directory in self._by_owner.get(owner_oid, ()):
            if directory.path == wanted:
                return directory
        return None

    def all_directories(self) -> Iterator[Directory]:
        """Every registered directory."""
        return iter(tuple(self._all))

    # -- commit listener -----------------------------------------------------------

    def on_commit(self, tx_time: int, dirty, writes, creations) -> None:
        """Maintain directories for one committed transaction."""
        if not self._all:
            return
        for write in writes:
            self._apply_membership_change(write, tx_time)
        rekeyed: set[tuple[int, int]] = set()
        for write in writes:
            self._apply_discriminator_change(write, tx_time, rekeyed)

    def _apply_membership_change(self, write, tx_time: int) -> None:
        owned = self._by_owner.get(write.oid)
        if not owned:
            return
        owner = self.store.object(write.oid)
        table = owner.elements.get(write.name)
        previous = table.value_at(tx_time - 1) if table is not None else None
        for directory in owned:
            if isinstance(previous, Ref) and previous != write.value:
                if not self._still_member(owner, previous, write.name, tx_time):
                    directory.remove_member(self.store, previous.oid, tx_time)
            if isinstance(write.value, Ref):
                directory.add_member(self.store, write.value, tx_time)

    def _still_member(
        self, owner: GemObject, member: Ref, changed_name: Any, tx_time: int
    ) -> bool:
        """True if *member* remains under some other alias of *owner*."""
        for name, value in owner.items_at(None):
            if name != changed_name and value == member:
                return True
        return False

    def _apply_discriminator_change(
        self, write, tx_time: int, rekeyed: set[tuple[int, int]]
    ) -> None:
        for directory in self._all:
            for member_oid in directory.depends_on(write.oid):
                token = (id(directory), member_oid)
                if token not in rekeyed:
                    rekeyed.add(token)
                    directory.rekey_member(self.store, member_oid, tx_time)

    # -- persistence of definitions --------------------------------------------------

    def export_definitions(self) -> list[tuple[int, str, str]]:
        """Plain-data directory definitions for the catalog blob."""
        return [(d.owner_oid, str(d.path), d.name) for d in self._all]

    def import_definitions(self, definitions) -> None:
        """Recreate directories from :meth:`export_definitions` output.

        Contents are rebuilt from the current committed state, then
        maintained incrementally as before.
        """
        for owner_oid, path_text, name in definitions:
            if self.find_directory(owner_oid, path_text) is None:
                self.create_directory(Ref(owner_oid), path_text, name)
