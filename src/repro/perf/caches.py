"""Per-store cache state: method lookups and query-plan memoization.

Every :class:`~repro.core.object_manager.ObjectStore` owns one
:class:`StoreCaches` (created in ``ObjectStore.__init__``).  It holds

* the **method-lookup cache** — ``(side, class key, selector) → method``,
  consulted by ``ObjectStore.lookup_method`` and validated against
  :data:`~repro.perf.epochs.class_epoch`: the first lookup after a bump
  clears the table, so a stale method can never be served;
* the **plan-cache counters** — the select-block translation and plan
  memos themselves live on each compiled block (the AST identity *is*
  the cache key), but their hit/miss accounting is centralized here so
  :func:`repro.perf.stats` can report them per store;
* the **inline-cache counters** — per-call-site caches live in the
  compiled code, the engine reports hits/misses here.

``enabled`` turns the method cache off wholesale; the benchmarks use it
for cached-vs-uncached ablations.
"""

from __future__ import annotations

from typing import Any, Optional

from .epochs import class_epoch, next_store_token

#: distinguishes "no cache entry" from a cached does-not-understand (None)
_ABSENT = object()


class StoreCaches:
    """All hot-path cache state owned by one object store."""

    __slots__ = (
        "store_token",
        "enabled",
        "method_epoch",
        "method_entries",
        "method_hits",
        "method_misses",
        "method_invalidations",
        "inline_hits",
        "inline_misses",
        "translation_hits",
        "translation_misses",
        "plan_hits",
        "plan_misses",
    )

    def __init__(self) -> None:
        self.store_token = next_store_token()
        self.enabled = True
        self.method_epoch = class_epoch.value
        self.method_entries: dict[Any, Any] = {}
        self.method_hits = 0
        self.method_misses = 0
        self.method_invalidations = 0
        self.inline_hits = 0
        self.inline_misses = 0
        self.translation_hits = 0
        self.translation_misses = 0
        self.plan_hits = 0
        self.plan_misses = 0

    # -- method-lookup cache ---------------------------------------------------

    def method_get(self, key: Any) -> Any:
        """The cached method for *key*, ``None`` for a cached DNU, or
        :data:`_ABSENT` when nothing (valid) is cached."""
        epoch = class_epoch.value
        if self.method_epoch != epoch:
            # the hierarchy changed since these entries were filled:
            # drop them all rather than risk one stale resolution
            self.method_entries.clear()
            self.method_epoch = epoch
            self.method_invalidations += 1
        entry = self.method_entries.get(key, _ABSENT)
        if entry is _ABSENT:
            self.method_misses += 1
        else:
            self.method_hits += 1
        return entry

    def method_put(self, key: Any, method: Any) -> None:
        """Record a resolution (``None`` caches a does-not-understand)."""
        self.method_entries[key] = method

    def reset_stats(self) -> None:
        """Zero every counter (benchmark ablations)."""
        self.method_hits = self.method_misses = 0
        self.method_invalidations = 0
        self.inline_hits = self.inline_misses = 0
        self.translation_hits = self.translation_misses = 0
        self.plan_hits = self.plan_misses = 0

    # -- reporting -------------------------------------------------------------

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def report(self) -> dict[str, Any]:
        """Counters in the shape :func:`repro.perf.stats` publishes."""
        return {
            "method_cache": {
                "enabled": self.enabled,
                "entries": len(self.method_entries),
                "hits": self.method_hits,
                "misses": self.method_misses,
                "invalidations": self.method_invalidations,
                "hit_rate": self._rate(self.method_hits, self.method_misses),
            },
            "inline_cache": {
                "hits": self.inline_hits,
                "misses": self.inline_misses,
                "hit_rate": self._rate(self.inline_hits, self.inline_misses),
            },
            "translation_cache": {
                "hits": self.translation_hits,
                "misses": self.translation_misses,
                "hit_rate": self._rate(
                    self.translation_hits, self.translation_misses
                ),
            },
            "plan_cache": {
                "hits": self.plan_hits,
                "misses": self.plan_misses,
                "hit_rate": self._rate(self.plan_hits, self.plan_misses),
            },
        }


def store_caches(store: Any) -> Optional[StoreCaches]:
    """The :class:`StoreCaches` of *store*, or None for exotic stores."""
    return getattr(store, "perf", None)
