"""Version stamps that make every hot-path cache provably invalidatable.

The Smalltalk-80 lineage this reproduction follows (Deutsch & Schiffman's
inline-cache JIT) validates cached method lookups against a *class
hierarchy version*: any (re)definition bumps the stamp, and a cached
resolution is only served while its stamp still matches.  We apply the
same discipline to every cache in :mod:`repro.perf`:

* :data:`class_epoch` — the class-hierarchy version.  Bumped by every
  method (re)definition or removal, class definition, instance-variable
  addition, and by any session transaction reset that discards overlay
  class definitions (commit *and* abort).  Method-lookup caches, inline
  caches and select-block translation caches key on it.
* :func:`next_store_token` — a process-unique identity for each object
  store.  Cached artifacts that depend on *which* store produced them
  (a select-block's calculus translation scans the store's class
  registry) carry the token so a cache entry can never cross stores,
  even across store teardown/recreation at the same ``id()``.

The stamps are deliberately coarse (one global counter, not per-class):
a bump can only cause a cache *miss*, never a stale hit, so coarseness
costs refills, not correctness.
"""

from __future__ import annotations

import threading
from itertools import count


class Epoch:
    """A monotonically increasing version stamp.

    ``bump`` is atomic: the shared :class:`TransactionManager` runs real
    threads, and an unlocked ``value += 1`` lets two racing class
    redefinitions collapse into one bump — a cache entry stamped with
    the lost value would then be served stale.  Reads stay lock-free
    (a plain attribute load of an int is atomic in CPython), so the
    hot-path validation cost is unchanged.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def bump(self) -> int:
        """Advance the stamp; every dependent cache entry is now stale."""
        with self._lock:
            value = self.value + 1
            self.value = value
            return value

    def __repr__(self) -> str:
        return f"<Epoch {self.value}>"


#: The process-wide class-hierarchy version stamp.
class_epoch = Epoch()

_store_tokens = count(1)


def next_store_token() -> int:
    """A process-unique identity for one object store."""
    return next(_store_tokens)
