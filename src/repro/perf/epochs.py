"""Version stamps that make every hot-path cache provably invalidatable.

The Smalltalk-80 lineage this reproduction follows (Deutsch & Schiffman's
inline-cache JIT) validates cached method lookups against a *class
hierarchy version*: any (re)definition bumps the stamp, and a cached
resolution is only served while its stamp still matches.  We apply the
same discipline to every cache in :mod:`repro.perf`:

* :data:`class_epoch` — the class-hierarchy version.  Bumped by every
  method (re)definition or removal, class definition, instance-variable
  addition, and by any session transaction reset that discards overlay
  class definitions (commit *and* abort).  Method-lookup caches, inline
  caches and select-block translation caches key on it.
* :func:`next_store_token` — a process-unique identity for each object
  store.  Cached artifacts that depend on *which* store produced them
  (a select-block's calculus translation scans the store's class
  registry) carry the token so a cache entry can never cross stores,
  even across store teardown/recreation at the same ``id()``.

The stamps are deliberately coarse (one global counter, not per-class):
a bump can only cause a cache *miss*, never a stale hit, so coarseness
costs refills, not correctness.
"""

from __future__ import annotations

from itertools import count


class Epoch:
    """A monotonically increasing version stamp."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> int:
        """Advance the stamp; every dependent cache entry is now stale."""
        self.value += 1
        return self.value

    def __repr__(self) -> str:
        return f"<Epoch {self.value}>"


#: The process-wide class-hierarchy version stamp.
class_epoch = Epoch()

_store_tokens = count(1)


def next_store_token() -> int:
    """A process-unique identity for one object store."""
    return next(_store_tokens)
