"""Cache-coherence assertions: every cached answer must still be true.

The perf layer's caches are all epoch-validated (docs/performance.md),
which makes them *checkable*: for any cache entry we can recompute the
answer from first principles and demand agreement.  The model-based
harness (:mod:`repro.check`) calls :func:`verify_cache_coherence` after
every differential case, so a cache serving stale entries fails the
oracle even when no generated query happened to observe the staleness.
"""

from __future__ import annotations

from typing import Any

from ..core import paths as paths_module
from .epochs import class_epoch


def verify_cache_coherence(store) -> list[str]:
    """Recompute every checkable cache entry of *store*; list violations.

    Returns human-readable problem descriptions (empty = coherent).
    Covers the method-lookup cache (instance-side and class-side keys)
    and the process-wide ``parse_path`` memo.  Immediate-receiver
    entries (keyed by Python type) are skipped: recomputing them needs
    a receiver *instance*, which the key alone does not carry.
    """
    problems: list[str] = []
    problems.extend(_verify_method_cache(store))
    problems.extend(verify_parse_path_memo())
    return problems


def _verify_method_cache(store) -> list[str]:
    perf = getattr(store, "perf", None)
    if perf is None or not perf.enabled:
        return []
    if perf.method_epoch != class_epoch.value:
        # entries are invalid but known-invalid: the next lookup clears
        # them before serving anything, so this is coherent by design
        return []
    problems: list[str] = []
    for key, cached in list(perf.method_entries.items()):
        kind = key[0]
        if kind == 2:  # immediate receiver: not recomputable from the key
            continue
        class_oid, selector = key[1], key[2]
        if not store.contains(class_oid):
            problems.append(
                f"method cache {key!r}: class oid {class_oid} is gone"
            )
            continue
        receiver_class = store.object(class_oid)
        if kind == 1:
            # class-side send: the class object itself was the receiver
            expected = store._lookup_method_uncached(receiver_class, selector)
        else:
            expected = receiver_class.lookup(store, selector)
        if cached is not expected:
            problems.append(
                f"method cache {key!r}: cached {describe_method(cached)} "
                f"but hierarchy resolves {describe_method(expected)}"
            )
    return problems


def verify_parse_path_memo() -> list[str]:
    """Re-parse every memoized path string; list disagreements."""
    problems: list[str] = []
    for text, cached in list(paths_module._PARSE_CACHE.items()):
        fresh = paths_module._parse_path_uncached(text)
        if cached != fresh:
            problems.append(
                f"parse_path memo {text!r}: cached {cached} but parses {fresh}"
            )
    return problems


def describe_method(method: Any) -> str:
    if method is None:
        return "<does-not-understand>"
    selector = getattr(method, "selector", None)
    return f"<method {selector}>" if selector is not None else repr(method)
