"""``repro.perf`` — hot-path caching for the OPAL execution pipeline.

Section 6 of the paper chose a declarative query language precisely for
"the latitude in processing queries to exploit fully secondary storage
layout, directories, and special hardware"; the ST80 implementation
lineage (Deutsch & Schiffman) exploits the same latitude on sends with
inline caches.  This package supplies the shared machinery: epoch
stamps for provable invalidation (:mod:`~repro.perf.epochs`), per-store
cache state (:mod:`~repro.perf.caches`), and the unified observability
report (:mod:`~repro.perf.stats`).  See ``docs/performance.md`` for the
cache inventory — each cache's key, its invalidation trigger, and how to
read ``BENCH_results.json``.
"""

from .caches import StoreCaches, store_caches
from .coherence import verify_cache_coherence, verify_parse_path_memo
from .epochs import Epoch, class_epoch, next_store_token
from .stats import object_cache_report, reset_stats, stats

__all__ = [
    "Epoch",
    "StoreCaches",
    "class_epoch",
    "next_store_token",
    "object_cache_report",
    "reset_stats",
    "stats",
    "store_caches",
    "verify_cache_coherence",
    "verify_parse_path_memo",
]
