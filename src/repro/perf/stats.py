"""The unified performance report: every cache's health in one dict.

``stats(target)`` accepts any level of the stack — a
:class:`~repro.db.GemStone` database, a :class:`~repro.db.GemSession`, an
:class:`~repro.opal.interpreter.OpalEngine`, or a bare object store —
and folds together:

* the store's :class:`~repro.perf.caches.StoreCaches` counters (method
  lookups, inline caches, select-block translation and plan memos);
* the global :func:`~repro.core.paths.parse_path` memo;
* the query planner's work counter (plans actually built — a flat line
  under a repeated workload is the memoization demonstrably working);
* for a full database: the stable store's
  :class:`~repro.storage.cache.ObjectCache` (hits/misses/evictions) and
  the disk-stack ``storage_report``.

``BENCH_results.json`` embeds this report next to each benchmark's wall
time so the perf trajectory records *why* a number moved, not just that
it did.
"""

from __future__ import annotations

from typing import Any, Optional

from .caches import StoreCaches
from .epochs import class_epoch


def _find_store(target: Any) -> Optional[Any]:
    """The object store behind any supported *target*."""
    if target is None:
        return None
    if hasattr(target, "perf"):  # a bare ObjectStore (or session)
        return target
    session = getattr(target, "session", None)  # GemSession
    if session is not None and hasattr(session, "perf"):
        return session
    store = getattr(target, "store", None)  # OpalEngine / GemStone
    if store is not None and hasattr(store, "perf"):
        return store
    return None


def _find_database(target: Any) -> Optional[Any]:
    """The GemStone database behind *target*, when there is one."""
    if hasattr(target, "storage_report") and hasattr(target, "store"):
        return target  # a GemStone
    return getattr(target, "database", None)  # a GemSession


def object_cache_report(cache: Any) -> dict[str, Any]:
    """Hit/miss/eviction counters of a storage ObjectCache."""
    return {
        "entries": len(cache),
        "capacity": cache.capacity,
        "hits": cache.hits,
        "misses": cache.misses,
        "evictions": cache.evictions,
        "hit_rate": cache.hit_rate,
    }


def stats(target: Any = None) -> dict[str, Any]:
    """One report covering every cache *target* can reach."""
    from ..core.paths import parse_cache_stats
    from ..stdm.optimize import planning_stats

    report: dict[str, Any] = {
        "class_epoch": class_epoch.value,
        "parse_path_cache": parse_cache_stats(),
        "planner": dict(planning_stats),
    }
    store = _find_store(target)
    if store is not None:
        caches: StoreCaches = store.perf
        report.update(caches.report())
        engine = getattr(store, "opal_runtime", None)
        if engine is not None and engine.directory_manager is not None:
            report["directory_epoch"] = engine.directory_manager.epoch
    database = _find_database(target)
    if database is not None:
        report["object_cache"] = object_cache_report(database.store.cache)
        report["storage"] = database.storage_report()
        report.setdefault(
            "directory_epoch", database.directory_manager.epoch
        )
    else:
        base = getattr(store, "store", None) if store is not None else None
        cache = getattr(base, "cache", None)
        if cache is not None and hasattr(cache, "evictions"):
            report["object_cache"] = object_cache_report(cache)
    return report


def reset_stats(target: Any = None) -> None:
    """Zero every counter :func:`stats` folds together for *target*.

    The process-global counters (the ``parse_path`` memo, the planner's
    ``plans_built``) made hit rates order-dependent across independent
    :class:`~repro.db.GemStone` instances and across tests; each fresh
    database resets them at construction so its report starts from zero.
    With a *target*, the target's own :class:`StoreCaches` counters and
    (for a full database) its ObjectCache counters are zeroed too.
    """
    from ..core.paths import reset_parse_cache_stats
    from ..stdm.optimize import reset_planning_stats

    reset_parse_cache_stats()
    reset_planning_stats()
    store = _find_store(target)
    if store is not None:
        store.perf.reset_stats()
    database = _find_database(target)
    if database is not None:
        database.store.cache.reset_stats()
