"""CLI reproducer entry point: ``python -m repro.dr --seed N``.

Runs the seeded disaster sweep (:func:`repro.dr.soak.run_dr_soak`) and
prints its digest; every violated invariant prints a copy-pasteable
reproducer, and ``--kill K --mode M`` replays exactly one kill point —
the same contract as ``python -m repro.check``.  Exit status 0 when all
invariants hold, 1 otherwise, so the reproducer doubles as a regression
guard in shell pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys

from .soak import run_dr_soak


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dr",
        description="Disaster-recovery crash sweep (kill the primary "
        "everywhere; prove zero loss).",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--commits", type=int, default=6)
    parser.add_argument("--writes-per-commit", type=int, default=2)
    parser.add_argument(
        "--kill", type=int, default=None,
        help="replay one kill point: a frame index (with --mode send/recv) "
        "or a rebuild write index (with --mode recovery)",
    )
    parser.add_argument(
        "--mode", choices=("send", "recv", "recovery"), default=None,
        help="the kill window for --kill (default: both link windows)",
    )
    parser.add_argument("--stride", type=int, default=1,
                        help="subsample frame kill points (smoke runs)")
    parser.add_argument("--recovery-stride", type=int, default=1,
                        help="subsample rebuild write indexes")
    parser.add_argument("--json", action="store_true",
                        help="print the digest as JSON")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    kill_points = None
    modes = ("send", "recv")
    recovery_stride = args.recovery_stride
    if args.kill is not None:
        if args.mode == "recovery":
            # replay one rebuild crash point: skip the replication sweep
            kill_points = []
            recovery_stride = max(1, args.kill) if args.kill else 1
        else:
            kill_points = [args.kill]
            if args.mode is not None:
                modes = (args.mode,)
    report = run_dr_soak(
        seed=args.seed,
        commits=args.commits,
        writes_per_commit=args.writes_per_commit,
        stride=args.stride,
        recovery_stride=recovery_stride,
        kill_points=kill_points,
        modes=modes,
    )
    if args.json:
        print(json.dumps(report.digest(), indent=2, sort_keys=True))
    else:
        digest = report.digest()
        print(
            f"dr soak: seed={digest['seed']} "
            f"frames={digest['total_frames']} "
            f"replication_points={digest['replication_points']} "
            f"recovery_points={digest['recovery_points']} "
            f"rebuilds_verified={digest['rebuilds_verified']} "
            f"pit={digest['pit_recoveries']} "
            f"torn={digest['torn_rejected']}"
        )
    for failure in report.failures:
        print(failure.describe())
    if report.ok:
        print("ok: zero committed-transaction loss, zero torn records")
        return 0
    print(f"FAILED: {len(report.failures)} invariant violations")
    return 1


if __name__ == "__main__":
    sys.exit(main())
