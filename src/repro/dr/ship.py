"""Continuous log shipping over the Executor's link machinery.

The primary's :class:`LogShipper` hangs off
:attr:`~repro.storage.commit.CommitManager.log_sink`: every published
root becomes a delta record shipped **before the commit is
acknowledged** (sync mode, the default).  The wire is the same SEQ
envelope the host ↔ Gem conversation uses — checksummed, exactly-once,
and wrappable in :class:`~repro.faults.link.FaultyLink` — so replication
inherits the whole fault model for free.  A ship that exhausts its
retry budget raises :class:`~repro.errors.ReplicaNotAcknowledged`, a
``StorageError``: the Transaction Manager aborts the workspace and the
client never sees the commit succeed.  That is the zero-loss invariant
in one sentence: *client-acknowledged implies replica-acknowledged*.

The replica's :class:`LogReceiver` is a pump in the Executor's style: it
drains its link end, validates each record into the
:class:`~repro.dr.store.ReplicaLogStore`, and answers ``SHIP_ACK`` with
its durably acknowledged epoch.  Damaged frames (the SEQ checksum
catches them) are dropped silently — the shipper retries; typed errors
(gaps, torn records) travel back as ``ERROR`` frames and are rehydrated
into the same exception types on the primary.

``suspend()``/``catch_up()`` model a replica outage: while suspended,
records accumulate in the shipper's history; ``catch_up()`` asks the
replica where it stopped (``SHIP_STATUS``) and resends exactly the
missing suffix.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import (
    LinkCorruption,
    ProtocolError,
    ReplicaNotAcknowledged,
    ReplicationError,
    GemStoneError,
)
from ..executor import protocol
from ..executor.protocol import FrameType
from .log import DeltaRecord, encode_record, snapshot_of
from .store import ReplicaLogStore

#: replay-cache entries a receiver keeps (seq -> cached response)
_REPLAY_CACHE_SIZE = 64


class LogReceiver:
    """The replica-side pump: frames in, validated log records stored."""

    def __init__(self, store: ReplicaLogStore, obs=None) -> None:
        self.store = store
        self.obs = obs
        self.frames_served = 0
        self.corrupt_dropped = 0
        #: (channel, seq) -> encoded response, for exactly-once replay of
        #: resends.  Keying by channel lets two logical streams (say a
        #: SHIP conversation and a 2PC conversation) share one link and
        #: one receiver without their sequence spaces colliding.
        self._responses: dict[tuple[int | None, int], bytes] = {}

    def serve(self, link_end) -> None:
        """Drain every pending frame on *link_end*, answering each."""
        while True:
            try:
                raw = link_end.receive()
            except ProtocolError:
                return  # truncated tail on a dying link
            if raw is None:
                return
            try:
                frame = protocol.decode_frame(raw)
            except LinkCorruption:
                self.corrupt_dropped += 1
                continue  # damaged in transit; the shipper retries
            except ProtocolError:
                continue
            response = self._respond(frame)
            if frame.seq is not None:
                response = protocol.encode_seq(
                    frame.seq, response, channel=frame.channel
                )
            link_end.send(response)
            self.frames_served += 1

    def _respond(self, frame) -> bytes:
        key = (frame.channel, frame.seq)
        if frame.seq is not None and key in self._responses:
            return self._responses[key]  # resend: replay, don't re-apply
        if frame.type in (FrameType.SHIP, FrameType.SNAPSHOT):
            try:
                acked = self.store.append(frame.fields["record"])
            except GemStoneError as error:
                response = protocol.encode_error(
                    type(error).__name__, str(error)
                )
            else:
                response = protocol.encode_ship_ack(acked)
                if self.obs is not None:
                    self.obs.registry.inc("dr.records_received")
        elif frame.type is FrameType.SHIP_STATUS:
            response = protocol.encode_ship_ack(self.store.acked_epoch)
        else:
            response = protocol.encode_error(
                "ProtocolError", f"unexpected frame {frame.type.name}"
            )
        if frame.seq is not None:
            self._responses[(frame.channel, frame.seq)] = response
            while len(self._responses) > _REPLAY_CACHE_SIZE:
                self._responses.pop(next(iter(self._responses)))
        return response


class LogShipper:
    """The primary-side streamer: every commit becomes a shipped record."""

    def __init__(
        self,
        link,
        pump: Callable[[], None],
        obs=None,
        sync: bool = True,
        max_attempts: int = 8,
        clock=None,
        frame_deadline: Optional[float] = None,
        retry_delay: float = 1.0,
    ) -> None:
        self.link = link  #: primary's link end (possibly fault-wrapped)
        self.pump = pump  #: drains the receiver after each send
        self.obs = obs
        #: sync: a commit is not acknowledged until its record is; async
        #: (False) buffers into history for a later :meth:`catch_up`
        self.sync = sync
        self.max_attempts = max_attempts
        #: deterministic clock + per-frame deadline: with both set, each
        #: shipped frame carries ``clock.now + frame_deadline`` in its
        #: SEQ envelope and retrying stops once that instant passes, so
        #: the commit path cannot block past its time budget even when
        #: the retry budget would allow more attempts
        self.clock = clock
        self.frame_deadline = frame_deadline
        self.retry_delay = retry_delay  #: simulated units charged per retry
        self.deadline_failures = 0
        self.suspended = False
        #: epoch -> encoded delta record, the catch-up source of truth
        self.history: dict[int, bytes] = {}
        self._bootstrap: Optional[tuple[int, bytes]] = None
        self.local_epoch = 0  #: last epoch the primary published
        self.acked_epoch = 0  #: last epoch the replica acknowledged
        self.records_shipped = 0
        self.retries = 0
        self.ship_failures = 0
        self._seq = 0

    # -- the commit hook ------------------------------------------------------

    def on_commit(self, epoch, root_slot, root_image, shadow_writes) -> None:
        """The :attr:`CommitManager.log_sink` callback: ship one delta."""
        record = encode_record(
            DeltaRecord(
                epoch=epoch,
                root_slot=root_slot,
                root_image=root_image,
                writes=tuple(shadow_writes.items()),
            )
        )
        self.history[epoch] = record
        self.local_epoch = epoch
        if self.suspended or not self.sync:
            self._publish_gauges()
            return
        try:
            self._ship(protocol.encode_ship(record))
        except ReplicationError:
            self.ship_failures += 1
            self._publish_gauges()
            raise
        self._publish_gauges()

    # -- bootstrap and catch-up ------------------------------------------------

    def bootstrap(self, disk, epoch: int) -> int:
        """Ship a full snapshot of *disk* at *epoch* (replica birth)."""
        record = encode_record(snapshot_of(disk, epoch))
        self._bootstrap = (epoch, record)
        self.local_epoch = max(self.local_epoch, epoch)
        acked = self._ship(protocol.encode_snapshot(record))
        self._publish_gauges()
        return acked

    def checkpoint(self, disk, epoch: int) -> int:
        """Ship a fresh snapshot segment (recent recovery stays local
        even after older segments roll onto the archive)."""
        return self.bootstrap(disk, epoch)

    def suspend(self) -> None:
        """Model a replica outage: commits buffer instead of shipping."""
        self.suspended = True

    def catch_up(self) -> int:
        """Reconnect: ask the replica where it stopped, resend the rest."""
        self.suspended = False
        acked = self._ship(protocol.encode_ship_status())
        if acked == 0 and self._bootstrap is not None:
            # the replica lost everything: re-bootstrap, then deltas
            acked = self._ship(protocol.encode_snapshot(self._bootstrap[1]))
        for epoch in sorted(self.history):
            if epoch > acked:
                acked = self._ship(protocol.encode_ship(self.history[epoch]))
        self._publish_gauges()
        return acked

    # -- the wire --------------------------------------------------------------

    def _ship(self, frame: bytes) -> int:
        self._seq += 1
        deadline = None
        if self.clock is not None and self.frame_deadline is not None:
            deadline = self.clock.now + self.frame_deadline
        envelope = protocol.encode_seq(self._seq, frame, deadline=deadline)
        for attempt in range(self.max_attempts):
            if attempt:
                self.retries += 1
                if self.obs is not None:
                    self.obs.registry.inc("dr.ship_retries")
                if self.clock is not None:
                    self.clock.advance(self.retry_delay)
                if deadline is not None and self.clock.now > deadline:
                    self.deadline_failures += 1
                    raise ReplicaNotAcknowledged(
                        f"frame seq {self._seq} missed its deadline "
                        f"({self.frame_deadline} units) after "
                        f"{attempt} attempt(s)"
                    )
            self.link.send(envelope)
            self.pump()
            reply = self._receive_matching(self._seq)
            if reply is None:
                continue  # lost or damaged somewhere: resend
            if reply.type is FrameType.SHIP_ACK:
                self.acked_epoch = max(self.acked_epoch, reply.fields["epoch"])
                self.records_shipped += 1
                if self.obs is not None:
                    self.obs.registry.inc("dr.records_shipped")
                return reply.fields["epoch"]
            if reply.type is FrameType.ERROR:
                raise protocol.rehydrate_error(
                    reply.fields["error_class"], reply.fields["message"]
                )
        raise ReplicaNotAcknowledged(
            f"no replica acknowledgement for frame seq {self._seq} "
            f"after {self.max_attempts} attempts"
        )

    def _receive_matching(self, seq: int):
        while True:
            try:
                raw = self.link.receive()
            except ProtocolError:
                return None  # truncated tail: retry the whole exchange
            if raw is None:
                return None
            try:
                frame = protocol.decode_frame(raw)
            except ProtocolError:
                continue  # damaged response: keep draining
            if frame.seq is None or frame.seq == seq:
                return frame
            # a replayed response to an earlier seq: discard

    # -- reporting -------------------------------------------------------------

    @property
    def replication_lag(self) -> int:
        """Epochs the replica is behind the primary (0 when in step)."""
        return max(0, self.local_epoch - self.acked_epoch)

    def _publish_gauges(self) -> None:
        if self.obs is None:
            return
        registry = self.obs.registry
        registry.set_gauge("dr.last_shipped_epoch", self.acked_epoch)
        registry.set_gauge("dr.local_epoch", self.local_epoch)
        registry.set_gauge("dr.replication_lag", self.replication_lag)

    def report(self) -> dict:
        """Shipping counters for dashboards and ``replication_report``."""
        return {
            "sync": self.sync,
            "suspended": self.suspended,
            "local_epoch": self.local_epoch,
            "acked_epoch": self.acked_epoch,
            "replication_lag": self.replication_lag,
            "records_shipped": self.records_shipped,
            "retries": self.retries,
            "ship_failures": self.ship_failures,
            "deadline_failures": self.deadline_failures,
            "history_records": len(self.history),
        }
