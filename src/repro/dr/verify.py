"""Differential verification of recovered databases.

The recovery promise is *byte-identical*: the rebuilt platter equals the
lost primary's platter at the recovered epoch.  :func:`disk_digest`
reduces a whole disk to one SHA-256 (per-track, zero-trim normalized, so
a replayed trimmed image and the original padded write hash alike);
:func:`diff_disks` names the first mismatching tracks when a digest
comparison fails, which is what the soak prints in a reproducer.

Above bytes, :func:`logical_diff` opens both disks as databases and
compares what a session can observe — catalog, epoch, transaction time,
the oid population, and every object's encoded record — the same
spirit as the ``repro.check`` differential oracle: two paths to the same
state must agree exactly.
"""

from __future__ import annotations

import struct
from hashlib import sha256
from typing import List


def _track_image(disk, track: int) -> bytes:
    if not disk.is_written(track):
        return b""
    return disk.read_track(track).rstrip(b"\x00")


def disk_digest(disk) -> str:
    """SHA-256 over every track's zero-trimmed contents."""
    digest = sha256()
    for track in range(disk.track_count):
        image = _track_image(disk, track)
        digest.update(struct.pack("<II", track, len(image)))
        digest.update(image)
    return digest.hexdigest()


def diff_disks(expected, actual, limit: int = 5) -> List[str]:
    """The first *limit* track-level differences, human-readable."""
    problems: List[str] = []
    if expected.track_count != actual.track_count:
        problems.append(
            f"track counts differ: {expected.track_count} vs "
            f"{actual.track_count}"
        )
        return problems
    for track in range(expected.track_count):
        want = _track_image(expected, track)
        got = _track_image(actual, track)
        if want != got:
            problems.append(
                f"track {track}: expected {len(want)} bytes, "
                f"got {len(got)} bytes"
                + ("" if len(want) != len(got) else " (contents differ)")
            )
            if len(problems) >= limit:
                break
    return problems


def byte_identical(expected, actual) -> bool:
    """True when both platters hold identical (trim-normalized) bytes."""
    return disk_digest(expected) == disk_digest(actual)


def logical_diff(expected_db, actual_db) -> List[str]:
    """Observable-state differences between two opened databases."""
    from ..storage.codec import encode_object

    problems: List[str] = []
    a, b = expected_db.store, actual_db.store
    if a.commit_manager.current_epoch != b.commit_manager.current_epoch:
        problems.append(
            f"epoch: {a.commit_manager.current_epoch} vs "
            f"{b.commit_manager.current_epoch}"
        )
    if a.last_tx_time != b.last_tx_time:
        problems.append(f"last_tx_time: {a.last_tx_time} vs {b.last_tx_time}")
    if a.catalog != b.catalog:
        problems.append("catalogs differ")
    oids_a, oids_b = set(a.table.oids()), set(b.table.oids())
    if oids_a != oids_b:
        problems.append(
            f"oid populations differ: {sorted(oids_a ^ oids_b)[:10]}"
        )
        return problems
    for oid in sorted(oids_a):
        if a.table.get(oid).archived or b.table.get(oid).archived:
            continue
        if encode_object(a.object(oid)) != encode_object(b.object(oid)):
            problems.append(f"oid {oid}: encoded records differ")
            if len(problems) >= 10:
                break
    return problems
