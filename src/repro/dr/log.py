"""The replication log: self-delimiting, CRC-framed records.

Disaster recovery (docs/recovery.md) rests on one byte format.  Every
record is framed exactly like the root track the Commit Manager writes —

    <u32 payload length> <payload> <u32 crc32(payload)>

— so a record torn anywhere (truncated in transit, half a segment on a
dying medium) fails validation instead of replaying garbage.  Two
payload kinds exist:

* **delta** — one commit: the epoch, the root slot that was flipped, the
  exact framed root-track image, and the exact shadow track group.
  Replaying a delta repeats the primary's platter writes byte for byte.
* **snapshot** — the full platter at an epoch: every written track's
  (zero-trimmed) image plus the geometry.  A snapshot bootstraps a
  replica and later serves as the checkpoint a point-in-time recovery
  starts from.

The same framing doubles as the cold-storage format: closed log segments
are concatenations of records, stored verbatim on
:class:`~repro.storage.archive.ArchiveMedia` (see
:meth:`~repro.dr.store.ReplicaLogStore.archive_closed_segments`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Union
from zlib import crc32

from ..errors import CodecError, TornLogRecord
from ..storage.codec import Reader, Writer

#: payload kind bytes
RECORD_DELTA = 1
RECORD_SNAPSHOT = 2

#: framing overhead per record: u32 length + u32 crc
FRAME_OVERHEAD = 8


@dataclass(frozen=True)
class DeltaRecord:
    """One commit, as shipped: replaying it repeats the platter writes."""

    epoch: int
    root_slot: int  #: which ping-pong slot this commit's root landed on
    root_image: bytes  #: the exact framed root-track bytes
    writes: tuple[tuple[int, bytes], ...]  #: the shadow group, (track, data)


@dataclass(frozen=True)
class SnapshotRecord:
    """The full platter at an epoch: geometry + every written track."""

    epoch: int
    track_count: int
    track_size: int
    tracks: tuple[tuple[int, bytes], ...]  #: (track, zero-trimmed image)


LogRecord = Union[DeltaRecord, SnapshotRecord]


def encode_record(record: LogRecord) -> bytes:
    """Frame a record: length, typed payload, CRC32."""
    writer = Writer()
    if isinstance(record, DeltaRecord):
        writer.raw(bytes([RECORD_DELTA]))
        writer.uvarint(record.epoch)
        writer.uvarint(record.root_slot)
        writer.uvarint(len(record.root_image))
        writer.raw(record.root_image)
        writer.uvarint(len(record.writes))
        for track, data in sorted(record.writes):
            writer.uvarint(track)
            writer.uvarint(len(data))
            writer.raw(data)
    elif isinstance(record, SnapshotRecord):
        writer.raw(bytes([RECORD_SNAPSHOT]))
        writer.uvarint(record.epoch)
        writer.uvarint(record.track_count)
        writer.uvarint(record.track_size)
        writer.uvarint(len(record.tracks))
        for track, image in sorted(record.tracks):
            writer.uvarint(track)
            writer.uvarint(len(image))
            writer.raw(image)
    else:
        raise CodecError(f"cannot encode {type(record).__name__} as a log record")
    payload = writer.getvalue()
    return struct.pack("<I", len(payload)) + payload + struct.pack(
        "<I", crc32(payload)
    )


def decode_record(data: bytes) -> LogRecord:
    """Unframe and validate one record; :class:`TornLogRecord` on damage."""
    record, consumed = _decode_at(data, 0)
    if consumed != len(data):
        raise TornLogRecord(
            f"{len(data) - consumed} trailing bytes after a log record"
        )
    return record


def iter_records(data: bytes) -> Iterator[LogRecord]:
    """Yield every record of a segment; :class:`TornLogRecord` on damage."""
    offset = 0
    while offset < len(data):
        record, consumed = _decode_at(data, offset)
        offset += consumed
        yield record


def _decode_at(data: bytes, offset: int) -> tuple[LogRecord, int]:
    if len(data) - offset < FRAME_OVERHEAD:
        raise TornLogRecord("log record shorter than its framing")
    (length,) = struct.unpack_from("<I", data, offset)
    if length == 0 or offset + length + FRAME_OVERHEAD > len(data):
        raise TornLogRecord("log record has implausible length")
    payload = data[offset + 4 : offset + 4 + length]
    (stored_crc,) = struct.unpack_from("<I", data, offset + 4 + length)
    if crc32(payload) != stored_crc:
        raise TornLogRecord("log record failed its CRC")
    try:
        record = _decode_payload(payload)
    except CodecError as error:
        raise TornLogRecord(f"log record payload malformed: {error}") from error
    return record, length + FRAME_OVERHEAD


def _decode_payload(payload: bytes) -> LogRecord:
    reader = Reader(payload)
    kind = reader.byte()
    if kind == RECORD_DELTA:
        epoch = reader.uvarint()
        root_slot = reader.uvarint()
        root_image = reader.raw(reader.uvarint())
        writes = tuple(
            (reader.uvarint(), reader.raw(reader.uvarint()))
            for _ in range(reader.uvarint())
        )
        return DeltaRecord(epoch, root_slot, root_image, writes)
    if kind == RECORD_SNAPSHOT:
        epoch = reader.uvarint()
        track_count = reader.uvarint()
        track_size = reader.uvarint()
        tracks = tuple(
            (reader.uvarint(), reader.raw(reader.uvarint()))
            for _ in range(reader.uvarint())
        )
        return SnapshotRecord(epoch, track_count, track_size, tracks)
    raise CodecError(f"unknown log record kind {kind}")


def snapshot_of(disk, epoch: int) -> SnapshotRecord:
    """Capture *disk*'s full written state as a snapshot record.

    Track images are stored zero-trimmed — lossless, because the
    simulated disk zero-pads every write to the track size, so trimmed
    images replay to byte-identical platters.
    """
    tracks = []
    for track in range(disk.track_count):
        if disk.is_written(track):
            tracks.append((track, disk.read_track(track).rstrip(b"\x00")))
    return SnapshotRecord(
        epoch=epoch,
        track_count=disk.track_count,
        track_size=disk.track_size,
        tracks=tuple(tracks),
    )
