"""The replica's side of continuous replication: the log store.

A :class:`ReplicaLogStore` is what survives the disaster.  It holds the
replication log as an ordered list of *segments*, each a run of framed
records (:mod:`repro.dr.log`).  A segment begins with a snapshot —
bootstrap or checkpoint — and accumulates deltas until it is rolled.

Admission is strict, because a log that accepts garbage cannot promise
recovery:

* every record is validated (framing + CRC) **before** it is stored; a
  torn record raises :class:`~repro.errors.TornLogRecord` and is never
  appended, so the stored log is always replayable end to end;
* delta epochs must be contiguous from the acknowledged epoch; a skip
  raises :class:`~repro.errors.ReplicationGapError` (the shipper's
  catch-up resolves it); a duplicate (epoch already acknowledged) is
  acknowledged again without re-appending — exactly-once on the wire,
  idempotent at the store.

Closed segments can be rolled onto
:class:`~repro.storage.archive.ArchiveMedia` (tiered cold storage, the
paper's S20 archival): the segment's concatenated records are stored
verbatim under one archive key and dropped locally.  Recovery walks
local segments newest-first and touches the archive only when the
requested epoch predates every local snapshot — so recent-epoch recovery
works with the archive volume unmounted, while a pre-archive
point-in-time request surfaces the typed
:class:`~repro.errors.ArchiveError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ArchiveError, ReplicationGapError, TornLogRecord
from ..storage.archive import ArchiveDrive, ArchiveMedia
from .log import (
    DeltaRecord,
    LogRecord,
    SnapshotRecord,
    decode_record,
    iter_records,
)


@dataclass
class LogSegment:
    """One run of the log: a snapshot followed by contiguous deltas."""

    first_epoch: int
    last_epoch: int
    records: Optional[list[bytes]] = field(default_factory=list)
    closed: bool = False
    archive_key: Optional[int] = None  #: set once rolled onto cold storage

    @property
    def archived(self) -> bool:
        return self.archive_key is not None

    @property
    def record_count(self) -> int:
        return len(self.records) if self.records is not None else 0

    @property
    def bytes_stored(self) -> int:
        if self.records is None:
            return 0
        return sum(len(r) for r in self.records)


class ReplicaLogStore:
    """Validated, segmented storage for the replication log."""

    def __init__(self, archive_drive: Optional[ArchiveDrive] = None) -> None:
        self.segments: list[LogSegment] = []
        self.archive_drive = archive_drive or ArchiveDrive()
        #: highest epoch durably stored (what SHIP_ACK advertises)
        self.acked_epoch = 0
        self.records_appended = 0
        self.duplicates_ignored = 0
        self.torn_rejected = 0

    # -- admission ----------------------------------------------------------

    def append(self, record_bytes: bytes) -> int:
        """Validate and store one framed record; returns the acked epoch.

        Torn records are rejected (raised, counted, never stored);
        non-contiguous deltas raise :class:`ReplicationGapError`;
        already-acknowledged epochs are acknowledged again idempotently.
        """
        try:
            record = decode_record(record_bytes)
        except TornLogRecord:
            self.torn_rejected += 1
            raise
        if isinstance(record, SnapshotRecord):
            return self._append_snapshot(record, record_bytes)
        return self._append_delta(record, record_bytes)

    def _append_snapshot(self, record: SnapshotRecord, raw: bytes) -> int:
        if self.segments and record.epoch < self.acked_epoch:
            # a checkpoint must not rewind the log
            self.duplicates_ignored += 1
            return self.acked_epoch
        self._roll_open_segment()
        self.segments.append(
            LogSegment(first_epoch=record.epoch, last_epoch=record.epoch,
                       records=[raw])
        )
        self.records_appended += 1
        self.acked_epoch = max(self.acked_epoch, record.epoch)
        return self.acked_epoch

    def _append_delta(self, record: DeltaRecord, raw: bytes) -> int:
        if record.epoch <= self.acked_epoch:
            self.duplicates_ignored += 1  # resend of an applied record
            return self.acked_epoch
        if not self.segments:
            raise ReplicationGapError(
                f"delta epoch {record.epoch} arrived before any snapshot"
            )
        if record.epoch != self.acked_epoch + 1:
            raise ReplicationGapError(
                f"delta epoch {record.epoch} skips ahead of "
                f"acknowledged epoch {self.acked_epoch}"
            )
        segment = self.segments[-1]
        if segment.closed:
            # the previous segment was rolled; continue in a fresh one
            segment = LogSegment(
                first_epoch=record.epoch, last_epoch=record.epoch, records=[]
            )
            self.segments.append(segment)
        segment.records.append(raw)
        segment.last_epoch = record.epoch
        self.records_appended += 1
        self.acked_epoch = record.epoch
        return self.acked_epoch

    # -- segments and cold storage ------------------------------------------

    def _roll_open_segment(self) -> None:
        if self.segments and not self.segments[-1].closed:
            self.segments[-1].closed = True

    def roll_segment(self) -> None:
        """Close the currently open segment (next delta opens a new one)."""
        self._roll_open_segment()

    def archive_closed_segments(self, media: ArchiveMedia) -> list[int]:
        """Move every closed, still-local segment onto *media*.

        Each segment's concatenated records go under one archive key;
        the local copy is dropped.  Returns the new keys.  Recovery into
        an archived segment then requires the volume to be mounted on
        this store's :class:`~repro.storage.archive.ArchiveDrive`.
        """
        keys = []
        for segment in self.segments:
            if segment.closed and not segment.archived:
                key = media.store(b"".join(segment.records))
                segment.archive_key = key
                segment.records = None
                keys.append(key)
        return keys

    def _segment_records(self, segment: LogSegment) -> list[LogRecord]:
        if segment.archived:
            raw = self.archive_drive.fetch(segment.archive_key)
            return list(iter_records(raw))
        return [decode_record(r) for r in segment.records]

    # -- recovery planning ---------------------------------------------------

    def plan_recovery(self, epoch: Optional[int] = None) -> list[LogRecord]:
        """The record sequence that rebuilds the primary at *epoch*.

        Walks segments newest-first, collecting records at or before the
        target until a snapshot is found; returns ``[snapshot, deltas...]``
        in replay order.  Archived segments are only materialized when
        the target predates every local snapshot — fetching them without
        the volume mounted raises :class:`~repro.errors.ArchiveError`.
        """
        target = self.acked_epoch if epoch is None else epoch
        if target < 1 or target > self.acked_epoch:
            raise ReplicationGapError(
                f"epoch {target} is outside the log's range "
                f"(1..{self.acked_epoch})"
            )
        collected: list[LogRecord] = []
        for segment in reversed(self.segments):
            if segment.first_epoch > target:
                continue  # every record in this segment is after the target
            for record in reversed(self._segment_records(segment)):
                if record.epoch > target:
                    continue
                collected.append(record)
                if isinstance(record, SnapshotRecord):
                    return list(reversed(collected))
        raise ReplicationGapError(
            f"no snapshot at or before epoch {target} remains in the log"
        )

    # -- reporting -----------------------------------------------------------

    @property
    def bytes_stored(self) -> int:
        """Local (non-archived) log bytes held."""
        return sum(s.bytes_stored for s in self.segments)

    def report(self) -> dict:
        """Counters for dashboards and the soak digest."""
        return {
            "acked_epoch": self.acked_epoch,
            "segments": len(self.segments),
            "archived_segments": sum(1 for s in self.segments if s.archived),
            "records_appended": self.records_appended,
            "duplicates_ignored": self.duplicates_ignored,
            "torn_rejected": self.torn_rejected,
            "bytes_stored": self.bytes_stored,
        }
