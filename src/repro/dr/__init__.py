"""Disaster recovery: continuous replication log + point-in-time rebuild.

Section 6 promises "requests for replication of data"; this package is
the half that survives losing the primary entirely.  Every commit ships
a CRC-framed log record (:mod:`~repro.dr.log`) over the Executor's SEQ
link to a :class:`~repro.dr.store.ReplicaLogStore`
(:mod:`~repro.dr.ship`); :mod:`~repro.dr.recover` rebuilds a working
GemStone from the log alone, to any requested epoch;
:mod:`~repro.dr.verify` proves the rebuild byte-identical; and
:mod:`~repro.dr.soak` kills the primary at every crash point to prove
zero committed-transaction loss.  ``python -m repro.dr --seed N``
replays one seeded sweep.  See docs/recovery.md.
"""

from .log import (
    DeltaRecord,
    SnapshotRecord,
    decode_record,
    encode_record,
    iter_records,
    snapshot_of,
)
from .recover import recover_database, recover_disk, replay_onto
from .ship import LogReceiver, LogShipper
from .store import LogSegment, ReplicaLogStore
from .verify import byte_identical, diff_disks, disk_digest, logical_diff

__all__ = [
    "DeltaRecord",
    "SnapshotRecord",
    "decode_record",
    "encode_record",
    "iter_records",
    "snapshot_of",
    "recover_database",
    "recover_disk",
    "replay_onto",
    "LogReceiver",
    "LogShipper",
    "LogSegment",
    "ReplicaLogStore",
    "byte_identical",
    "diff_disks",
    "disk_digest",
    "logical_diff",
]
