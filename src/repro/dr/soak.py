"""The disaster sweep: kill the primary everywhere, lose nothing.

The ZKAPAuthorizer recovery design states its acceptance as invariants —
100% of committed state recovered, unaffected by the exact timing of the
failure.  :func:`run_dr_soak` proves the same for this replication log
by *sweeping the timing*:

* **mid-replication** — the primary dies at every outgoing frame index,
  in both windows: before the record reaches the wire (``send``: the
  record is lost with the primary) and after the replica stored it but
  before the acknowledgement arrives (``recv``: the replica is *ahead*
  of every client acknowledgement — allowed; behind — never);
* **mid-recovery** — the rebuild target dies at every write index, is
  restarted, and the replay is re-run (idempotence is the claim).

Invariants checked at every point:

1. zero committed-transaction loss: every commit the client saw succeed
   is at or below the replica's acknowledged epoch;
2. zero torn log records: the store never accepted a record that fails
   validation (and replay never hits one);
3. byte-identical rebuild: the platter recovered from the log alone
   matches the dead primary's platter at the recovered epoch;
4. point-in-time: recovery to a non-latest epoch matches the platter
   clone captured when that epoch committed.

Every failure carries a copy-pasteable reproducer
(``python -m repro.dr --seed N --kill K --mode M``), following the
``repro.check`` pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..db import GemStone
from ..errors import DiskCrashed
from ..storage.disk import DiskGeometry, SimulatedDisk
from .recover import recover_disk, replay_onto
from .store import ReplicaLogStore
from .verify import byte_identical, diff_disks


class PrimaryDead(Exception):
    """The sweep's kill signal — deliberately *not* a GemStoneError, so
    no recovery or retry layer can swallow it: the primary is gone."""


class DyingLink:
    """A link end that kills the primary at an exact frame index.

    ``mode="send"`` raises before the fatal frame touches the wire (the
    record dies with the primary); ``mode="recv"`` lets the frame
    through — the replica stores it and acks — then raises on the next
    receive, so the primary never sees the acknowledgement.
    """

    def __init__(self, inner, kill_at: Optional[int] = None,
                 mode: str = "send") -> None:
        self.inner = inner
        self.kill_at = kill_at
        self.mode = mode
        self.sent = 0

    def send(self, frame: bytes) -> None:
        if self.kill_at is not None and self.sent == self.kill_at:
            if self.mode == "send":
                raise PrimaryDead(f"primary died sending frame {self.sent}")
            self.sent += 1
            self.inner.send(frame)
            return
        self.sent += 1
        self.inner.send(frame)

    def receive(self):
        if (
            self.kill_at is not None
            and self.mode == "recv"
            and self.sent > self.kill_at
        ):
            raise PrimaryDead(
                f"primary died awaiting the ack of frame {self.kill_at}"
            )
        return self.inner.receive()

    def close(self) -> None:
        self.inner.close()

    @property
    def peer_closed(self) -> bool:
        return self.inner.peer_closed


@dataclass
class DrFailure:
    """One violated invariant, with its reproducer."""

    phase: str  #: "replication" or "recovery"
    kill_point: int
    mode: str
    invariant: str
    detail: str
    reproducer: str

    def describe(self) -> str:
        return (
            f"[{self.phase}] kill={self.kill_point} mode={self.mode}: "
            f"{self.invariant} — {self.detail}\n  reproduce: {self.reproducer}"
        )


@dataclass
class DrSoakReport:
    """What the disaster sweep observed."""

    seed: int
    commits: int
    total_frames: int  #: outgoing frames in the uninterrupted run
    total_recovery_writes: int  #: track writes in a full clean rebuild
    replication_points: int = 0
    recovery_points: int = 0
    rebuilds_verified: int = 0
    pit_recoveries: int = 0  #: non-latest point-in-time rebuilds checked
    torn_rejected: int = 0  #: torn records the stores refused (never kept)
    failures: list[DrFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def digest(self) -> dict:
        """JSON-ready summary for benchmarks and CI."""
        return {
            "seed": self.seed,
            "commits": self.commits,
            "total_frames": self.total_frames,
            "total_recovery_writes": self.total_recovery_writes,
            "replication_points": self.replication_points,
            "recovery_points": self.recovery_points,
            "rebuilds_verified": self.rebuilds_verified,
            "pit_recoveries": self.pit_recoveries,
            "torn_rejected": self.torn_rejected,
            "failures": len(self.failures),
            "ok": self.ok,
        }


def _workload(seed: int, commits: int, writes_per_commit: int) -> list[list[str]]:
    return [
        [
            f"World!k{key} := 's{seed}_g{batch}_{key}'"
            for key in range(writes_per_commit)
        ]
        for batch in range(commits)
    ]


def _reproducer(seed: int, kill: int, mode: str) -> str:
    return f"python -m repro.dr --seed {seed} --kill {kill} --mode {mode}"


class _SweepRun:
    """One primary driven until the kill point fires (or never)."""

    def __init__(self, base_disk: SimulatedDisk, workload, kill_at, mode):
        self.disk = base_disk.clone()
        self.database = GemStone.open(self.disk)
        self.dying: Optional[DyingLink] = None
        self.store = ReplicaLogStore()
        self.acked_commits: list[int] = []  #: epochs the client saw succeed
        self.clones: dict[int, SimulatedDisk] = {}
        self.died = False

        def wrapper(inner):
            self.dying = DyingLink(inner, kill_at=kill_at, mode=mode)
            return self.dying

        try:
            self.database.enable_replication(
                link_wrapper=wrapper, replica_store=self.store
            )
        except PrimaryDead:
            self.died = True
            return
        self.clones[self.database.store.commit_manager.current_epoch] = (
            self.disk.clone()
        )
        session = self.database.login()
        for batch in workload:
            try:
                for statement in batch:
                    session.execute(statement)
                session.commit()
            except PrimaryDead:
                self.died = True
                return
            epoch = self.database.store.commit_manager.current_epoch
            self.acked_commits.append(epoch)
            self.clones[epoch] = self.disk.clone()


def run_dr_soak(
    seed: int = 2026,
    commits: int = 6,
    writes_per_commit: int = 2,
    track_count: int = 1024,
    track_size: int = 512,
    stride: int = 1,
    recovery_stride: int = 1,
    kill_points: Optional[list[int]] = None,
    modes: tuple[str, ...] = ("send", "recv"),
) -> DrSoakReport:
    """Sweep every kill point; verify the four invariants at each.

    *stride* subsamples frame kill points, *recovery_stride* subsamples
    rebuild write indexes (smoke runs); *kill_points* replaces the sweep
    with explicit frame indexes — the CLI's ``--kill`` handle.
    """
    workload = _workload(seed, commits, writes_per_commit)
    geometry = DiskGeometry(track_count=track_count, track_size=track_size)

    # the uninterrupted instrumented run: frame totals + the full log
    base_disk = SimulatedDisk(geometry)
    GemStone.create(disk=base_disk)
    clean = _SweepRun(base_disk, workload, kill_at=None, mode="send")
    assert not clean.died, "the clean run must not die"
    total_frames = clean.dying.sent
    final_reference = clean.disk.clone()

    # a full clean rebuild, instrumented for the recovery-crash sweep
    rebuild_plan = clean.store.plan_recovery()
    probe = SimulatedDisk(geometry)
    replay_onto(probe, rebuild_plan)
    total_recovery_writes = probe.stats.writes

    report = DrSoakReport(
        seed=seed,
        commits=commits,
        total_frames=total_frames,
        total_recovery_writes=total_recovery_writes,
    )

    if kill_points is None:
        sweep = list(range(0, total_frames, stride))
    else:
        bad = [k for k in kill_points if not 0 <= k < total_frames]
        if bad:
            raise ValueError(
                f"kill points {bad} outside the run's {total_frames} frames"
            )
        sweep = sorted(set(kill_points))

    # -- mid-replication: kill the primary at every frame ------------------
    for kill in sweep:
        for mode in modes:
            report.replication_points += 1
            run = _SweepRun(base_disk, workload, kill_at=kill, mode=mode)
            store = run.store
            report.torn_rejected += store.torn_rejected
            fail = lambda invariant, detail: report.failures.append(  # noqa: E731
                DrFailure(
                    "replication", kill, mode, invariant, detail,
                    _reproducer(seed, kill, mode),
                )
            )
            if store.torn_rejected:
                fail("zero-torn", f"{store.torn_rejected} torn records offered")
            last_acked_commit = max(run.acked_commits, default=0)
            if last_acked_commit > store.acked_epoch:
                fail(
                    "zero-loss",
                    f"client-acked epoch {last_acked_commit} beyond "
                    f"replica epoch {store.acked_epoch}",
                )
                continue
            if store.acked_epoch == 0:
                continue  # died during bootstrap: nothing was ever acked
            # byte-identical rebuild at the replica's acked epoch
            local = run.database.store.commit_manager.current_epoch
            if store.acked_epoch == local:
                reference = run.disk  # the dead primary's platter, as-is
            else:
                reference = run.clones.get(store.acked_epoch)
            if reference is None:
                fail(
                    "byte-identical",
                    f"no reference platter for epoch {store.acked_epoch}",
                )
                continue
            try:
                rebuilt = recover_disk(store)
            except Exception as error:  # noqa: BLE001 — report, keep sweeping
                fail("byte-identical", f"rebuild raised {error!r}")
                continue
            if not byte_identical(reference, rebuilt):
                fail(
                    "byte-identical",
                    "; ".join(diff_disks(reference, rebuilt)),
                )
            else:
                report.rebuilds_verified += 1
            # point-in-time: the earliest client-acked, non-latest epoch
            pit_candidates = [
                e for e in run.acked_commits if e < store.acked_epoch
            ]
            if pit_candidates:
                pit = pit_candidates[0]
                pit_rebuilt = recover_disk(store, epoch=pit)
                if not byte_identical(run.clones[pit], pit_rebuilt):
                    fail(
                        "point-in-time",
                        f"epoch {pit}: "
                        + "; ".join(diff_disks(run.clones[pit], pit_rebuilt)),
                    )
                else:
                    report.pit_recoveries += 1

    # -- mid-recovery: kill the rebuild at every write ---------------------
    full_store = clean.store
    for crash_index in range(0, total_recovery_writes, recovery_stride):
        report.recovery_points += 1
        target = SimulatedDisk(geometry)
        target.crash_after(crash_index)
        died = False
        try:
            recover_disk(full_store, disk=target)
        except DiskCrashed:
            died = True
        if not died:
            report.failures.append(
                DrFailure(
                    "recovery", crash_index, "write",
                    "crash-armed", "rebuild finished past its crash point",
                    _reproducer(seed, crash_index, "recovery"),
                )
            )
            continue
        target.restart()
        recover_disk(full_store, disk=target)  # idempotent second pass
        if not byte_identical(final_reference, target):
            report.failures.append(
                DrFailure(
                    "recovery", crash_index, "write", "idempotent-replay",
                    "; ".join(diff_disks(final_reference, target)),
                    _reproducer(seed, crash_index, "recovery"),
                )
            )
        else:
            report.rebuilds_verified += 1
    return report
