"""Disaster recovery: rebuild a GemStone from the replication log alone.

The primary is gone.  What remains is a
:class:`~repro.dr.store.ReplicaLogStore` — and that is enough, because
every delta record carries the *exact* bytes the primary wrote: the
shadow track group and the framed root-track image, in commit order.
Replaying snapshot-then-deltas onto a fresh simulated disk therefore
reproduces the primary's platter byte for byte, and
``GemStone.open`` on that disk is ordinary crash recovery
(:meth:`~repro.storage.commit.CommitManager.recover` picks the highest
valid root).

Point-in-time: pass ``epoch=E`` and the replay simply stops at E.  The
rebuilt platter then holds roots E and E-1 in the ping-pong slots —
exactly what the primary's disk held the moment commit E published — so
recovery adopts epoch E and the transaction-time histories make every
state at or before E readable.  Epochs before the oldest local snapshot
live in archived segments; recovering to them requires the archive
volume mounted (:class:`~repro.errors.ArchiveError` otherwise).

Replay is **idempotent**: a crash mid-rebuild (the target disk dies)
loses nothing — restart it, or take a fresh disk, and replay again.
The soak harness proves this at every write index.
"""

from __future__ import annotations

from typing import Optional

from ..storage.disk import DiskGeometry, SimulatedDisk
from .log import LogRecord, SnapshotRecord
from .store import ReplicaLogStore


def replay_onto(disk, records: list[LogRecord]) -> int:
    """Apply a recovery plan to *disk*; returns the final epoch.

    Safe to re-run after a partial failure: every record writes absolute
    track images, so replaying from the start converges on the same
    platter.
    """
    epoch = 0
    for record in records:
        if isinstance(record, SnapshotRecord):
            for track, image in record.tracks:
                disk.write_track(track, image)
        else:
            for track, data in record.writes:
                disk.write_track(track, data)
            disk.write_track(record.root_slot, record.root_image)
        epoch = record.epoch
    return epoch


def recover_disk(
    store: ReplicaLogStore,
    epoch: Optional[int] = None,
    disk: Optional[SimulatedDisk] = None,
    obs=None,
) -> SimulatedDisk:
    """Rebuild the primary's platter at *epoch* (default: latest acked).

    Pass *disk* to replay onto an existing target (the mid-recovery
    crash path restarts a half-written one); otherwise a fresh disk with
    the snapshot's geometry is created.
    """
    records = store.plan_recovery(epoch)
    snapshot = records[0]
    if disk is None:
        disk = SimulatedDisk(
            DiskGeometry(
                track_count=snapshot.track_count,
                track_size=snapshot.track_size,
            )
        )
    if obs is not None and obs.tracer.enabled:
        with obs.tracer.span(
            "dr.recover", epoch=records[-1].epoch, records=len(records)
        ):
            replay_onto(disk, records)
    else:
        replay_onto(disk, records)
    if obs is not None:
        obs.registry.inc("dr.recoveries")
        obs.registry.set_gauge("dr.last_recovered_epoch", records[-1].epoch)
    return disk


def recover_database(
    store: ReplicaLogStore,
    epoch: Optional[int] = None,
    obs=None,
    tracing: bool = False,
):
    """Rebuild a working GemStone from the log alone (point-in-time
    when *epoch* is given)."""
    from ..db import GemStone

    disk = recover_disk(store, epoch, obs=obs)
    return GemStone.open(disk, tracing=tracing)
