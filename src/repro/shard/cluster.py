"""One logical GemStone over N shard workers.

:class:`ShardedGemStone` assembles the pieces: a worker per partition
(each a full GemStone on its own simulated disk), the presumed-abort
coordinator with its durable decision log on a dedicated disk, and the
SEQ-enveloped links between them — one link per worker carrying two
channels (session statements, 2PC control) plus a resolution link the
coordinator serves for restarting participants.

:class:`ShardedSession` is the front end.  It quacks like
:class:`~repro.db.GemSession` closely enough that the existing
:class:`~repro.executor.Executor` can serve host links against a
sharded cluster unchanged: ``execute`` routes each statement to the
owning shard (see :mod:`repro.shard.partition`), ``commit`` takes the
single-shard fast path when only one worker participated and otherwise
runs full 2PC, ``abort`` rolls every participant back.

The restart path mirrors :class:`~repro.db.GemStone.open`: build the
cluster from the surviving platters (``worker_disks``/
``decision_disk``), then call :meth:`ShardedGemStone.recover` — every
worker re-prepares its in-doubt transactions from their durable
records, RESOLVEs them against the decision log, and the coordinator
re-delivers any pending logged commits.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import (
    CoordinatorUnavailable,
    GemStoneError,
    SessionClosed,
)
from ..executor import protocol
from ..executor.link import make_link
from ..faults.plan import FaultClock
from ..obs import Observability
from .coordinator import TwoPhaseCoordinator, in_doubt_error
from .decisions import DecisionLog
from .partition import route_statement
from .rpc import CoordinatorKilled, RequestChannel, WorkerKilled
from .worker import ShardWorker

#: channel ids multiplexed on each worker link
EXEC_CHANNEL = 0
TWOPC_CHANNEL = 1
RESOLVE_CHANNEL = 2


class _SessionInfo:
    """The ``session.session`` shim the Executor front end expects."""

    def __init__(self, session_id: int) -> None:
        self.session_id = session_id


class ShardedGemStone:
    """A cluster of shard workers behind one session interface."""

    def __init__(
        self,
        shard_count: int = 2,
        track_count: int = 1024,
        track_size: int = 512,
        killer=None,
        clock: Optional[FaultClock] = None,
        worker_disks=None,
        decision_disk=None,
        generation: int = 0,
        deadline: float = 8.0,
        tracing: bool = False,
    ) -> None:
        if worker_disks is not None:
            shard_count = len(worker_disks)
        self.shard_count = shard_count
        self.generation = generation
        self.killer = killer
        self.clock = clock or FaultClock()
        self.obs = Observability(tracing=tracing)
        self._session_counter = 0
        self._gtid_counter = 0
        self._commit_counter = 0
        self.single_shard_commits = 0
        self.cross_shard_commits = 0

        # workers: fresh partitions, or reopened surviving platters
        self.workers: list[ShardWorker] = []
        for shard_id in range(shard_count):
            if worker_disks is None:
                worker = ShardWorker(
                    shard_id,
                    track_count=track_count,
                    track_size=track_size,
                    killer=killer,
                )
            else:
                worker = ShardWorker.reopen(
                    shard_id, worker_disks[shard_id], killer=killer
                )
            self.workers.append(worker)

        # the coordinator and its durable decision log
        if decision_disk is None:
            from ..storage.disk import DiskGeometry, SimulatedDisk

            decision_disk = SimulatedDisk(
                DiskGeometry(track_count=128, track_size=track_size)
            )
            log = DecisionLog.create(decision_disk)
        else:
            log = DecisionLog.open(decision_disk)
        self.decision_disk = decision_disk
        self.coordinator = TwoPhaseCoordinator(log, killer=killer, obs=self.obs)

        # links: one duplex pair per worker (two channels), plus a
        # resolution pair the coordinator serves; retries on every
        # channel pace through govern's seeded jittered backoff
        from ..govern import CommitPolicy

        self.retry_policy = CommitPolicy(seed=self.generation)
        self.exec_channels: list[RequestChannel] = []
        self._resolve_channels: list[RequestChannel] = []
        self._worker_ends = []
        self._resolution_ends = []
        for shard_id, worker in enumerate(self.workers):
            client_end, worker_end = make_link()
            self._worker_ends.append(worker_end)
            pump = self._worker_pump(shard_id)
            self.exec_channels.append(
                RequestChannel(
                    client_end, pump, self.clock,
                    channel=EXEC_CHANNEL, deadline=deadline,
                    policy=self.retry_policy,
                )
            )
            self.coordinator.attach(
                shard_id,
                RequestChannel(
                    client_end, pump, self.clock,
                    channel=TWOPC_CHANNEL, deadline=deadline,
                    policy=self.retry_policy,
                ),
            )
            worker_res_end, coord_res_end = make_link()
            self._resolution_ends.append(coord_res_end)
            self._resolve_channels.append(
                RequestChannel(
                    worker_res_end,
                    self._resolution_pump(shard_id),
                    self.clock,
                    channel=RESOLVE_CHANNEL,
                    deadline=deadline,
                    unavailable=CoordinatorUnavailable,
                    policy=self.retry_policy,
                )
            )

    # -- pumps (the in-process links are synchronous) ------------------------

    def _worker_pump(self, shard_id: int):
        def pump() -> None:
            worker = self.workers[shard_id]
            if not worker.alive:
                return
            try:
                worker.serve(self._worker_ends[shard_id])
            except WorkerKilled:
                worker.alive = False

        return pump

    def _resolution_pump(self, shard_id: int):
        def pump() -> None:
            if not self.coordinator.alive:
                return
            self.coordinator.serve_resolution(
                self._resolution_ends[shard_id]
            )

        return pump

    # -- sessions ------------------------------------------------------------

    def login(self, user=None, password=None) -> "ShardedSession":
        """Open a sharded session (credentials accepted for Executor
        compatibility; authorization is each worker's concern)."""
        self._session_counter += 1
        return ShardedSession(self, self._session_counter)

    def next_gtid(self) -> str:
        """A cluster-unique global transaction id.

        The generation prefix keeps ids from a restarted cluster
        disjoint from its previous life's in-doubt ids.
        """
        self._gtid_counter += 1
        return f"g{self.generation}.{self._gtid_counter}"

    # -- recovery --------------------------------------------------------------

    def recover(self) -> dict[str, int]:
        """Resolve every in-doubt transaction after a restart.

        Each worker asks the coordinator about its re-prepared gtids
        (commit if logged, abort presumed otherwise); the coordinator
        then re-delivers DECIDE for any logged commits still pending
        acknowledgement.  Returns ``{"resolved": ..., "settled": ...}``.
        """
        resolved = 0
        for shard_id, worker in enumerate(self.workers):
            resolved += worker.resolve_with(self._resolve_channels[shard_id])
        settled = self.coordinator.settle()
        self._publish_gauges()
        return {"resolved": resolved, "settled": settled}

    def in_doubt(self) -> dict[int, list[str]]:
        """Per-shard gtids still awaiting a decision (empty when clean)."""
        return {
            worker.shard_id: worker.in_doubt()
            for worker in self.workers
            if worker.in_doubt()
        }

    # -- observability ----------------------------------------------------------

    def _publish_gauges(self) -> None:
        registry = self.obs.registry
        registry.set_gauge(
            "shard.in_doubt",
            sum(len(gtids) for gtids in self.in_doubt().values()),
        )
        registry.set_gauge(
            "shard.decision_log_pending", len(self.coordinator.log.pending())
        )
        for worker in self.workers:
            registry.set_gauge(
                f"shard.{worker.shard_id}.commits",
                worker.db.transaction_manager.stats.commits,
            )

    def shard_report(self) -> dict[str, Any]:
        """The ``shard`` observability section (see docs/sharding.md)."""
        total = self.single_shard_commits + self.cross_shard_commits
        return {
            "shard_count": self.shard_count,
            "generation": self.generation,
            "single_shard_commits": self.single_shard_commits,
            "cross_shard_commits": self.cross_shard_commits,
            "cross_shard_ratio": (
                self.cross_shard_commits / total if total else 0.0
            ),
            "in_doubt": sum(
                len(gtids) for gtids in self.in_doubt().values()
            ),
            "coordinator": self.coordinator.report(),
            "per_shard": [worker.report() for worker in self.workers],
        }

    def observability(self) -> dict[str, Any]:
        """A cluster-level snapshot: counters plus the shard section."""
        self._publish_gauges()
        return {
            "counters": self.obs.registry.snapshot(),
            "shard": self.shard_report(),
        }


class ShardedSession:
    """The GemSession-shaped front end over the cluster."""

    def __init__(self, cluster: ShardedGemStone, session_id: int) -> None:
        self.cluster = cluster
        #: the Executor reads ``session.engine`` and
        #: ``session.session.session_id``; sharded execution has no
        #: single engine, and results print via their wire displays
        self.engine = None
        self.session = _SessionInfo(session_id)
        self.last_display = ""
        self._gtid: Optional[str] = None
        self._participants: list[int] = []
        self._closed = False

    # -- the language interface -------------------------------------------------

    def execute(self, source: str, bindings=None) -> Any:
        """Route one statement to its owning shard and run it there."""
        if self._closed:
            raise SessionClosed("session is closed")
        shard_id = route_statement(source, self.cluster.shard_count)
        if self._gtid is None:
            self._gtid = self.cluster.next_gtid()
        if shard_id not in self._participants:
            self._participants.append(shard_id)
        reply = self.cluster.exec_channels[shard_id].request(
            protocol.encode_shard_exec(self._gtid, source)
        )
        self.last_display = reply.fields["display"]
        return reply.fields["value"]

    def display(self, value: Any) -> str:
        """The printString of the last result (wire display)."""
        if value is None:
            return "nil"
        return self.last_display or repr(value)

    # -- transactions --------------------------------------------------------------

    def commit(self) -> Optional[int]:
        """Commit: single-shard fast path, or presumed-abort 2PC.

        Returns a monotone commit stamp.  Raises
        :class:`~repro.errors.TransactionConflict` on a no-vote,
        :class:`~repro.errors.ShardUnavailable` when a participant died
        before the decision (the transaction aborted), and
        :class:`~repro.errors.TransactionInDoubt` when the coordinator
        died after prepares went out.
        """
        gtid, participants = self._gtid, self._participants
        self._gtid, self._participants = None, []
        if gtid is None:
            return None  # nothing executed: trivially committed
        cluster = self.cluster
        if len(participants) == 1:
            reply = cluster.exec_channels[participants[0]].request(
                protocol.encode_shard_commit(gtid)
            )
            cluster.single_shard_commits += 1
            cluster.obs.registry.inc("shard.single_shard_commits")
            cluster._commit_counter += 1
            return reply.fields["tx_time"]
        try:
            cluster.coordinator.commit(gtid, participants)
        except CoordinatorKilled:
            cluster.coordinator.alive = False
            raise in_doubt_error(gtid)
        cluster.cross_shard_commits += 1
        cluster.obs.registry.inc("shard.cross_shard_commits")
        cluster._commit_counter += 1
        return cluster._commit_counter

    def abort(self) -> None:
        """Roll back every participant's piece of the transaction."""
        gtid, participants = self._gtid, self._participants
        self._gtid, self._participants = None, []
        if gtid is None:
            return
        for shard_id in participants:
            try:
                self.cluster.exec_channels[shard_id].request(
                    protocol.encode_decide(gtid, False)
                )
            except GemStoneError:
                pass  # a dead shard's workspace dies with it

    def close(self) -> None:
        """End the session, discarding any in-flight work."""
        if not self._closed:
            self.abort()
            self._closed = True

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
