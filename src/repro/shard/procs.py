"""Real OS processes for shard workers — the cluster leaves the nest.

Everything below :mod:`repro.shard.cluster` treats "the cluster" as a
set of in-process workers wired by in-memory links.  This module swaps
both simulations for the real thing while keeping every protocol layer
unchanged:

* each shard worker runs in its **own process**
  (``multiprocessing``, fork start method), owning a
  :class:`~repro.storage.filedisk.FileDisk` platter in its own
  directory, serving the exact :class:`~repro.shard.worker.ShardWorker`
  frame protocol over the exact ``repro.net`` TCP framing;
* the parent holds the :class:`~repro.shard.coordinator.\
TwoPhaseCoordinator` with its decision log on its own ``FileDisk``, and
  a :class:`ProcCluster` that duck-types
  :class:`~repro.shard.cluster.ShardedGemStone` closely enough that the
  unmodified :class:`~repro.shard.cluster.ShardedSession` drives it;
* crashes are **SIGKILL**, not exceptions: a worker's
  :class:`_SigkillWindows` counts protocol windows exactly like the
  soak's :class:`~repro.shard.soak.WindowKiller` and, at the armed one,
  kills its own process mid-syscall.  Three *wire* windows join the
  worker's four durability windows, covering the moments 2PC state is
  half on the network: ``wire.prepare_received`` (the PREPARE arrived
  but nothing happened yet), ``wire.vote_sent`` (the vote is on the
  wire, the decision is not), and ``wire.decide_ack_sent`` (the apply
  is durable, the ack just left).

Recovery is the same story as the in-process soak told end to end over
real sockets: respawn the dead worker (``FileDisk.open`` →
``ShardWorker.reopen`` re-executes and re-prepares its durable
prepared record), read its in-doubt set over STATUS, answer each gtid
from the decision log (commit if logged, abort presumed), and let the
coordinator settle its pending fan-outs.  A killed coordinator is
modelled by discarding the in-memory log and reloading it from the
platter file — byte-for-byte what a process restart would read.

``run_proc_soak`` sweeps a SIGKILL through every window of every node
and verifies the same five invariants as :mod:`repro.shard.soak`;
``python -m repro.shard.procs --seed N --kill K`` replays one window.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
from typing import Optional

from ..errors import GemStoneError, LinkTimeout, ProtocolError, ShardUnavailable
from ..executor import protocol
from ..executor.protocol import Frame, FrameType
from ..faults.plan import FaultClock
from ..govern import CommitPolicy
from ..net.tcp import Listener, dial
from ..obs import Observability
from ..storage.disk import DiskGeometry
from ..storage.filedisk import FileDisk
from .cluster import EXEC_CHANNEL, TWOPC_CHANNEL, ShardedSession
from .coordinator import TwoPhaseCoordinator
from .decisions import DecisionLog
from .partition import shard_of
from .rpc import ReplayServer, RequestChannel
from .soak import ShardFailure, ShardSoakReport, WindowKiller, _workload
from .worker import ShardWorker

#: per-worker platter geometry (matches the in-process soak defaults)
TRACK_COUNT = 1024
TRACK_SIZE = 512

#: receive budget on parent→worker links, seconds: small enough that a
#: SIGKILLed worker costs the caller well under a second before the
#: typed ShardUnavailable, large enough that a loaded localhost
#: round-trip never times out spuriously
WORKER_RECEIVE_TIMEOUT = 0.15


# -- the worker process ------------------------------------------------------


class _SigkillWindows:
    """A :class:`~repro.shard.soak.WindowKiller` whose kill is SIGKILL.

    Counts every protocol window this process reaches (the worker's
    durability windows plus the wire windows of the serving loop) and,
    at the armed one, kills its own process — no unwinding, no
    destructors, no flushes.  Arm with a flat *kill_at* index (the
    sweep's handle) or a named *(window, nth)* pair (the test matrix's
    handle).
    """

    def __init__(
        self,
        kill_at: Optional[int] = None,
        kill_window: Optional[tuple[str, int]] = None,
    ) -> None:
        self.kill_at = kill_at
        self.kill_window = kill_window
        self.count = 0
        self._by_name: dict[str, int] = {}

    def window(self, name: str, victim) -> None:
        index = self.count
        self.count += 1
        nth = self._by_name.get(name, 0)
        self._by_name[name] = nth + 1
        if index == self.kill_at or (name, nth) == self.kill_window:
            os.kill(os.getpid(), signal.SIGKILL)


def _platter_path(directory: str) -> str:
    return os.path.join(directory, "platter.bin")


def _status_payload(worker: ShardWorker, killer: _SigkillWindows) -> dict:
    """The STATUS_REPORT body: health, windows, and in-doubt state."""
    return {
        "shard_id": worker.shard_id,
        "windows": killer.count,
        "in_doubt": worker.in_doubt(),
        "durable_prepared": sorted(worker._durable_prepared),
        "report": worker.report(),
    }


def _serve_connection(
    worker: ShardWorker,
    killer: _SigkillWindows,
    link,
    drain: threading.Event,
) -> None:
    """Serve one client connection until EOF or drain.

    Each connection gets its **own** replay cache: two independent
    clients both start their channels at seq 1, so a shared
    ``(channel, seq)`` cache would replay one client's responses to the
    other.  The wire kill windows wrap the 2PC frames exactly where the
    protocol state is split across the network.
    """

    def dispatch(frame: Frame) -> bytes:
        if frame.type is FrameType.STATUS:
            return protocol.encode_status_report(
                json.dumps(_status_payload(worker, killer))
            )
        return worker._handle(frame)

    server = ReplayServer(dispatch)
    try:
        while not drain.is_set():
            try:
                raw = link.receive(timeout=0.1)
            except ProtocolError:
                return  # truncated tail on a dying connection
            if raw is None:
                if link.peer_closed:
                    return
                continue  # budget expired; poll the drain flag
            try:
                frame = protocol.decode_frame(raw)
            except ProtocolError:
                continue  # damaged in transit; the sender retries
            # wire windows fire only for frames actually *applied*: a
            # replayed duplicate (the client resent after a slow reply)
            # re-answers from the cache without re-crossing any
            # protocol state, and counting it would make the window
            # census timing-dependent
            replayed = (
                frame.seq is not None
                and server._replay.lookup(frame.channel, frame.seq) is not None
            )
            if not replayed and frame.type is FrameType.PREPARE:
                killer.window("wire.prepare_received", worker.shard_id)
            response = server._respond(frame)
            if frame.seq is not None:
                response = protocol.encode_seq(
                    frame.seq, response, channel=frame.channel
                )
            try:
                link.send(response)
            except (ProtocolError, LinkTimeout):
                return
            server.frames_served += 1
            if not replayed:
                if frame.type is FrameType.PREPARE:
                    killer.window("wire.vote_sent", worker.shard_id)
                elif frame.type is FrameType.DECIDE:
                    killer.window("wire.decide_ack_sent", worker.shard_id)
    finally:
        link.close()


def _worker_main(
    shard_id: int,
    directory: str,
    kill_at: Optional[int],
    kill_window: Optional[tuple[str, int]],
    conn,
) -> None:
    """Entry point of a worker process: open the platter, serve TCP."""
    killer = _SigkillWindows(kill_at, kill_window)
    try:
        path = _platter_path(directory)
        if os.path.exists(path):
            disk = FileDisk.open(path)
            worker = ShardWorker.reopen(shard_id, disk, killer=killer)
        else:
            disk = FileDisk.create(
                path,
                DiskGeometry(track_count=TRACK_COUNT, track_size=TRACK_SIZE),
            )
            worker = ShardWorker(
                shard_id, disk=disk, killer=killer, fresh=True
            )
        listener = Listener("127.0.0.1", 0, receive_timeout=0.1)
    except Exception as error:  # noqa: BLE001 — report setup failures
        conn.send({"ready": False, "error": f"{type(error).__name__}: {error}"})
        conn.close()
        os._exit(3)
    drain = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_args: drain.set())
    conn.send(
        {
            "ready": True,
            "shard_id": shard_id,
            "port": listener.port,
            "in_doubt": worker.in_doubt(),
        }
    )
    conn.close()
    threads: list[threading.Thread] = []
    while not drain.is_set():
        link = listener.accept(timeout=0.2)
        if link is None:
            continue
        thread = threading.Thread(
            target=_serve_connection,
            args=(worker, killer, link, drain),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    # graceful drain: stop accepting, let every connection loop notice
    # the flag, then exit cleanly — SIGTERM must never tear state
    listener.close()
    for thread in threads:
        thread.join(timeout=2.0)
    disk.close()
    os._exit(0)


# -- the parent's handle on one worker ---------------------------------------


class WorkerProc:
    """Spawn/kill/drain one shard worker process."""

    def __init__(self, shard_id: int, directory: str) -> None:
        self.shard_id = shard_id
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.process: Optional[multiprocessing.Process] = None
        self.port: Optional[int] = None
        self.in_doubt_at_start: list[str] = []

    def spawn(
        self,
        kill_at: Optional[int] = None,
        kill_window: Optional[tuple[str, int]] = None,
        timeout: float = 30.0,
    ) -> dict:
        """Start the process; block until its readiness handshake."""
        context = multiprocessing.get_context("fork")
        parent_conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_worker_main,
            args=(self.shard_id, self.directory, kill_at, kill_window, child_conn),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(timeout):
                raise ShardUnavailable(
                    f"shard {self.shard_id} worker never reported ready"
                )
            ready = parent_conn.recv()
        finally:
            parent_conn.close()
        if not ready.get("ready"):
            raise ShardUnavailable(
                f"shard {self.shard_id} worker failed to start: "
                f"{ready.get('error')}"
            )
        self.port = ready["port"]
        self.in_doubt_at_start = list(ready["in_doubt"])
        return ready

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def sigkill(self) -> None:
        """Crash the worker hard (the fault model's kill)."""
        if self.process is not None:
            self.process.kill()
            self.process.join(timeout=5.0)

    def stop(self, drain: bool = True, timeout: float = 10.0) -> Optional[int]:
        """Stop the worker; returns its exit code (0 = clean drain)."""
        process = self.process
        if process is None:
            return None
        if process.is_alive() and drain:
            process.terminate()  # SIGTERM → graceful drain
            process.join(timeout)
        if process.is_alive():
            process.kill()
            process.join(timeout)
        code = process.exitcode
        self.process = None
        return code


# -- the cluster of processes ------------------------------------------------


def _no_pump() -> None:
    """TCP peers answer on their own schedule; there is nothing to pump."""


class ProcCluster:
    """N worker processes + the parent's coordinator, one session surface.

    Duck-types the slice of :class:`~repro.shard.cluster.ShardedGemStone`
    that :class:`~repro.shard.cluster.ShardedSession` uses, so the
    session/commit/abort logic — fast path, 2PC, typed failures — runs
    unchanged over real processes and real sockets.
    """

    def __init__(
        self,
        shard_count: int = 2,
        base_dir: Optional[str] = None,
        deadline: float = 6.0,
        receive_timeout: float = WORKER_RECEIVE_TIMEOUT,
        coordinator_killer=None,
        worker_kills: Optional[dict[int, int]] = None,
        worker_kill_windows: Optional[dict[int, tuple[str, int]]] = None,
        generation: int = 0,
    ) -> None:
        self.shard_count = shard_count
        self.generation = generation
        self.deadline = deadline
        self.receive_timeout = receive_timeout
        self.base_dir = base_dir or tempfile.mkdtemp(prefix="repro-cluster-")
        self._own_dir = base_dir is None
        self.clock = FaultClock()
        self.obs = Observability()
        self.retry_policy = CommitPolicy(seed=generation)
        self._session_counter = 0
        self._gtid_counter = 0
        #: gtids must stay unique even when bench drivers run one
        #: thread per shard against the same cluster
        self._gtid_lock = threading.Lock()
        self._commit_counter = 0
        self.single_shard_commits = 0
        self.cross_shard_commits = 0

        worker_kills = worker_kills or {}
        worker_kill_windows = worker_kill_windows or {}
        self.procs: list[WorkerProc] = []
        for shard_id in range(shard_count):
            proc = WorkerProc(
                shard_id, os.path.join(self.base_dir, f"shard{shard_id}")
            )
            proc.spawn(
                kill_at=worker_kills.get(shard_id),
                kill_window=worker_kill_windows.get(shard_id),
            )
            self.procs.append(proc)

        self._decision_path = os.path.join(self.base_dir, "decisions.bin")
        if os.path.exists(self._decision_path):
            self._decision_disk = FileDisk.open(self._decision_path)
            log = DecisionLog.open(self._decision_disk)
        else:
            self._decision_disk = FileDisk.create(
                self._decision_path,
                DiskGeometry(track_count=128, track_size=TRACK_SIZE),
            )
            log = DecisionLog.create(self._decision_disk)
        self.coordinator = TwoPhaseCoordinator(
            log, killer=coordinator_killer, obs=self.obs
        )

        self._links: list = [None] * shard_count
        self.exec_channels: list = [None] * shard_count
        for shard_id in range(shard_count):
            self._wire(shard_id)

    # -- wiring --------------------------------------------------------------

    def _wire(self, shard_id: int) -> None:
        """(Re)dial one worker and rebuild both its channels.

        Always a *fresh* connection: the worker keeps one replay cache
        per connection, so reusing channel seq numbering on an old
        connection after a coordinator restart would replay stale
        responses.
        """
        proc = self.procs[shard_id]
        link = dial(
            "127.0.0.1",
            proc.port,
            timeout=5.0,
            receive_timeout=self.receive_timeout,
            registry=self.obs.registry,
        )
        old = self._links[shard_id]
        if old is not None:
            old.close()
        self._links[shard_id] = link
        self.exec_channels[shard_id] = RequestChannel(
            link, _no_pump, self.clock,
            channel=EXEC_CHANNEL, deadline=self.deadline,
            policy=self.retry_policy,
        )
        self.coordinator.attach(
            shard_id,
            RequestChannel(
                link, _no_pump, self.clock,
                channel=TWOPC_CHANNEL, deadline=self.deadline,
                policy=self.retry_policy,
            ),
        )

    # -- sessions ------------------------------------------------------------

    def login(self, user=None, password=None) -> ShardedSession:
        """Open a session; the unmodified ShardedSession drives us."""
        self._session_counter += 1
        return ShardedSession(self, self._session_counter)

    def next_gtid(self) -> str:
        with self._gtid_lock:
            self._gtid_counter += 1
            return f"g{self.generation}.{self._gtid_counter}"

    # -- worker health -------------------------------------------------------

    def status(self, shard_id: int) -> dict:
        """One worker's STATUS_REPORT (health, windows, in-doubt)."""
        reply = self.exec_channels[shard_id].request(protocol.encode_status())
        return json.loads(reply.fields["payload"])

    def in_doubt(self) -> dict[int, list[str]]:
        """Per-shard gtids still awaiting a decision (empty when clean)."""
        report: dict[int, list[str]] = {}
        for shard_id in range(self.shard_count):
            gtids = self.status(shard_id)["in_doubt"]
            if gtids:
                report[shard_id] = gtids
        return report

    # -- recovery ------------------------------------------------------------

    def restart_coordinator(self) -> None:
        """Replace a dead coordinator from its durable log file.

        The in-memory log is discarded and re-read from the platter
        file — exactly the state a restarted coordinator process would
        see — and every worker link is re-dialed so the new
        coordinator's channels start on fresh replay caches.
        """
        self._decision_disk.close()
        self._decision_disk = FileDisk.open(self._decision_path)
        log = DecisionLog.open(self._decision_disk)
        self.coordinator = TwoPhaseCoordinator(log, obs=self.obs)
        for shard_id in range(self.shard_count):
            if self.procs[shard_id].alive:
                self._wire(shard_id)

    def recover(self) -> dict[str, int]:
        """Respawn the dead, resolve every in-doubt gtid, settle.

        The process analogue of ``ShardedGemStone.recover``: dead
        workers restart from their platters (re-preparing their durable
        records before serving), each re-prepared gtid is answered from
        the decision log (commit if logged, abort presumed), and the
        coordinator re-delivers any logged commits still pending.
        """
        if not self.coordinator.alive:
            self.restart_coordinator()
        for shard_id, proc in enumerate(self.procs):
            if not proc.alive:
                proc.stop(drain=False)  # reap the corpse
                proc.spawn()
                self._wire(shard_id)
        resolved = 0
        for shard_id in range(self.shard_count):
            for gtid in self.status(shard_id)["in_doubt"]:
                commit = self.coordinator.log.decision(gtid)
                self.coordinator.channels[shard_id].request(
                    protocol.encode_decide(gtid, commit)
                )
                resolved += 1
        settled = self.coordinator.settle()
        return {"resolved": resolved, "settled": settled}

    # -- reporting -----------------------------------------------------------

    def shard_report(self) -> dict:
        """The cluster's shard section, assembled over STATUS."""
        total = self.single_shard_commits + self.cross_shard_commits
        return {
            "shard_count": self.shard_count,
            "generation": self.generation,
            "single_shard_commits": self.single_shard_commits,
            "cross_shard_commits": self.cross_shard_commits,
            "cross_shard_ratio": (
                self.cross_shard_commits / total if total else 0.0
            ),
            "in_doubt": sum(
                len(gtids) for gtids in self.in_doubt().values()
            ),
            "coordinator": self.coordinator.report(),
            "per_shard": [
                self.status(shard_id)["report"]
                for shard_id in range(self.shard_count)
            ],
        }

    # -- lifecycle -----------------------------------------------------------

    def close(self, drain: bool = True, cleanup: bool = True) -> list:
        """Shut the cluster down; returns each worker's exit code."""
        for link in self._links:
            if link is not None:
                link.close()
        exitcodes = [proc.stop(drain=drain) for proc in self.procs]
        self._decision_disk.close()
        if cleanup and self._own_dir:
            shutil.rmtree(self.base_dir, ignore_errors=True)
        return exitcodes

    def __enter__(self) -> "ProcCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- the SIGKILL sweep -------------------------------------------------------


def _reproducer(seed: int, kill: int) -> str:
    return f"python -m repro.shard.procs --seed {seed} --kill {kill}"


def _drive_proc(cluster: ProcCluster, workload) -> dict[int, str]:
    """Run the workload; every outcome is an ack or a typed error."""
    session = cluster.login()
    outcomes: dict[int, str] = {}
    for t, statements, _expected in workload:
        try:
            for statement in statements:
                session.execute(statement)
            session.commit()
            outcomes[t] = "acked"
        except GemStoneError as error:
            outcomes[t] = type(error).__name__
            try:
                session.abort()
            except GemStoneError:
                pass  # a dead shard's workspace dies with it
    return outcomes


def _census(seed, shards, transactions, base_dir, report, workload):
    """The uninterrupted run: per-node window counts + a sanity check."""
    cluster = ProcCluster(
        shard_count=shards,
        base_dir=base_dir,
        coordinator_killer=WindowKiller(None),
    )
    try:
        outcomes = _drive_proc(cluster, workload)
        coord_windows = cluster.coordinator.killer.count
        worker_windows = [
            cluster.status(shard_id)["windows"] for shard_id in range(shards)
        ]
    finally:
        exitcodes = cluster.close()
    not_acked = [t for t, outcome in outcomes.items() if outcome != "acked"]
    if not_acked:
        report.failures.append(
            ShardFailure(
                -1, "clean", "-", "clean-run",
                f"transactions {not_acked} failed with nobody killed: "
                f"{ {t: outcomes[t] for t in not_acked} }",
                _reproducer(seed, -1),
            )
        )
    bad_exits = [code for code in exitcodes if code != 0]
    if bad_exits:
        report.failures.append(
            ShardFailure(
                -1, "clean", "-", "graceful-drain",
                f"SIGTERM drain exited with {exitcodes}",
                _reproducer(seed, -1),
            )
        )
    return coord_windows, worker_windows


def _check_recovered(report, kill, window, victim, cluster, outcomes,
                     workload, seed):
    """Recover the swept cluster in place; verify every invariant."""

    def fail(invariant: str, detail: str) -> None:
        report.failures.append(
            ShardFailure(
                kill, window, str(victim), invariant, detail,
                _reproducer(seed, kill),
            )
        )

    try:
        stats = cluster.recover()
    except Exception as error:  # noqa: BLE001 — report, keep sweeping
        fail("recovery", f"recover raised {error!r}")
        return
    report.in_doubt_resolved += stats["resolved"]

    # 1. nothing left in doubt, in memory or durably
    for shard_id in range(cluster.shard_count):
        status = cluster.status(shard_id)
        if status["in_doubt"]:
            fail(
                "in-doubt-resolved",
                f"shard {shard_id} still prepared after recovery: "
                f"{status['in_doubt']}",
            )
        if status["durable_prepared"]:
            fail(
                "in-doubt-resolved",
                f"shard {shard_id} kept durable prepared records "
                f"{status['durable_prepared']}",
            )

    # 2–4. atomicity, zero acked loss, presumed-abort safety
    checker = cluster.login()
    for t, _statements, expected in workload:
        values = {key: checker.execute(f"World!{key}") for key in expected}
        checker.abort()
        landed = [key for key in expected if values[key] == expected[key]]
        stray = [
            key for key in expected
            if values[key] is not None and values[key] != expected[key]
        ]
        if stray:
            fail(
                "atomicity",
                f"txn {t} keys hold foreign values: "
                + ", ".join(f"{k}={values[k]!r}" for k in stray),
            )
        if landed and len(landed) != len(expected):
            fail(
                "atomicity",
                f"txn {t} half-committed: {len(landed)}/{len(expected)} "
                f"keys present ({sorted(landed)})",
            )
        if outcomes.get(t) == "acked":
            report.acked_checked += 1
            if len(landed) != len(expected):
                fail(
                    "zero-acked-loss",
                    f"txn {t} was client-acknowledged but only "
                    f"{len(landed)}/{len(expected)} keys survived recovery",
                )

    # 5. liveness: a fresh cross-shard commit over the recovered cluster
    liveness = cluster.login()
    try:
        probe = 0
        placed: set[int] = set()
        statements = []
        while len(placed) < min(2, cluster.shard_count):
            key = f"live{kill}_{probe}"
            shard = shard_of(key, cluster.shard_count)
            if shard not in placed:
                placed.add(shard)
                statements.append(f"World!{key} := 'alive'")
            probe += 1
        for statement in statements:
            liveness.execute(statement)
        liveness.commit()
        report.liveness_commits += 1
    except GemStoneError as error:
        fail(
            "post-recovery-liveness",
            f"fresh cross-shard commit failed: {type(error).__name__}: {error}",
        )


def run_proc_soak(
    seed: int = 2026,
    shards: int = 2,
    transactions: int = 6,
    stride: int = 1,
    kill_points: Optional[list[int]] = None,
) -> ShardSoakReport:
    """SIGKILL every node at every protocol window; verify invariants.

    Kill indexes number the coordinator's windows first, then each
    worker's local windows in shard order, as counted by the clean run.
    """
    workload = _workload(seed, shards, transactions)
    report = ShardSoakReport(
        seed=seed, shards=shards, transactions=transactions, total_windows=0
    )
    coord_windows, worker_windows = _census(
        seed, shards, transactions, None, report, workload
    )
    if report.failures:
        return report

    # the global kill index space: coordinator first, then each worker
    kills: list[tuple] = [("coord", k) for k in range(coord_windows)]
    for shard_id, count in enumerate(worker_windows):
        kills.extend((shard_id, k) for k in range(count))
    report.total_windows = len(kills)

    if kill_points is None:
        sweep = list(range(0, len(kills), stride))
    else:
        bad = [k for k in kill_points if not 0 <= k < len(kills)]
        if bad:
            raise ValueError(
                f"kill points {bad} outside the run's {len(kills)} windows"
            )
        sweep = sorted(set(kill_points))

    for kill in sweep:
        report.kill_points_run += 1
        victim, local = kills[kill]
        if victim == "coord":
            coordinator_killer = WindowKiller(local)
            worker_kills = {}
        else:
            coordinator_killer = WindowKiller(None)
            worker_kills = {victim: local}
        cluster = ProcCluster(
            shard_count=shards,
            coordinator_killer=coordinator_killer,
            worker_kills=worker_kills,
        )
        try:
            outcomes = _drive_proc(cluster, workload)
            if victim == "coord":
                fired = coordinator_killer.fired is not None
                window = (
                    coordinator_killer.fired[0] if fired else "none"
                )
            else:
                # the workload can finish in the instant between the
                # worker's self-SIGKILL and the kernel reaping it, so
                # give death a moment before calling the kill unarmed
                victim_proc = cluster.procs[victim]
                if victim_proc.process is not None:
                    victim_proc.process.join(timeout=2.0)
                fired = not victim_proc.alive
                window = f"worker[{victim}]@{local}"
            if not fired:
                report.failures.append(
                    ShardFailure(
                        kill, "none", str(victim), "kill-armed",
                        "the run finished without reaching its kill window",
                        _reproducer(seed, kill),
                    )
                )
                continue
            _check_recovered(
                report, kill, window, victim, cluster, outcomes,
                workload, seed,
            )
            exitcodes = cluster.close()
            cluster = None
            if any(code != 0 for code in exitcodes):
                report.failures.append(
                    ShardFailure(
                        kill, window, str(victim), "graceful-drain",
                        f"SIGTERM drain exited with {exitcodes}",
                        _reproducer(seed, kill),
                    )
                )
        finally:
            if cluster is not None:
                cluster.close(drain=False)
    return report


# -- CLI ---------------------------------------------------------------------


def _build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.shard.procs",
        description="2PC crash sweep over real worker processes and real "
        "sockets (SIGKILL every node at every protocol window).",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--transactions", type=int, default=6)
    parser.add_argument(
        "--kill", type=int, default=None,
        help="replay one kill point: the global window index the sweep "
        "numbers (coordinator windows first, then each worker's)",
    )
    parser.add_argument("--stride", type=int, default=1,
                        help="subsample kill windows (smoke runs)")
    parser.add_argument("--json", action="store_true",
                        help="print the digest as JSON")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        report = run_proc_soak(
            seed=args.seed,
            shards=args.shards,
            transactions=args.transactions,
            stride=args.stride,
            kill_points=[args.kill] if args.kill is not None else None,
        )
    except ValueError as error:
        print(f"error: {error}")
        return 2
    if args.json:
        print(json.dumps(report.digest(), indent=2, sort_keys=True))
    else:
        digest = report.digest()
        print(
            f"proc soak: seed={digest['seed']} "
            f"shards={digest['shards']} "
            f"windows={digest['total_windows']} "
            f"kills={digest['kill_points_run']} "
            f"acked_checked={digest['acked_checked']} "
            f"resolved={digest['in_doubt_resolved']} "
            f"liveness={digest['liveness_commits']}"
        )
    for failure in report.failures:
        print(failure.describe())
    if report.ok:
        print("ok: SIGKILL at every window; zero acked loss, zero "
              "half-committed state, nothing left in doubt")
        return 0
    print(f"FAILED: {len(report.failures)} invariant violations")
    return 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
