"""repro.shard — the object space partitioned across shard workers.

ROADMAP item 1: break the one-process ceiling.  The paper's GemStone is
Session Managers in front of one Commit Manager whose safe group writes
make commit atomic on a single disk; here the world's top-level names
are hash-partitioned across N :class:`~repro.shard.worker.ShardWorker`
processes (each a complete GemStone on its own platter) behind one
:class:`~repro.shard.cluster.ShardedGemStone` front end, and a
transaction spanning shards commits atomically through a
**presumed-abort two-phase commit** whose decision log is durable via
the same safe group writes (:mod:`repro.shard.decisions`).

The fault story is swept, not sampled: :func:`run_shard_soak` kills the
coordinator and each participant at every protocol window and proves —
after restart and in-doubt resolution — zero committed-transaction
loss, zero half-committed cross-shard state, and nothing left in doubt.
``python -m repro.shard --seed N --kill K`` replays any failure.

See docs/sharding.md for the state machine and the recovery matrix.
"""

from .cluster import ShardedGemStone, ShardedSession
from .coordinator import TwoPhaseCoordinator
from .decisions import DecisionLog
from .partition import route_statement, shard_of, statement_keys
from .soak import ShardFailure, ShardSoakReport, WindowKiller, run_shard_soak
from .worker import ShardWorker

__all__ = [
    "DecisionLog",
    "ShardFailure",
    "ShardSoakReport",
    "ShardWorker",
    "ShardedGemStone",
    "ShardedSession",
    "TwoPhaseCoordinator",
    "WindowKiller",
    "route_statement",
    "run_shard_soak",
    "shard_of",
    "statement_keys",
]
