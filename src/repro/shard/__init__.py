"""repro.shard — the object space partitioned across shard workers.

ROADMAP item 1: break the one-process ceiling.  The paper's GemStone is
Session Managers in front of one Commit Manager whose safe group writes
make commit atomic on a single disk; here the world's top-level names
are hash-partitioned across N :class:`~repro.shard.worker.ShardWorker`
processes (each a complete GemStone on its own platter) behind one
:class:`~repro.shard.cluster.ShardedGemStone` front end, and a
transaction spanning shards commits atomically through a
**presumed-abort two-phase commit** whose decision log is durable via
the same safe group writes (:mod:`repro.shard.decisions`).

The fault story is swept, not sampled: :func:`run_shard_soak` kills the
coordinator and each participant at every protocol window and proves —
after restart and in-doubt resolution — zero committed-transaction
loss, zero half-committed cross-shard state, and nothing left in doubt.
``python -m repro.shard --seed N --kill K`` replays any failure.

:mod:`repro.shard.procs` removes the last simplification: the same
cluster with each worker a real OS process on its own ``FileDisk``
platter, every frame crossing real TCP (:class:`ProcCluster`), and the
same sweep at process level via :func:`run_proc_soak`
(``python -m repro.shard.procs``).

See docs/sharding.md for the state machine and the recovery matrix,
and docs/networking.md for the process topology.
"""

from .cluster import ShardedGemStone, ShardedSession
from .coordinator import TwoPhaseCoordinator
from .decisions import DecisionLog
from .partition import route_statement, shard_of, statement_keys
from .soak import ShardFailure, ShardSoakReport, WindowKiller, run_shard_soak
from .worker import ShardWorker

_PROC_NAMES = ("ProcCluster", "WorkerProc", "run_proc_soak")


def __getattr__(name):
    # lazy: ``python -m repro.shard.procs`` must not find the module
    # already imported by its own package (runpy would warn)
    if name in _PROC_NAMES:
        from . import procs

        return getattr(procs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DecisionLog",
    "ProcCluster",
    "ShardFailure",
    "ShardSoakReport",
    "ShardWorker",
    "ShardedGemStone",
    "ShardedSession",
    "TwoPhaseCoordinator",
    "WindowKiller",
    "WorkerProc",
    "route_statement",
    "run_proc_soak",
    "run_shard_soak",
    "shard_of",
    "statement_keys",
]
