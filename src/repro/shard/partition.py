"""Partitioning the object space: hash of GOOP name → shard.

The paper's GemStone is one process with one Commit Manager; ROADMAP
item 1 breaks that ceiling by splitting the world's top-level names
across N shard workers.  The partitioning unit is the *root binding*: a
statement's ``World!name`` references name the GOOPs it touches, and a
stable hash of the name picks the owning shard.  Everything reachable
only through a root binding lives with it — the OverRelational
Manifesto's "one logical object space, physically distributed".

A single statement must route to exactly one shard (it executes inside
one worker's OPAL engine).  A *transaction* spans shards by issuing
several statements, each individually routable; the cross-shard atomic
commit is :mod:`repro.shard.coordinator`'s job.
"""

from __future__ import annotations

import hashlib
import re

from ..errors import ShardRoutingError

#: top-level world bindings a statement touches (``World!name`` syntax)
KEY_PATTERN = re.compile(r"World!([A-Za-z_][A-Za-z0-9_]*)")


def shard_of(key: str, shard_count: int) -> int:
    """The shard owning world binding *key*: a stable content hash.

    SHA-256 (not Python's randomized ``hash``) so the placement is
    identical across processes and runs — a restarted worker must find
    its own data.
    """
    if shard_count < 1:
        raise ShardRoutingError("shard_count must be at least 1")
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


def statement_keys(source: str) -> list[str]:
    """The world bindings *source* references, in order, deduplicated."""
    seen: list[str] = []
    for key in KEY_PATTERN.findall(source):
        if key not in seen:
            seen.append(key)
    return seen


def route_statement(source: str, shard_count: int) -> int:
    """The single shard that must execute *source*.

    A statement naming no world binding routes to shard 0 (it touches
    only temporaries).  A statement whose bindings hash to different
    shards cannot execute anywhere and raises
    :class:`~repro.errors.ShardRoutingError` — split it into one
    statement per shard.
    """
    keys = statement_keys(source)
    if not keys:
        return 0
    shards = {shard_of(key, shard_count) for key in keys}
    if len(shards) > 1:
        placed = ", ".join(
            f"{key}→{shard_of(key, shard_count)}" for key in keys
        )
        raise ShardRoutingError(
            f"statement touches bindings on {len(shards)} shards ({placed}); "
            "issue one statement per shard"
        )
    return shards.pop()
