"""The 2PC crash sweep: kill everyone everywhere, leave nothing torn.

Following :mod:`repro.dr.soak`'s discipline, robustness is *swept*, not
sampled: a seeded workload of single- and cross-shard transactions runs
against a cluster whose :class:`WindowKiller` counts every protocol
window — before/after each participant's prepared-record persist,
between votes, before/after the coordinator's decision persist, and
between each DECIDE of the fan-out — and one run is executed per
window, killing whichever node owns it at exactly that instant.  The
cluster is then restarted from the surviving platters and recovered,
and the invariants are checked:

1. **no transaction left in doubt** — after recovery + resolution,
   every shard's prepared set and durable prepared record are empty;
2. **zero half-committed cross-shard state** — each transaction's keys
   are all present (with the right values) or all absent, across all
   its shards;
3. **zero committed-transaction loss** — every commit the client saw
   succeed is fully present after recovery;
4. **presumed abort is safe** — a transaction the client saw fail is
   either fully absent or fully present (the in-doubt window can land
   either way), never split;
5. **liveness** — the recovered cluster commits a fresh cross-shard
   transaction.

Every violated invariant carries a copy-pasteable reproducer
(``python -m repro.shard --seed N --kill K``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..errors import GemStoneError
from .cluster import ShardedGemStone
from .partition import shard_of
from .rpc import CoordinatorKilled, WorkerKilled


class WindowKiller:
    """Counts protocol windows; kills one node at exactly one of them."""

    def __init__(self, kill_at: Optional[int] = None) -> None:
        self.kill_at = kill_at
        self.count = 0
        self.fired: Optional[tuple[str, object]] = None
        self.log: list[tuple[str, object]] = []

    def window(self, name: str, victim) -> None:
        """One protocol window; *victim* is ``"coord"`` or a shard id."""
        if self.fired is not None:
            return  # the dead stay dead; recovery runs unimpeded
        index = self.count
        self.count += 1
        self.log.append((name, victim))
        if index == self.kill_at:
            self.fired = (name, victim)
            if victim == "coord":
                raise CoordinatorKilled(f"coordinator died at {name}")
            raise WorkerKilled(f"shard {victim} died at {name}")


@dataclass
class ShardFailure:
    """One violated invariant, with its reproducer."""

    kill_point: int
    window: str
    victim: str
    invariant: str
    detail: str
    reproducer: str

    def describe(self) -> str:
        return (
            f"kill={self.kill_point} ({self.window} of {self.victim}): "
            f"{self.invariant} — {self.detail}\n"
            f"  reproduce: {self.reproducer}"
        )


@dataclass
class ShardSoakReport:
    """What the crash sweep observed."""

    seed: int
    shards: int
    transactions: int
    total_windows: int  #: protocol windows in the uninterrupted run
    kill_points_run: int = 0
    acked_checked: int = 0
    in_doubt_resolved: int = 0
    liveness_commits: int = 0
    failures: list[ShardFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def digest(self) -> dict:
        """JSON-ready summary for benchmarks and CI."""
        return {
            "seed": self.seed,
            "shards": self.shards,
            "transactions": self.transactions,
            "total_windows": self.total_windows,
            "kill_points_run": self.kill_points_run,
            "acked_checked": self.acked_checked,
            "in_doubt_resolved": self.in_doubt_resolved,
            "liveness_commits": self.liveness_commits,
            "failures": len(self.failures),
            "ok": self.ok,
        }


def _workload(seed: int, shards: int, transactions: int):
    """Seeded transactions, each writing unique keys.

    Key names are unique per transaction, so presence of a key proves
    its transaction landed — atomicity and loss checks need no diffing.
    Key counts vary so the mix exercises both the single-shard fast
    path and genuine cross-shard 2PC.
    """
    rng = random.Random(seed)
    plan = []
    for t in range(transactions):
        keys = [f"t{t}k{i}_{rng.randrange(1000)}" for i in range(rng.randint(1, 3))]
        expected = {key: f"s{seed}_t{t}_{key}" for key in keys}
        statements = [
            f"World!{key} := '{value}'" for key, value in expected.items()
        ]
        plan.append((t, statements, expected))
    return plan


def _reproducer(seed: int, kill: int) -> str:
    return f"python -m repro.shard --seed {seed} --kill {kill}"


def _drive(seed, shards, transactions, kill_at, track_count, track_size):
    """One cluster driven through the workload until the kill (if any)."""
    killer = WindowKiller(kill_at)
    cluster = ShardedGemStone(
        shard_count=shards,
        track_count=track_count,
        track_size=track_size,
        killer=killer,
    )
    session = cluster.login()
    outcomes: dict[int, str] = {}
    for t, statements, _expected in _workload(seed, shards, transactions):
        try:
            for statement in statements:
                session.execute(statement)
            session.commit()
            outcomes[t] = "acked"
        except GemStoneError as error:
            outcomes[t] = type(error).__name__
            try:
                session.abort()
            except GemStoneError:
                pass  # a dead shard's workspace dies with it
    return cluster, killer, outcomes


def _check_recovered(report, kill, killer, cluster, outcomes, workload, seed):
    """Restart from the surviving platters; verify every invariant."""
    window, victim = killer.fired if killer.fired else ("none", "-")

    def fail(invariant: str, detail: str) -> None:
        report.failures.append(
            ShardFailure(
                kill, window, str(victim), invariant, detail,
                _reproducer(seed, kill),
            )
        )

    try:
        recovered = ShardedGemStone(
            worker_disks=[worker.disk for worker in cluster.workers],
            decision_disk=cluster.decision_disk,
            generation=cluster.generation + 1,
        )
        stats = recovered.recover()
    except Exception as error:  # noqa: BLE001 — report, keep sweeping
        fail("recovery", f"restart raised {error!r}")
        return
    report.in_doubt_resolved += stats["resolved"]

    # 1. nothing left in doubt, in memory or durably
    leftover = recovered.in_doubt()
    if leftover:
        fail("in-doubt-resolved", f"still prepared after recovery: {leftover}")
    for worker in recovered.workers:
        if worker._durable_prepared:
            fail(
                "in-doubt-resolved",
                f"shard {worker.shard_id} kept durable prepared records "
                f"{sorted(worker._durable_prepared)}",
            )

    # 2–4. atomicity, zero acked loss, presumed-abort safety
    checker = recovered.login()
    for t, _statements, expected in workload:
        values = {key: checker.execute(f"World!{key}") for key in expected}
        checker.abort()
        landed = [key for key in expected if values[key] == expected[key]]
        stray = [
            key for key in expected
            if values[key] is not None and values[key] != expected[key]
        ]
        if stray:
            fail(
                "atomicity",
                f"txn {t} keys hold foreign values: "
                + ", ".join(f"{k}={values[k]!r}" for k in stray),
            )
        if landed and len(landed) != len(expected):
            fail(
                "atomicity",
                f"txn {t} half-committed: {len(landed)}/{len(expected)} "
                f"keys present ({sorted(landed)})",
            )
        if outcomes.get(t) == "acked":
            report.acked_checked += 1
            if len(landed) != len(expected):
                fail(
                    "zero-acked-loss",
                    f"txn {t} was client-acknowledged but only "
                    f"{len(landed)}/{len(expected)} keys survived recovery",
                )

    # 5. liveness: a fresh cross-shard commit must succeed
    liveness = recovered.login()
    try:
        probe = 0
        placed: set[int] = set()
        statements = []
        while len(placed) < min(2, recovered.shard_count):
            key = f"live{kill}_{probe}"
            shard = shard_of(key, recovered.shard_count)
            if shard not in placed:
                placed.add(shard)
                statements.append(f"World!{key} := 'alive'")
            probe += 1
        for statement in statements:
            liveness.execute(statement)
        liveness.commit()
        report.liveness_commits += 1
    except GemStoneError as error:
        fail(
            "post-recovery-liveness",
            f"fresh cross-shard commit failed: {type(error).__name__}: {error}",
        )


def run_shard_soak(
    seed: int = 2026,
    shards: int = 3,
    transactions: int = 6,
    track_count: int = 1024,
    track_size: int = 512,
    stride: int = 1,
    kill_points: Optional[list[int]] = None,
) -> ShardSoakReport:
    """Sweep every protocol window; verify the invariants at each.

    *stride* subsamples windows (smoke runs); *kill_points* replaces the
    sweep with explicit window indexes — the CLI's ``--kill`` handle.
    """
    workload = _workload(seed, shards, transactions)

    # the uninterrupted run: the window census + a sanity baseline
    clean_cluster, clean_killer, clean_outcomes = _drive(
        seed, shards, transactions, None, track_count, track_size
    )
    total_windows = clean_killer.count
    report = ShardSoakReport(
        seed=seed,
        shards=shards,
        transactions=transactions,
        total_windows=total_windows,
    )
    not_acked = [t for t, outcome in clean_outcomes.items() if outcome != "acked"]
    if not_acked:
        report.failures.append(
            ShardFailure(
                -1, "clean", "-", "clean-run",
                f"transactions {not_acked} failed with nobody killed: "
                f"{ {t: clean_outcomes[t] for t in not_acked} }",
                _reproducer(seed, -1),
            )
        )
        return report

    if kill_points is None:
        sweep = list(range(0, total_windows, stride))
    else:
        bad = [k for k in kill_points if not 0 <= k < total_windows]
        if bad:
            raise ValueError(
                f"kill points {bad} outside the run's {total_windows} windows"
            )
        sweep = sorted(set(kill_points))

    for kill in sweep:
        report.kill_points_run += 1
        cluster, killer, outcomes = _drive(
            seed, shards, transactions, kill, track_count, track_size
        )
        if killer.fired is None:
            report.failures.append(
                ShardFailure(
                    kill, "none", "-", "kill-armed",
                    "the run finished without reaching its kill window",
                    _reproducer(seed, kill),
                )
            )
            continue
        _check_recovered(
            report, kill, killer, cluster, outcomes, workload, seed
        )
    return report
