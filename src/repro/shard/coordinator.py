"""The presumed-abort two-phase commit coordinator.

The protocol, window by window (each a soak kill point):

1. **PREPARE fan-out** — each participant validates, durably records
   its prepared workspace, and answers VOTE.  A no-vote, a typed error,
   or a silent participant (the channel's deadline expires) aborts the
   transaction; nothing was logged, so the abort needs no durability —
   absence *is* the abort record (presumed abort).
2. **Decision persist** — with every vote yes, the COMMIT decision and
   its read-write participants are forced to the decision log's disk
   via safe group writes.  This single root flip is the transaction's
   atomic commit point: before it, a crashed coordinator resolves every
   in-doubt participant to abort; after it, to commit.
3. **DECIDE fan-out** — participants apply (or drop) their prepared
   workspaces and acknowledge.  Read-only voters are skipped (they hold
   nothing).  A participant dead during fan-out keeps the decision
   pending; its restart RESOLVEs and applies, after which
   :meth:`settle` forgets the entry.

Resolution is served on dedicated per-worker links: a restarted
participant sends RESOLVE(gtid) and the answer is simply "is the gtid
in the log" — commit if yes, abort presumed if no.
"""

from __future__ import annotations

from typing import Optional

from ..errors import (
    CoordinatorUnavailable,
    GemStoneError,
    TransactionConflict,
    TransactionInDoubt,
)
from ..executor import protocol
from ..executor.protocol import Frame, FrameType
from .decisions import DecisionLog
from .rpc import CoordinatorKilled, ReplayServer, RequestChannel


class TwoPhaseCoordinator:
    """Drives cross-shard commits against the durable decision log."""

    def __init__(self, decision_log: DecisionLog, killer=None, obs=None) -> None:
        self.log = decision_log
        self.killer = killer
        self.obs = obs
        self.alive = True
        #: shard id -> RequestChannel for 2PC control frames
        self.channels: dict[int, RequestChannel] = {}
        self.commits = 0
        self.aborts = 0
        self.resolutions = 0
        self.resolution_server = ReplayServer(self._handle_resolution)

    def attach(self, shard_id: int, channel: RequestChannel) -> None:
        """Register the 2PC control channel for one participant."""
        self.channels[shard_id] = channel

    def _window(self, name: str) -> None:
        if self.killer is not None:
            self.killer.window(name, "coord")

    def _inc(self, counter: str) -> None:
        if self.obs is not None:
            self.obs.registry.inc(counter)

    # -- the commit protocol -------------------------------------------------

    def commit(self, gtid: str, participants: list[int]) -> bool:
        """Run 2PC for *gtid* across *participants*.

        Returns True on commit.  Raises
        :class:`~repro.errors.TransactionConflict` when a participant
        votes no (the others are told to abort), or the participant
        channel's unavailability error when a shard goes silent before
        the decision (also an abort — nothing was logged).
        """
        if not self.alive:
            raise CoordinatorUnavailable("coordinator is down")
        votes: dict[int, bool] = {}  # shard -> read_only
        for shard_id in participants:
            try:
                reply = self.channels[shard_id].request(
                    protocol.encode_prepare(gtid)
                )
            except CoordinatorKilled:
                raise
            except GemStoneError:
                self._abort_prepared(gtid, votes)
                raise
            self._window("coord.between_votes")
            if reply.type is not FrameType.VOTE or not reply.fields["commit"]:
                self._abort_prepared(gtid, votes)
                raise TransactionConflict(
                    f"shard {shard_id} voted no on {gtid}"
                )
            votes[shard_id] = reply.fields["read_only"]
        writers = [shard for shard, read_only in votes.items() if not read_only]
        if not writers:
            # every participant was read-only: nothing to decide, log,
            # or fan out — the transaction is trivially committed
            self.commits += 1
            self._inc("shard.coordinator_commits")
            return True
        self._window("coord.before_decision_persist")
        self.log.record_commit(gtid, writers)
        self._window("coord.after_decision_persist")
        self.commits += 1
        self._inc("shard.coordinator_commits")
        self._fan_out_decide(gtid, writers)
        return True

    def _abort_prepared(self, gtid: str, votes: dict[int, bool]) -> None:
        """Phase-two abort for every already-prepared participant.

        Best effort: an unreachable participant stays prepared and will
        RESOLVE to abort after its restart (the gtid is not in the log).
        """
        self.aborts += 1
        self._inc("shard.coordinator_aborts")
        for shard_id, read_only in votes.items():
            if read_only:
                continue
            try:
                self.channels[shard_id].request(
                    protocol.encode_decide(gtid, False)
                )
            except GemStoneError:
                pass  # presumed abort covers it

    def _fan_out_decide(self, gtid: str, writers: list[int]) -> None:
        """Deliver DECIDE commit; forget the entry once everyone acked."""
        acked = 0
        for shard_id in writers:
            self._window("coord.mid_decide")
            try:
                reply = self.channels[shard_id].request(
                    protocol.encode_decide(gtid, True)
                )
            except CoordinatorKilled:
                raise
            except GemStoneError:
                continue  # dead participant: the entry stays pending
            if reply.type is FrameType.DECIDE_ACK:
                acked += 1
        if acked == len(writers):
            self.log.forget(gtid)

    def settle(self) -> int:
        """Re-deliver DECIDE for every pending logged commit (restart).

        Returns how many entries became fully acknowledged (and were
        forgotten).  Entries whose participants are still unreachable
        remain pending for a later settle.
        """
        settled = 0
        for gtid, writers in sorted(self.log.pending().items()):
            before = self.log.decision(gtid)
            self._fan_out_decide(gtid, list(writers))
            if before and not self.log.decision(gtid):
                settled += 1
        return settled

    # -- resolution service ----------------------------------------------------

    def serve_resolution(self, link_end) -> None:
        """Answer RESOLVE frames from restarting participants."""
        if not self.alive:
            return
        self.resolution_server.serve(link_end)

    def _handle_resolution(self, frame: Frame) -> bytes:
        if frame.type is not FrameType.RESOLVE:
            return protocol.encode_error(
                "ProtocolError", f"unexpected frame {frame.type.name}"
            )
        gtid = frame.fields["gtid"]
        self.resolutions += 1
        self._inc("shard.in_doubt_resolutions")
        return protocol.encode_resolved(gtid, self.log.decision(gtid))

    # -- reporting --------------------------------------------------------------

    def report(self) -> dict:
        """Coordinator counters for observability and the soak digest."""
        report = {
            "alive": self.alive,
            "commits": self.commits,
            "aborts": self.aborts,
            "resolutions": self.resolutions,
        }
        report.update(self.log.report())
        return report


def in_doubt_error(gtid: str) -> TransactionInDoubt:
    """The client-facing verdict when the coordinator dies mid-protocol."""
    return TransactionInDoubt(
        f"transaction {gtid} lost its coordinator between prepare and "
        "decide; its outcome awaits the decision log"
    )
