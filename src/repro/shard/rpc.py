"""Request/response plumbing for shard links.

Both sides reuse the Executor's SEQ envelope — checksummed,
sequence-numbered, exactly-once — so shard traffic inherits the whole
fault model (droppable, duplicable, truncatable, wrappable in
:class:`~repro.faults.link.FaultyLink`).  Two additions matter here:

* **channels** — a worker link carries two logical streams (session
  statements and 2PC control); each
  :class:`RequestChannel` stamps its channel id into the envelope so
  the peer's replay cache keys on ``(channel, seq)`` and the streams
  cannot collide after a reconnect.
* **deadlines** — every request carries ``clock.now + deadline`` and
  the sender stops retrying once that instant passes, raising the typed
  retryable error it was built with
  (:class:`~repro.errors.ShardUnavailable` or
  :class:`~repro.errors.CoordinatorUnavailable`).  A dead peer costs a
  bounded amount of simulated time, never a wedge — which is what lets
  a coordinator presume abort and a participant stay safely in doubt.

:class:`ReplayServer` is the receiving half: a pump in the Executor's
style with a ``(channel, seq)`` replay cache, dispatching decoded frames
to a handler.  Kill signals (the soak's :class:`WorkerKilled` /
:class:`CoordinatorKilled`) are deliberately *not* GemStone errors, so
they pass straight through the dispatch guard: a dead process does not
answer.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import GemStoneError, LinkCorruption, ProtocolError, RetryableError
from ..executor import protocol
from ..executor.protocol import Frame, FrameType
from ..executor.replay import ReplayWindow

#: replay-cache entries a server keeps per link
_REPLAY_CACHE_SIZE = 64


class WorkerKilled(Exception):
    """The soak's kill signal for a shard worker — not a GemStoneError,
    so no retry or error-frame layer can swallow it: the worker is gone
    and its link simply stops answering."""


class CoordinatorKilled(Exception):
    """The soak's kill signal for the commit coordinator."""


class RequestChannel:
    """One logical request stream over a link end.

    *pump* drains the peer after each send (the in-process links are
    synchronous).  *clock* is the deterministic
    :class:`~repro.faults.plan.FaultClock` all timeouts are charged to;
    *deadline* is the per-request time budget and *retry_delay* the
    simulated units each retry costs.  ERROR replies are rehydrated into
    their typed exceptions and raised.
    """

    def __init__(
        self,
        link,
        pump: Callable[[], None],
        clock,
        channel: int = 0,
        deadline: float = 10.0,
        retry_delay: float = 1.0,
        max_attempts: int = 5,
        unavailable: type = None,
        policy=None,
    ) -> None:
        from ..errors import ShardUnavailable

        self.link = link
        self.pump = pump
        self.clock = clock
        self.channel = channel
        self.deadline = deadline
        self.retry_delay = retry_delay
        self.max_attempts = max_attempts
        #: optional :class:`repro.govern.CommitPolicy` — when set, retry
        #: pacing uses its seeded jittered exponential backoff instead
        #: of the flat *retry_delay*, so a herd of channels hammering a
        #: silent peer decorrelates exactly like contending committers
        self.policy = policy
        self.unavailable = unavailable or ShardUnavailable
        self.retries = 0
        self.timeouts = 0
        self._seq = 0

    def request(self, inner: bytes) -> Frame:
        """One exactly-once request; the matching non-ERROR reply frame.

        Raises the channel's *unavailable* error when the peer never
        answers inside the deadline/attempt budget — a
        :class:`~repro.errors.RetryableError`, carrying ``retry_after``.
        """
        self._seq += 1
        deadline = self.clock.now + self.deadline
        envelope = protocol.encode_seq(
            self._seq, inner, deadline=deadline, channel=self.channel
        )
        for attempt in range(self.max_attempts):
            if attempt:
                self.retries += 1
                self.clock.advance(
                    self.policy.backoff_delay(attempt, False)
                    if self.policy is not None else self.retry_delay
                )
                if self.clock.now > deadline:
                    break
            try:
                self.link.send(envelope)
            except ProtocolError:
                break  # the link itself is closed: the peer is gone
            self.pump()
            reply = self._receive_matching(self._seq)
            if reply is None:
                continue  # lost or damaged somewhere: resend
            if reply.type is FrameType.ERROR:
                raise protocol.rehydrate_error(
                    reply.fields["error_class"], reply.fields["message"]
                )
            return reply
        self.timeouts += 1
        error = self.unavailable(
            f"no reply to channel {self.channel} seq {self._seq} "
            f"within {self.deadline} units"
        )
        if isinstance(error, RetryableError):
            error.retry_after = self.retry_delay
        raise error

    def _receive_matching(self, seq: int) -> Optional[Frame]:
        while True:
            try:
                raw = self.link.receive()
            except ProtocolError:
                return None  # truncated tail on a dying link
            if raw is None:
                return None
            try:
                frame = protocol.decode_frame(raw)
            except ProtocolError:
                continue  # damaged response: keep draining
            if frame.seq == seq and frame.channel == self.channel:
                return frame
            # a replayed response to an earlier seq, or another
            # channel's stray reply: discard and keep draining


class ReplayServer:
    """The serving half: decode, replay-cache, dispatch, answer.

    *handler* maps a decoded :class:`Frame` to response bytes; GemStone
    errors it raises become ERROR frames.  Kill signals and other
    non-GemStone exceptions propagate — the caller models a crash by
    letting them escape the serve loop.
    """

    def __init__(self, handler: Callable[[Frame], bytes]) -> None:
        self.handler = handler
        self.frames_served = 0
        self.corrupt_dropped = 0
        self._replay = ReplayWindow(_REPLAY_CACHE_SIZE)

    @property
    def replays(self) -> int:
        """Duplicates answered from the replay window, not re-applied."""
        return self._replay.replays

    def serve(self, link_end) -> None:
        """Drain every pending frame on *link_end*, answering each."""
        while True:
            try:
                raw = link_end.receive()
            except ProtocolError:
                return  # truncated tail on a dying link
            if raw is None:
                return
            try:
                frame = protocol.decode_frame(raw)
            except LinkCorruption:
                self.corrupt_dropped += 1
                continue  # damaged in transit; the sender retries
            except ProtocolError:
                continue
            response = self._respond(frame)
            if frame.seq is not None:
                response = protocol.encode_seq(
                    frame.seq, response, channel=frame.channel
                )
            link_end.send(response)
            self.frames_served += 1

    def _respond(self, frame: Frame) -> bytes:
        cached = self._replay.lookup(frame.channel, frame.seq)
        if cached is not None:
            return cached  # resend: replay, don't re-apply
        try:
            response = self.handler(frame)
        except GemStoneError as error:
            response = protocol.encode_error(type(error).__name__, str(error))
        if frame.seq is not None:
            self._replay.store(frame.channel, frame.seq, response)
        return response
