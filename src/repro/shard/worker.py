"""A shard worker: one GemStone owning one partition of the object space.

The worker is the paper's whole Session-Manager-plus-Commit-Manager
stack, shrunk to a partition: it executes the statements routed to it
inside its own OPAL engine and commits locally through its own safe
group writes.  Every global transaction gets its **own worker-side
GemSession** (created on first SHARD_EXEC, retired on commit/abort), so
concurrent cluster sessions are isolated exactly like concurrent local
sessions — the OCC validation and contention machinery apply unchanged.

On top of that the worker is a **2PC participant**:

* ``PREPARE`` validates the transaction's session with the OCC manager
  and detaches it as a :class:`~repro.concurrency.transactions.\
PreparedTransaction` (a lock every later validation respects), then
  durably records the transaction's statements on the shard's system
  object *before* voting yes — a restarted worker replays that record,
  re-executes, re-prepares (re-acquiring its locks ahead of any new
  traffic) and asks the coordinator to RESOLVE.
* ``DECIDE commit`` applies the prepared workspace and clears the
  durable prepared record in the *same* safe group write, so no crash
  can leave the record and the data disagreeing; ``DECIDE abort``
  drops the workspace (and rolls back an unprepared transaction's live
  session, which doubles as the client's plain abort).

Crash windows (the soak's kill points) sit exactly where the protocol
state changes hands: before/after the prepared-record persist and
before/after the decision apply.
"""

from __future__ import annotations

import json

from ..db import GemStone
from ..errors import TransactionConflict
from ..executor import protocol
from ..executor.protocol import Frame, FrameType
from ..storage.disk import DiskGeometry, SimulatedDisk
from .rpc import ReplayServer

#: system-object binding holding the durable prepared-transaction record
PREPARED_KEY = "prepared_2pc"


class ShardWorker:
    """One shard: a private GemStone plus the 2PC participant protocol."""

    def __init__(
        self,
        shard_id: int,
        disk=None,
        track_count: int = 1024,
        track_size: int = 512,
        killer=None,
        fresh: bool = False,
    ) -> None:
        self.shard_id = shard_id
        if disk is None:
            disk = SimulatedDisk(
                DiskGeometry(track_count=track_count, track_size=track_size)
            )
            self.db = GemStone.create(disk=disk)
        elif fresh:
            # a caller-supplied but unformatted platter (e.g. a brand-new
            # FileDisk in a worker process's own directory)
            self.db = GemStone.create(disk=disk)
        else:
            self.db = GemStone.open(disk)
        self.disk = disk
        self.killer = killer
        self.alive = True
        #: gtid -> the worker-side session running that transaction
        self._sessions: dict[str, object] = {}
        #: gtid -> statements executed into the live workspace (pre-prepare)
        self._pending: dict[str, list[str]] = {}
        #: gtid -> statements, mirrored durably on the system object
        self._durable_prepared: dict[str, list[str]] = {}
        self.server = ReplayServer(self._handle)

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def reopen(cls, shard_id: int, disk, killer=None) -> "ShardWorker":
        """Restart a crashed worker from its platter.

        Recovery re-acquires every in-doubt transaction's locks *before*
        the worker serves any new traffic: the durable prepared record
        is read back, each transaction's statements are re-executed and
        re-prepared, and the caller then RESOLVEs each gtid against the
        coordinator's decision log.
        """
        worker = cls(shard_id, disk=disk, killer=killer)
        record = worker._system().value_at(PREPARED_KEY)
        if isinstance(record, str) and record:
            worker._durable_prepared = {
                gtid: list(statements)
                for gtid, statements in json.loads(record).items()
            }
        tm = worker.db.transaction_manager
        for gtid in sorted(worker._durable_prepared):
            session = worker.db.login()
            for statement in worker._durable_prepared[gtid]:
                session.execute(statement)
            tm.prepare(session.session, gtid)
            session.close()
        return worker

    def in_doubt(self) -> list[str]:
        """Gtids this worker holds prepared, awaiting a decision."""
        return self.db.transaction_manager.in_doubt()

    # -- serving ------------------------------------------------------------

    def serve(self, link_end) -> None:
        """Drain the worker's link; a dead worker stops answering."""
        if not self.alive:
            return
        self.server.serve(link_end)

    def _window(self, name: str) -> None:
        if self.killer is not None:
            self.killer.window(name, self.shard_id)

    def _handle(self, frame: Frame) -> bytes:
        if frame.type is FrameType.SHARD_EXEC:
            return self._exec(frame.fields["gtid"], frame.fields["source"])
        if frame.type is FrameType.SHARD_COMMIT:
            return self._local_commit(frame.fields["gtid"])
        if frame.type is FrameType.PREPARE:
            return self._prepare(frame.fields["gtid"])
        if frame.type is FrameType.DECIDE:
            return self._decide(frame.fields["gtid"], frame.fields["commit"])
        return protocol.encode_error(
            "ProtocolError", f"unexpected frame {frame.type.name}"
        )

    # -- statements and the single-shard fast path ---------------------------

    def _session_for(self, gtid: str):
        session = self._sessions.get(gtid)
        if session is None:
            session = self.db.login()
            self._sessions[gtid] = session
        return session

    def _retire(self, gtid: str) -> None:
        session = self._sessions.pop(gtid, None)
        if session is not None:
            session.close()
        self._pending.pop(gtid, None)

    def _exec(self, gtid: str, source: str) -> bytes:
        session = self._session_for(gtid)
        value = session.execute(source)
        self._pending.setdefault(gtid, []).append(source)
        return protocol.encode_result(value, session.display(value))

    def _local_commit(self, gtid: str) -> bytes:
        """A transaction whose statements all landed here commits locally
        — one participant needs no coordinator, no decision log, no
        second phase (the classic single-shard fast path)."""
        session = self._session_for(gtid)
        try:
            tx_time = session.commit()  # conflicts raise → ERROR frame
        finally:
            self._retire(gtid)
        return protocol.encode_committed(tx_time)

    # -- the participant protocol --------------------------------------------

    def _prepare(self, gtid: str) -> bytes:
        tm = self.db.transaction_manager
        session = self._sessions.get(gtid)
        if session is None:
            if gtid in tm.in_doubt():
                return protocol.encode_vote(gtid, True)  # idempotent
            # nothing ever executed here for this gtid: hold no locks
            return protocol.encode_vote(gtid, True, read_only=True)
        try:
            prepared = tm.prepare(session.session, gtid)
        except TransactionConflict:
            self._retire(gtid)
            return protocol.encode_vote(gtid, False)
        if prepared is None:
            # read-only participant: vote yes, skip phase two entirely
            self._retire(gtid)
            return protocol.encode_vote(gtid, True, read_only=True)
        self._window("prepare.before_persist")
        statements = self._pending.pop(gtid, [])
        self._durable_prepared[gtid] = statements
        self._persist_prepared()
        self._window("prepare.after_persist")
        self._retire(gtid)
        return protocol.encode_vote(gtid, True)

    def _decide(self, gtid: str, commit: bool) -> bytes:
        tm = self.db.transaction_manager
        if commit:
            if gtid in tm.in_doubt():
                self._window("decide.before_apply")
                tm.commit_prepared(gtid, extra_dirty=self._clearing(gtid))
                self._durable_prepared.pop(gtid, None)
                self._window("decide.after_apply")
            # else: already applied (a resolve or replay raced the
            # coordinator's retry) — acknowledge idempotently
        else:
            if tm.abort_prepared(gtid):
                self._durable_prepared.pop(gtid, None)
                self._persist_prepared()
            else:
                # never prepared: roll back the live workspace
                self._retire(gtid)
        return protocol.encode_decide_ack(
            gtid, self.db.store.commit_manager.current_epoch
        )

    def resolve_with(self, channel) -> int:
        """Ask the coordinator about every in-doubt gtid; apply answers.

        *channel* is a :class:`~repro.shard.rpc.RequestChannel` to the
        coordinator's resolution server.  Returns how many transactions
        were resolved; raises
        :class:`~repro.errors.CoordinatorUnavailable` (leaving the rest
        in doubt, still locked) when the coordinator is down.
        """
        resolved = 0
        for gtid in self.in_doubt():
            reply = channel.request(protocol.encode_resolve(gtid))
            self._decide(gtid, reply.fields["commit"])
            resolved += 1
        return resolved

    # -- durable prepared record ----------------------------------------------

    def _system(self):
        return self.db.store.object(self.db.store.catalog["system"])

    def _clearing(self, gtid: str):
        """An ``extra_dirty`` hook: rebind the prepared record *without*
        *gtid* at the commit's own tx_time, joining its group write."""

        def bind(tx_time: int) -> list:
            remaining = {
                key: value
                for key, value in self._durable_prepared.items()
                if key != gtid
            }
            system = self._system()
            system.bind(PREPARED_KEY, json.dumps(remaining), tx_time)
            return [system]

        return bind

    def _persist_prepared(self) -> None:
        tm = self.db.transaction_manager
        tx_time = tm.clock.assign()
        system = self._system()
        system.bind(PREPARED_KEY, json.dumps(self._durable_prepared), tx_time)
        self.db.store.persist([system], tx_time)

    # -- reporting -------------------------------------------------------------

    def report(self) -> dict:
        """Per-shard counters for observability and the soak digest."""
        stats = self.db.transaction_manager.stats
        return {
            "shard_id": self.shard_id,
            "alive": self.alive,
            "commits": stats.commits,
            "aborts": stats.aborts,
            "prepares": stats.prepares,
            "prepared_commits": stats.prepared_commits,
            "prepared_aborts": stats.prepared_aborts,
            "live_sessions": len(self._sessions),
            "in_doubt": len(self.in_doubt()),
            "epoch": self.db.store.commit_manager.current_epoch,
        }
