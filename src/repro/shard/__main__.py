"""CLI reproducer entry point: ``python -m repro.shard --seed N --kill K``.

Runs the seeded 2PC crash sweep (:func:`repro.shard.soak.run_shard_soak`)
and prints its digest; every violated invariant prints a copy-pasteable
reproducer, and ``--kill K`` replays exactly one protocol window — the
same contract as ``python -m repro.dr`` and ``python -m repro.check``.
Exit status 0 when every invariant holds, 1 otherwise, so the reproducer
doubles as a regression guard in shell pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys

from .soak import run_shard_soak


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard",
        description="2PC crash sweep (kill the coordinator and every "
        "participant at every protocol window; prove atomicity).",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--transactions", type=int, default=6)
    parser.add_argument(
        "--kill", type=int, default=None,
        help="replay one kill point: the protocol-window index the sweep "
        "numbers (default: sweep every window)",
    )
    parser.add_argument("--stride", type=int, default=1,
                        help="subsample kill windows (smoke runs)")
    parser.add_argument("--json", action="store_true",
                        help="print the digest as JSON")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        report = run_shard_soak(
            seed=args.seed,
            shards=args.shards,
            transactions=args.transactions,
            stride=args.stride,
            kill_points=[args.kill] if args.kill is not None else None,
        )
    except ValueError as error:
        print(f"error: {error}")
        return 2
    if args.json:
        print(json.dumps(report.digest(), indent=2, sort_keys=True))
    else:
        digest = report.digest()
        print(
            f"shard soak: seed={digest['seed']} "
            f"shards={digest['shards']} "
            f"windows={digest['total_windows']} "
            f"kills={digest['kill_points_run']} "
            f"acked_checked={digest['acked_checked']} "
            f"resolved={digest['in_doubt_resolved']} "
            f"liveness={digest['liveness_commits']}"
        )
    for failure in report.failures:
        print(failure.describe())
    if report.ok:
        print("ok: zero acked loss, zero half-committed state, "
              "nothing left in doubt")
        return 0
    print(f"FAILED: {len(report.failures)} invariant violations")
    return 1


if __name__ == "__main__":
    sys.exit(main())
