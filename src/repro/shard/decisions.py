"""The coordinator's durable decision log — presumed abort.

Classic presumed-abort 2PC logging discipline:

* Only **commit** decisions are forced to disk, *before* any DECIDE is
  sent.  An abort is never logged: a participant asking about a gtid
  the log does not know gets the answer ABORT, which is exactly right
  whether the coordinator aborted deliberately or crashed before
  deciding.
* Once every read-write participant has acknowledged its DECIDE, the
  entry is **forgotten** (removed durably) — no participant can ever
  ask again, so the log stays O(in-flight), not O(history).

Durability reuses the Commit Manager's safe group writes on a small
dedicated disk: the decision set is serialized, cut into freshly
allocated tracks, and published by the atomic root flip — a crash
during :meth:`record_commit` leaves the previous decision set intact,
so the "before/after decision persist" crash windows in the soak are
exactly the two sides of one root-track write.
"""

from __future__ import annotations

import struct

from ..errors import RecoveryError
from ..storage.codec import Reader, Writer
from ..storage.commit import CommitManager
from ..storage.tracks import TrackManager


class DecisionLog:
    """Durable gtid → committed-participants map with safe writes."""

    def __init__(self, disk) -> None:
        self.disk = disk
        self.tracks = TrackManager(disk)
        self.commit_manager = CommitManager(self.tracks)
        #: gtid -> tuple of read-write participant shard ids
        self._decisions: dict[str, tuple[int, ...]] = {}
        self._data_tracks: list[int] = []
        self.commits_recorded = 0
        self.forgotten = 0

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, disk) -> "DecisionLog":
        """Format a fresh (empty) decision log on *disk*."""
        log = cls(disk)
        log._persist()
        return log

    @classmethod
    def open(cls, disk) -> "DecisionLog":
        """Recover the decision set from *disk* (the restart path)."""
        log = cls(disk)
        fields = log.commit_manager.recover()
        data_tracks = list(fields["catalog_tracks"])
        log.tracks.mark_allocated(data_tracks)
        chunks = [log.tracks.read(track) for track in data_tracks]
        framed = b"".join(chunks)
        if len(framed) < 4:
            raise RecoveryError("decision log payload truncated")
        (length,) = struct.unpack_from("<I", framed, 0)
        log._decisions = log._decode(framed[4 : 4 + length])
        log._data_tracks = data_tracks
        return log

    # -- the protocol surface -----------------------------------------------

    def record_commit(self, gtid: str, participants: list[int]) -> None:
        """Force the COMMIT decision for *gtid* to disk (phase-two gate)."""
        self._decisions[gtid] = tuple(sorted(participants))
        self._persist()
        self.commits_recorded += 1

    def forget(self, gtid: str) -> None:
        """Durably drop a fully acknowledged commit decision."""
        if self._decisions.pop(gtid, None) is not None:
            self._persist()
            self.forgotten += 1

    def decision(self, gtid: str) -> bool:
        """The RESOLVE answer: True = commit; absence presumes abort."""
        return gtid in self._decisions

    def pending(self) -> dict[str, tuple[int, ...]]:
        """Commit decisions not yet fully acknowledged (restart work)."""
        return dict(self._decisions)

    # -- serialization ------------------------------------------------------

    def _encode(self) -> bytes:
        writer = Writer()
        writer.uvarint(len(self._decisions))
        for gtid in sorted(self._decisions):
            writer.string(gtid)
            participants = self._decisions[gtid]
            writer.uvarint(len(participants))
            for shard in participants:
                writer.uvarint(shard)
        return writer.getvalue()

    @staticmethod
    def _decode(payload: bytes) -> dict[str, tuple[int, ...]]:
        reader = Reader(payload)
        decisions: dict[str, tuple[int, ...]] = {}
        for _ in range(reader.uvarint()):
            gtid = reader.string()
            count = reader.uvarint()
            decisions[gtid] = tuple(reader.uvarint() for _ in range(count))
        return decisions

    def _persist(self) -> None:
        payload = self._encode()
        framed = struct.pack("<I", len(payload)) + payload
        size = self.tracks.track_size
        chunks = [
            framed[i : i + size] for i in range(0, len(framed), size)
        ] or [b"\x00\x00\x00\x00"]
        new_tracks = self.tracks.allocate(len(chunks))
        self.commit_manager.commit(
            dict(zip(new_tracks, chunks)),
            {
                "last_tx_time": 0,
                "next_oid": 0,
                "alias_counter": 0,
                "object_table_tracks": [],
                "allocation_tracks": [],
                "catalog_tracks": list(new_tracks),
            },
        )
        if self._data_tracks:
            self.tracks.release(self._data_tracks)
        self._data_tracks = new_tracks

    def report(self) -> dict:
        """Counters for observability and the soak digest."""
        return {
            "pending": len(self._decisions),
            "commits_recorded": self.commits_recorded,
            "forgotten": self.forgotten,
            "epoch": self.commit_manager.current_epoch,
        }
