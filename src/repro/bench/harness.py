"""Benchmark harness: tables, series and timing helpers.

Every experiment module in ``benchmarks/`` uses these to print the rows
and series it reproduces (EXPERIMENTS.md records the outcomes); the
pytest-benchmark fixtures handle the statistical timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence


class Table:
    """A printable, aligned results table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []
        self.notes: list[str] = []

    def add(self, *values: Any) -> None:
        """Append one row (values are stringified)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append([_format(value) for value in values])

    def note(self, text: str) -> None:
        """Attach a footnote printed under the table."""
        self.notes.append(text)

    def render(self) -> str:
        """The formatted table."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the table with surrounding blank lines."""
        print()
        print(self.render())
        print()


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:,.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class Timing:
    """Result of a :func:`stopwatch` run."""

    seconds: float
    result: Any

    @property
    def millis(self) -> float:
        return self.seconds * 1e3

    @property
    def micros(self) -> float:
        return self.seconds * 1e6


def stopwatch(fn: Callable[[], Any], repeat: int = 1) -> Timing:
    """Best-of-*repeat* wall time of *fn* (for printed tables).

    pytest-benchmark does the statistically careful timing; this is the
    quick measurement the harness prints alongside reproduced rows.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return Timing(best, result)


def ratio(a: float, b: float) -> str:
    """A human ``N.Nx`` ratio, guarding division by zero."""
    if b == 0:
        return "∞"
    return f"{a / b:.1f}x"


def observability_metrics(database: Any, slow: int = 5) -> dict[str, Any]:
    """The observability sections a bench's metrics dict embeds.

    These are the *same* names ``GemStone.observability()`` publishes
    (``docs/observability.md`` has the catalogue), so
    ``BENCH_results.json`` and a live snapshot can be diffed key for
    key.  The span ring is dropped — raw spans are run-local noise in a
    trajectory file — but the span histograms survive via ``counters``.
    """
    snap = database.observability(slow=slow, spans=0)
    return {
        "transactions": snap["transactions"],
        "caches": snap["caches"],
        "governance": snap["governance"],
        "counters": snap["counters"],
        "slow_queries": snap["slow_queries"],
    }
