"""Workload generators shared by the experiment benchmarks.

Each generator builds a deterministic dataset shaped like the paper's
examples (the Acme fragment of section 5.1, the Figure 1 history, tree-
structured engineering data) scaled by parameters, so benches sweep
sizes while keeping the paper's structure.
"""

from __future__ import annotations

import random
from ..core.objects import GemObject
from ..db import GemSession, GemStone


def acme_fragment(store, n_employees: int, n_departments: int,
                  seed: int = 84) -> tuple[GemObject, GemObject]:
    """A scaled section-5.1 database: (employees, departments) sets.

    Departments get budgets; employees get salaries, nested Name objects
    and 1-2 department memberships; roughly 1 in 10 employees earns more
    than 10% of a department budget, so the paper's query selects a
    stable fraction.
    """
    rng = random.Random(seed)
    departments = store.instantiate("Object")
    dept_names = []
    for index in range(n_departments):
        name = f"D{index}"
        dept_names.append(name)
        managers = store.instantiate("Object")
        for m in range(2):
            store.bind(managers, store.new_alias(), f"mgr-{index}-{m}")
        dept = store.instantiate(
            "Object",
            Name=name,
            Budget=rng.randrange(100_000, 300_000),
            Managers=managers,
        )
        store.bind(departments, store.new_alias(), dept)

    employees = store.instantiate("Object")
    for index in range(n_employees):
        name = store.instantiate(
            "Object", First=f"F{index}", Last=f"L{index}"
        )
        depts = store.instantiate("Object")
        for dept_name in rng.sample(dept_names, k=min(2, len(dept_names))):
            store.bind(depts, store.new_alias(), dept_name)
        salary = rng.randrange(15_000, 35_000)
        if index % 10 == 0:
            salary = rng.randrange(20_000, 40_000)
        employee = store.instantiate(
            "Object", Name=name, Salary=salary, Depts=depts
        )
        store.bind(employees, store.new_alias(), employee)
    return employees, departments


def figure1_database(db: GemStone) -> GemSession:
    """Replay the Figure 1 event script at exact times 2, 5, 8, 9."""
    session = db.login()
    session.execute("""
        | acme ayn |
        acme := Object new.  ayn := Object new.
        World!'Acme Corp' := acme.
        acme!1821 := ayn.
        ayn!name := 'Ayn Rand'.  ayn!city := 'Portland'
    """)
    assert session.commit() == 2
    session.execute("""
        | milton |
        milton := Object new.
        milton!name := 'Milton Friedman'.  milton!city := 'Seattle'.
        World!'Acme Corp'!president := World!'Acme Corp'!1821.
        World!milton := milton
    """)
    db.transaction_manager.clock.advance_to(4)
    assert session.commit() == 5
    session.execute("""
        World!'Acme Corp'!president := World!milton.
        World!milton!city := 'Portland'.
        (World!'Acme Corp') removeKey: 1821
    """)
    db.transaction_manager.clock.advance_to(7)
    assert session.commit() == 8
    session.execute(
        "(World!'Acme Corp'!president @ 7) at: 'city' put: 'San Diego'"
    )
    assert session.commit() == 9
    return session


def employee_database(db: GemStone, count: int, seed: int = 7) -> GemObject:
    """Commit *count* Employee objects under ``World!employees``."""
    rng = random.Random(seed)
    session = db.login()
    if not session.session.has_class("Employee"):
        session.execute(
            "Object subclass: #Employee instVarNames: #(name salary)"
        )
    emps = session.new("Bag")
    for index in range(count):
        employee = session.new(
            "Employee", name=f"emp{index}", salary=rng.randrange(10_000, 100_000)
        )
        session.session.bind(emps, session.session.new_alias(), employee)
    session.assign("employees", emps)
    session.commit()
    session.close()
    return db.store.object(emps.oid)  # the canonical committed instance


def tree_database(db: GemStone, depth: int, fanout: int,
                  payload: int = 48) -> GemObject:
    """A strict tree committed in one transaction (clusters naturally)."""
    session = db.login()

    def grow(node, level: int) -> None:
        if level == depth:
            return
        for index in range(fanout):
            child = session.new("Object", payload="x" * payload)
            session.session.bind(node, f"c{index}", child)
            grow(child, level + 1)

    root = session.new("Object", payload="x" * payload)
    grow(root, 0)
    session.assign("tree", root)
    session.commit()
    session.close()
    return db.store.object(root.oid)


def scattered_tree_database(db: GemStone, depth: int, fanout: int,
                            payload: int = 48, seed: int = 3) -> GemObject:
    """The same tree, but committed one node per transaction in a
    shuffled order, defeating the Linker's parent-first clustering."""
    rng = random.Random(seed)
    session = db.login()
    root = session.new("Object", payload="x" * payload)
    session.assign("tree", root)
    session.commit()

    nodes_by_level: list[list[GemObject]] = [[root]]
    for _level in range(depth):
        next_level: list[GemObject] = []
        for node in nodes_by_level[-1]:
            for index in range(fanout):
                child = session.new("Object", payload="x" * payload)
                session.session.bind(node, f"c{index}", child)
                session.commit()  # one node per commit: no co-packing
                next_level.append(child)
        rng.shuffle(next_level)  # and no level-order locality either
        nodes_by_level.append(next_level)
    session.close()
    return db.store.object(root.oid)


def traverse_tree(store, root: GemObject, fanout: int) -> int:
    """Depth-first traversal touching every payload; returns node count."""
    count = 0
    stack = [root]
    while stack:
        node = store.deref(stack.pop())
        store.value_at(node, "payload")
        count += 1
        for index in range(fanout):
            child = store.value_at(node, f"c{index}")
            from ..core.history import MISSING

            if child is not MISSING and child is not None:
                stack.append(child)
    return count


def history_churn(db: GemStone, updates: int) -> GemObject:
    """One object whose ``value`` element is updated *updates* times,
    one commit each — the no-deletion growth workload."""
    session = db.login()
    obj = session.new("Object", value=0)
    session.assign("churned", obj)
    session.commit()
    for index in range(updates):
        session.session.bind(obj.oid, "value", index + 1)
        session.commit()
    session.close()
    return obj
