"""``repro.bench`` — workload generators and the results harness."""

from .harness import Table, Timing, observability_metrics, ratio, stopwatch
from .workloads import (
    acme_fragment,
    employee_database,
    figure1_database,
    history_churn,
    scattered_tree_database,
    traverse_tree,
    tree_database,
)

__all__ = [
    "Table",
    "Timing",
    "acme_fragment",
    "employee_database",
    "figure1_database",
    "history_churn",
    "observability_metrics",
    "ratio",
    "scattered_tree_database",
    "stopwatch",
    "traverse_tree",
    "tree_database",
]
