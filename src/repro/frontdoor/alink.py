"""The asynchronous host ↔ GemStone link.

The same wire contract as :mod:`repro.executor.link` — a duplex byte
stream with ``u32`` length-prefixed frames, so framing bugs surface
exactly as they would on a socket — but awaitable, with *flow control*:
each direction buffers at most ``capacity`` bytes, and a sender whose
peer has fallen behind parks in :meth:`AsyncLinkEnd.send` until the
reader drains.  That back-pressure is the outermost layer of the front
door's overload story: a client that will not read its responses
eventually stops being able to write requests.

:class:`FaultyAsyncLink` is the async twin of
:class:`~repro.faults.link.FaultyLink`: it consumes the same seeded
:class:`~repro.faults.plan.FaultPlan` decisions (drop, duplicate,
truncate, reorder, partition), so the pipelined exactly-once property
tests drive the event-loop stack through precisely the fault schedules
the synchronous stack already survives.
"""

from __future__ import annotations

import asyncio
import struct

from ..errors import ProtocolError
from ..faults.plan import FaultPlan

#: default per-direction buffer (bytes) before senders block
DEFAULT_CAPACITY = 256 * 1024


class _AsyncPipe:
    """One direction: a bounded byte stream with frame boundaries."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._buffer = bytearray()
        self._capacity = capacity
        self._closed = False
        self._readable = asyncio.Event()
        self._writable = asyncio.Event()
        self._writable.set()

    async def write(self, data: bytes) -> None:
        if self._closed:
            raise ProtocolError("link is closed")
        while len(self._buffer) >= self._capacity:
            self._writable.clear()
            await self._writable.wait()
            if self._closed:
                raise ProtocolError("link is closed")
        self._buffer += data
        self._readable.set()

    def _pop_frame(self) -> bytes | None:
        if len(self._buffer) < 4:
            if self._buffer and self._closed:
                raise ProtocolError("truncated frame on closed link")
            return None
        (length,) = struct.unpack_from("<I", self._buffer, 0)
        if len(self._buffer) < 4 + length:
            if self._closed:
                raise ProtocolError("truncated frame on closed link")
            return None
        frame = bytes(self._buffer[4 : 4 + length])
        del self._buffer[: 4 + length]
        return frame

    async def read_frame(self) -> bytes | None:
        """The next complete frame; None once closed and drained."""
        while True:
            frame = self._pop_frame()
            if frame is not None:
                if len(self._buffer) < self._capacity:
                    self._writable.set()
                return frame
            if self._closed:
                return None
            self._readable.clear()
            await self._readable.wait()

    def poll_frame(self) -> bytes | None:
        """Non-blocking :meth:`read_frame` (None = nothing complete)."""
        frame = self._pop_frame()
        if frame is not None and len(self._buffer) < self._capacity:
            self._writable.set()
        return frame

    def close(self) -> None:
        self._closed = True
        # wake both sides so parked coroutines observe the close
        self._readable.set()
        self._writable.set()

    @property
    def closed(self) -> bool:
        return self._closed


class AsyncLinkEnd:
    """One endpoint of the awaitable duplex link."""

    def __init__(self, outgoing: _AsyncPipe, incoming: _AsyncPipe) -> None:
        self._out = outgoing
        self._in = incoming
        self.frames_sent = 0
        self.bytes_sent = 0

    async def send(self, frame: bytes) -> None:
        """Send one frame; parks when the peer's buffer is full."""
        await self._out.write(struct.pack("<I", len(frame)) + frame)
        self.frames_sent += 1
        self.bytes_sent += 4 + len(frame)

    async def receive(self) -> bytes | None:
        """Await the next complete frame; None once the peer closed."""
        return await self._in.read_frame()

    def poll(self) -> bytes | None:
        """The next complete frame if one is already buffered."""
        return self._in.poll_frame()

    def close(self) -> None:
        """Close the outgoing direction (wakes a parked peer reader)."""
        self._out.close()

    def abort(self) -> None:
        """Hard-close both directions (a socket RST's in-memory twin)."""
        self._out.close()
        self._in.close()

    @property
    def peer_closed(self) -> bool:
        return self._in.closed


def make_async_link(
    capacity: int = DEFAULT_CAPACITY,
) -> tuple[AsyncLinkEnd, AsyncLinkEnd]:
    """A connected (host_end, gem_end) pair of async endpoints."""
    a_to_b = _AsyncPipe(capacity)
    b_to_a = _AsyncPipe(capacity)
    return AsyncLinkEnd(a_to_b, b_to_a), AsyncLinkEnd(b_to_a, a_to_b)


class FaultyAsyncLink:
    """Seeded frame faults on one async endpoint (plan-driven)."""

    def __init__(self, inner: AsyncLinkEnd, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.partitioned = False
        self.dropped = 0
        self.duplicated = 0
        self.truncated = 0
        self.reordered = 0
        self._held: bytes | None = None

    # -- AsyncLinkEnd interface ---------------------------------------------

    async def send(self, frame: bytes) -> None:
        if self.partitioned:
            self.dropped += 1
            return
        fault = self.plan.link_fault(len(frame))
        if fault == "drop":
            self.dropped += 1
            return
        if fault == "truncate" and len(frame) > 1:
            self.truncated += 1
            await self.inner.send(frame[: max(1, len(frame) // 2)])
            return
        if fault == "reorder" and self._held is None:
            self.reordered += 1
            self._held = frame
            return
        await self.inner.send(frame)
        if self._held is not None:
            held, self._held = self._held, None
            await self.inner.send(held)
        if fault == "duplicate":
            self.duplicated += 1
            await self.inner.send(frame)

    async def receive(self) -> bytes | None:
        return await self.inner.receive()

    def poll(self) -> bytes | None:
        return self.inner.poll()

    def close(self) -> None:
        self.inner.close()

    @property
    def peer_closed(self) -> bool:
        return self.inner.peer_closed

    @property
    def frames_sent(self) -> int:
        return self.inner.frames_sent

    @property
    def bytes_sent(self) -> int:
        return self.inner.bytes_sent

    # -- partition control --------------------------------------------------

    def partition(self) -> None:
        """Sever this direction until :meth:`heal`."""
        self.partitioned = True

    def heal(self) -> None:
        self.partitioned = False
