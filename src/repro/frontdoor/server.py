"""The asynchronous session front door: one loop, thousands of links.

The paper's Executor "controls sessions ... on behalf of users on host
machines" (section 6); at production concurrency that means one event
loop multiplexing every host link instead of one blocking serve loop per
link.  :class:`FrontDoor` runs each link as a cheap pair of coroutines
in the SEDA style — explicit queues between stages, back-pressure at
every seam, overload degrading into *typed* refusals instead of
collapse:

* the **reader** awaits frames off the async link, answers replays
  straight from the Executor's bounded ``(channel, seq)`` replay window,
  runs arrival-time admission (deadline check, leaky bucket, circuit
  breaker — a refused request is answered immediately with a typed
  OVERLOADED or ``DeadlineExceeded`` frame), and enqueues admitted work
  on the link's bounded dispatch queue.  A full queue parks the reader,
  which stops draining the link, which eventually parks the client's
  ``send`` — back-pressure all the way to the edge;
* the **dispatcher** dequeues one request at a time (per-session order
  is preserved; sessions interleave freely on the loop), *re-checks the
  request's deadline* — queueing delay may have consumed the client's
  patience, and work whose client has given up is shed, not executed —
  then applies the frame through the same
  :class:`~repro.executor.executor.Executor` stages the synchronous
  path uses, seals the response into the replay window, and sends it.

Because refused requests are answered by the reader while earlier,
admitted requests are still queued, responses can legitimately overtake
one another: hosts must correlate responses to requests by sequence
number, never by arrival order (:mod:`repro.frontdoor.client` does).
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from ..errors import LinkCorruption, ProtocolError
from ..executor import protocol
from ..executor.executor import Executor
from ..executor.protocol import FrameType
from ..executor.replay import DEFAULT_WINDOW
from .alink import AsyncLinkEnd, make_async_link

#: default bound on one session's dispatch queue (the server-side
#: pipelining window); must stay below the replay window so a duplicate
#: can never outlive its cached response
DEFAULT_SESSION_WINDOW = 8

#: parked (resumable) sessions kept after their transport dropped; the
#: oldest parked session beyond this is hung up for real
DEFAULT_RESUMABLE_SESSIONS = 256


class _Resumable:
    """One token's session state, surviving transport drops.

    ``parked`` is set while no connection is bound to the token; a
    resume of a still-bound token aborts the old link and waits for its
    serve loop to park before the new connection proceeds — that
    ordering is what lets each serve use a fresh in-flight set without
    racing the old dispatcher.
    """

    __slots__ = ("executor", "link", "parked")

    def __init__(self, executor: Executor) -> None:
        self.executor = executor
        self.link = None
        self.parked = asyncio.Event()
        self.parked.set()


class FrontDoor:
    """Multiplexes every host link of one database on one event loop."""

    def __init__(
        self,
        database,
        admission=None,
        window: int = DEFAULT_SESSION_WINDOW,
        replay_window: int = DEFAULT_WINDOW,
    ) -> None:
        if window < 1:
            raise ValueError("the session window must be at least 1")
        if replay_window < 2 * window:
            raise ValueError(
                "the replay window must be at least twice the session "
                "window, or a pipelined duplicate could outlive its "
                "cached response"
            )
        self.database = database
        self.admission = admission
        self.window = window
        self.replay_window = replay_window
        self.obs = getattr(database, "obs", None)
        if self.obs is not None:
            self.obs.register_frontdoor(self)
        # lifetime counters (also mirrored into the obs registry)
        self.links_served = 0
        self.active_links = 0
        self.requests = 0
        self.replays = 0
        self.shed_overload = 0
        self.shed_deadline = 0
        self.corrupt_frames = 0
        self.protocol_errors = 0
        self.max_queue_depth = 0
        self.queued = 0
        self.suppressed_duplicates = 0
        self.resumed_links = 0
        self.max_resumable = DEFAULT_RESUMABLE_SESSIONS
        #: HELLO token → parked-or-active session state (insertion order
        #: doubles as resume recency for eviction)
        self._sessions: dict[str, _Resumable] = {}
        self._tasks: set[asyncio.Task] = set()

    # -- wiring --------------------------------------------------------------

    def connect(self, capacity: Optional[int] = None) -> AsyncLinkEnd:
        """Open one link: returns the host end, serves the gem end.

        Must be called with a running event loop; the serve coroutine is
        scheduled as a task the front door tracks until the link closes.
        """
        if capacity is None:
            host_end, gem_end = make_async_link()
        else:
            host_end, gem_end = make_async_link(capacity)
        self.spawn(gem_end)
        return host_end

    def spawn(self, gem_end) -> asyncio.Task:
        """Serve *gem_end* (any async-link-shaped endpoint) as a task."""
        task = asyncio.get_running_loop().create_task(self.serve(gem_end))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def close(self) -> None:
        """Cancel every live link task (loadgen teardown)."""
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for entry in self._sessions.values():
            entry.executor.hangup()
        self._sessions.clear()

    # -- one link ------------------------------------------------------------

    async def serve(self, gem_end) -> None:
        """Serve one host link until it closes or the session logs out.

        A socket link may open with ``HELLO(token)``: the connection is
        then bound to that token's session — created on first sight,
        *resumed* (same executor, same replay window) after a transport
        drop — so the client's resends of unacked seqs replay instead
        of re-applying.  Links that skip HELLO (the in-memory path) get
        a throwaway session exactly as before.
        """
        token: Optional[str] = None
        pending: Optional[bytes] = None
        try:
            first = await gem_end.receive()
        except ProtocolError:
            first = None
        if first is not None:
            token, pending = self._parse_hello(first)
        entry: Optional[_Resumable] = None
        parked: Optional[asyncio.Event] = None
        if token is not None:
            entry = await self._attach(token, gem_end)
            parked = entry.parked
            executor = entry.executor
            await self._safe_send(gem_end, protocol.encode_hello_ok(token))
        else:
            executor = Executor(
                self.database,
                admission=self.admission,
                replay_window=self.replay_window,
            )
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.window)
        # (channel, seq) keys enqueued but not yet sealed: the replay
        # window only covers *sealed* responses, so without this set a
        # duplicate arriving while its original still queues would pass
        # admission as new load and be applied twice
        inflight: set = set()
        self.links_served += 1
        self.active_links += 1
        if self.obs is not None:
            self.obs.registry.set_gauge("frontdoor.active_links", self.active_links)
        dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch(executor, gem_end, queue, inflight)
        )
        try:
            await self._read(executor, gem_end, queue, inflight, first=pending)
            await queue.join()  # drain admitted work before hanging up
        finally:
            dispatcher.cancel()
            try:
                await dispatcher
            except asyncio.CancelledError:
                pass
            if entry is not None:
                # resumable: park the session for the next connection
                # (hung up only if evicted); the event we set must be
                # the one our _attach created — a resume may already
                # have installed a fresh one for the next serve
                parked.set()
            else:
                executor.hangup()  # a dead link must free its session slot
            gem_end.close()
            self.active_links -= 1
            if self.obs is not None:
                self.obs.registry.set_gauge(
                    "frontdoor.active_links", self.active_links
                )

    def _parse_hello(self, raw: bytes) -> tuple[Optional[str], Optional[bytes]]:
        """Split a link's first frame into (resume token, leftover frame)."""
        try:
            frame = protocol.decode_frame(raw)
        except Exception:
            return None, raw  # let the read loop answer/count it
        if frame.type is FrameType.HELLO:
            return frame.fields["token"], None
        return None, raw

    async def _attach(self, token: str, gem_end) -> _Resumable:
        """Bind *gem_end* to *token*'s session, resuming if it exists.

        If the token is still bound to a live connection (the client
        redialed before the server noticed the drop), the old link is
        aborted and we wait for its serve loop to drain and park —
        everything it admitted is sealed in the replay window before
        the new connection reads a single frame.
        """
        entry = self._sessions.pop(token, None)
        if entry is None:
            entry = _Resumable(
                Executor(
                    self.database,
                    admission=self.admission,
                    replay_window=self.replay_window,
                )
            )
        else:
            if not entry.parked.is_set():
                abort = getattr(entry.link, "abort", None)
                if abort is not None:
                    abort()
                else:
                    entry.link.close()
                await entry.parked.wait()
            self.resumed_links += 1
            if self.obs is not None:
                self.obs.registry.inc("net.reconnects")
        entry.link = gem_end
        entry.parked = asyncio.Event()
        self._sessions[token] = entry
        self._evict_parked()
        return entry

    def _evict_parked(self) -> None:
        while len(self._sessions) > self.max_resumable:
            for token, entry in list(self._sessions.items()):
                if entry.parked.is_set():
                    del self._sessions[token]
                    entry.executor.hangup()
                    break
            else:
                return  # every session is live: nothing to evict

    @staticmethod
    async def _safe_send(gem_end, data: bytes) -> bool:
        """Send, treating a dead transport as 'response undeliverable'.

        The response (when sequenced) is sealed in the replay window, so
        a resumed connection's resend will still find it — losing the
        send here loses nothing.
        """
        try:
            await gem_end.send(data)
            return True
        except ProtocolError:
            return False

    async def _read(
        self, executor: Executor, gem_end, queue, inflight, first: Optional[bytes] = None
    ) -> None:
        """Arrival stage: decode, replay, admit, enqueue (or refuse)."""
        obs = self.obs
        while True:
            if first is not None:
                raw, first = first, None
            else:
                try:
                    raw = await gem_end.receive()
                except ProtocolError:
                    return  # truncated tail on a dying link
                if raw is None:
                    return  # peer closed
            try:
                frame = executor.decode(raw)
            except LinkCorruption:
                self.corrupt_frames += 1
                continue  # damaged in transit: dropped, the host resends
            except Exception as error:  # malformed at the source
                self.protocol_errors += 1
                if not await self._safe_send(
                    gem_end, protocol.encode_error(type(error).__name__, str(error))
                ):
                    return
                continue
            if frame.type is FrameType.HELLO:
                # a duplicated handshake frame mid-stream: ack and move on
                if not await self._safe_send(
                    gem_end, protocol.encode_hello_ok(frame.fields["token"])
                ):
                    return
                continue
            self.requests += 1
            if obs is not None:
                obs.registry.inc("frontdoor.requests")
            cached = executor.lookup_replay(frame)
            if cached is not None:
                # answered from the replay window without re-entering
                # admission: a resend is not new load
                self.replays += 1
                if not await self._safe_send(gem_end, cached):
                    return
                continue
            if frame.seq is not None and (frame.channel, frame.seq) in inflight:
                # a duplicate of work still queued: its response is
                # already coming, and admitting it again would apply it
                # twice — the in-flight gap the replay window can't see
                self.suppressed_duplicates += 1
                if obs is not None:
                    obs.registry.inc("frontdoor.suppressed_duplicates")
                continue
            refused = executor.gate(frame)
            if refused is not None:
                self._count_shed(refused)
                if not await self._safe_send(gem_end, executor.seal(frame, refused)):
                    return
                continue
            depth = queue.qsize() + 1
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth
            if obs is not None:
                obs.registry.set_gauge("frontdoor.queue_depth", depth)
            self.queued += 1
            if frame.seq is not None:
                inflight.add((frame.channel, frame.seq))
            # bounded: parks the reader (and transitively the client's
            # send) once `window` requests are in flight on this session
            await queue.put((frame, time.perf_counter()))
            # NB: the reader keeps draining after a LOGOUT — if the
            # LOGOUT response is lost in transit, the resend must find
            # someone to replay it; only a closed link ends the loop

    async def _dispatch(self, executor: Executor, gem_end, queue, inflight) -> None:
        """Execution stage: dequeue → re-check deadline → apply → seal."""
        obs = self.obs
        while True:
            frame, enqueued_at = await queue.get()
            try:
                # the dequeue-time deadline re-check: work that expired
                # while it queued is shed with a typed frame, never run
                late = executor.deadline_frame(frame)
                if late is not None:
                    self.shed_deadline += 1
                    if obs is not None:
                        obs.registry.inc("frontdoor.shed_deadline")
                    response, request_id = late, None
                else:
                    response, request_id = executor.apply(frame)
                sealed = executor.seal(frame, response, request_id)
                # sealed into the replay window *before* the in-flight
                # key is dropped: duplicates are covered at every instant
                inflight.discard((frame.channel, frame.seq))
                # a dead transport must NOT end the dispatcher: the
                # queue still holds admitted work whose effects belong
                # in the replay window (and whose task_done()s unblock
                # serve's queue.join()); undeliverable responses are
                # replayed after the client resumes
                await self._safe_send(gem_end, sealed)
                if obs is not None:
                    obs.registry.observe(
                        "frontdoor.latency_ms",
                        (time.perf_counter() - enqueued_at) * 1000.0,
                    )
            finally:
                queue.task_done()

    def _count_shed(self, refused: bytes) -> None:
        kind = refused[0] if refused else 0
        if kind == FrameType.OVERLOADED:
            self.shed_overload += 1
            if self.obs is not None:
                self.obs.registry.inc("frontdoor.shed_overload")
        else:
            self.shed_deadline += 1
            if self.obs is not None:
                self.obs.registry.inc("frontdoor.shed_deadline")

    # -- reporting -----------------------------------------------------------

    def report(self) -> dict:
        """JSON-ready counters for the ``frontdoor`` snapshot section."""
        return {
            "links_served": self.links_served,
            "active_links": self.active_links,
            "window": self.window,
            "replay_window": self.replay_window,
            "requests": self.requests,
            "queued": self.queued,
            "replays": self.replays,
            "suppressed_duplicates": self.suppressed_duplicates,
            "shed_overload": self.shed_overload,
            "shed_deadline": self.shed_deadline,
            "corrupt_frames": self.corrupt_frames,
            "protocol_errors": self.protocol_errors,
            "max_queue_depth": self.max_queue_depth,
        }


__all__ = ["FrontDoor", "DEFAULT_SESSION_WINDOW"]
