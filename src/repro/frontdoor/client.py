"""The asynchronous host connection: a pipelined, exactly-once client.

The synchronous :class:`~repro.executor.executor.HostConnection` is
stop-and-wait: one request in flight, one response awaited.  This client
keeps up to ``window`` requests in flight on one link (the pipelining
window), which makes two disciplines mandatory:

* **correlation by sequence number** — the front door legitimately
  answers out of order (a shed request is refused at arrival while
  earlier admitted work is still queued), so a receiver task files every
  response with the future that requested its seq; arrival order means
  nothing;
* **replay-safe retries** — a request that goes unanswered is resent
  under the *same* sequence number, and the server's bounded
  ``(channel, seq)`` replay window guarantees at-most-once application;
  an OVERLOADED answer is resubmitted under a *new* sequence number
  (the shed request was never applied, so replay protection is not
  wanted) after backing off for the carried retry-after.

Requests are sent in submission order — the window semaphore and a send
lock keep the wire order equal to the sequence order — but loss can
still deliver them to the dispatcher out of order; callers that need
happens-before (an EXECUTE its COMMIT must see) await the earlier
response first, exactly as they would over TCP on a real network.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from ..errors import (
    GemStoneError,
    LinkTimeout,
    OverloadedError,
)
from ..executor import protocol
from ..executor.protocol import Frame, FrameType


class AsyncHostConnection:
    """Pipelined client over one async link (build with :meth:`open`)."""

    def __init__(
        self,
        host_end,
        window: int = 4,
        max_attempts: int = 5,
        overload_attempts: int = 8,
        reply_timeout: float = 0.05,
        clock=None,
        request_deadline: Optional[float] = None,
        channel: Optional[int] = None,
        link_factory=None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if overload_attempts < 1:
            raise ValueError("overload_attempts must be at least 1")
        self.host_end = host_end
        self.window = window
        self.max_attempts = max_attempts
        self.overload_attempts = overload_attempts
        #: wall seconds to wait for a response before resending
        self.reply_timeout = reply_timeout
        #: the deterministic clock deadlines and backoff are charged to
        #: (shared with the server's admission controller)
        self.clock = clock
        #: clock units after "now" each request stays worth serving
        self.request_deadline = request_deadline
        self.channel = channel
        #: rebuilds the transport after a drop (an async factory; usually
        #: :func:`repro.net.aio.stream_link_factory`, which re-dials and
        #: re-sends the HELLO resume handshake); None = in-memory link,
        #: no reconnect possible
        self.link_factory = link_factory
        self.session_id: Optional[int] = None
        self.retries = 0
        self.reconnects = 0
        self.overload_backoffs = 0
        self._seq = 0
        self._window = asyncio.Semaphore(window)
        self._send_lock = asyncio.Lock()
        self._reconnect_lock = asyncio.Lock()
        self._link_epoch = 0
        self._closing = False
        self._pending: dict[int, asyncio.Future] = {}
        self._receiver: Optional[asyncio.Task] = None

    @classmethod
    async def open(cls, host_end, **kwargs) -> "AsyncHostConnection":
        """Build a connection and start its receiver task.

        *host_end* may be None when a ``link_factory`` is supplied; the
        first transport is then dialed here.
        """
        connection = cls(host_end, **kwargs)
        if connection.host_end is None:
            if connection.link_factory is None:
                raise ValueError("host_end or link_factory is required")
            # the wire can die during the HELLO itself (a faulty
            # transport wraps the handshake too): same short redial
            # ladder as _reconnect before giving up
            for attempt in range(3):
                try:
                    connection.host_end = await connection.link_factory()
                    break
                except GemStoneError:
                    if attempt == 2:
                        raise
                    await asyncio.sleep(0.02 * (attempt + 1))
        connection._receiver = asyncio.get_running_loop().create_task(
            connection._receive_loop()
        )
        return connection

    async def close(self) -> None:
        """Stop the receiver and close the link."""
        self._closing = True
        if self._receiver is not None:
            self._receiver.cancel()
            try:
                await self._receiver
            except asyncio.CancelledError:
                pass
            self._receiver = None
        if self.host_end is not None:
            self.host_end.close()

    # -- correlation ---------------------------------------------------------

    async def _receive_loop(self) -> None:
        """File every response with the future that owns its seq."""
        while True:
            try:
                raw = await self.host_end.receive()
            except GemStoneError:
                continue  # truncated tail; senders will retry
            if raw is None:
                # peer closed: redial when we can (the server parks the
                # session under our HELLO token; unacked seqs are resent
                # by their waiting _complete tasks on the new transport,
                # in seq order, and land as replays when already applied)
                if self._closing or self.link_factory is None:
                    return  # in-flight requests time out
                if not await self._reconnect(self._link_epoch):
                    return
                continue
            try:
                frame = protocol.decode_frame(raw)
            except GemStoneError:
                continue  # damaged in transit: the resend will arrive
            if frame.seq is None:
                continue  # unsequenced noise on a sequenced conversation
            future = self._pending.get(frame.seq)
            if future is not None and not future.done():
                future.set_result(frame)
            # else: a replay for a seq already satisfied — drop it

    # -- transport replacement ------------------------------------------------

    async def _reconnect(self, seen_epoch: int) -> bool:
        """Replace a dead transport; True once a live link is installed.

        *seen_epoch* is the link epoch the caller observed when its send
        or receive failed: if another task already swapped the transport
        since, there is nothing to do — without this check concurrent
        failures (the receive loop plus several retrying requests) would
        each burn a perfectly good new connection.
        """
        async with self._reconnect_lock:
            if self._link_epoch != seen_epoch or self._closing:
                return self._link_epoch != seen_epoch
            try:
                self.host_end.close()
            except GemStoneError:
                pass
            for attempt in range(3):
                try:
                    self.host_end = await self.link_factory()
                    break
                except GemStoneError:
                    await asyncio.sleep(0.02 * (attempt + 1))
            else:
                return False
            self._link_epoch += 1
            self.reconnects += 1
            return True

    # -- the pipelined request machinery -------------------------------------

    def _deadline(self) -> Optional[float]:
        if self.request_deadline is None or self.clock is None:
            return None
        return self.clock.now + self.request_deadline

    async def _post(self, inner: bytes) -> "asyncio.Task[Frame]":
        """Claim a window slot and send; returns the completion task.

        The send has *happened* by the time this returns, so submission
        order is wire order; the returned task resolves to the response
        frame (retrying under the same seq as needed).
        """
        await self._window.acquire()
        try:
            async with self._send_lock:
                self._seq += 1
                seq = self._seq
                envelope = protocol.encode_seq(
                    seq, inner, deadline=self._deadline(), channel=self.channel
                )
                future: asyncio.Future = (
                    asyncio.get_running_loop().create_future()
                )
                self._pending[seq] = future
                # the fresh link may die under the very first send too
                # (disconnect-mid-frame), so the initial transmission
                # gets the same bounded reconnect ladder as resends
                for _attempt in range(self.max_attempts):
                    epoch = self._link_epoch
                    try:
                        await self.host_end.send(envelope)
                        break
                    except GemStoneError:
                        if self.link_factory is None or not await self._reconnect(
                            epoch
                        ):
                            raise
                else:
                    raise LinkTimeout(
                        f"link kept dying while sending seq {seq} "
                        f"({self.max_attempts} attempts)"
                    )
        except BaseException:
            self._window.release()
            raise
        return asyncio.get_running_loop().create_task(
            self._complete(seq, envelope, future)
        )

    async def _complete(
        self, seq: int, envelope: bytes, future: asyncio.Future
    ) -> Frame:
        """Await seq's response, resending until it arrives or we give up."""
        try:
            for attempt in range(self.max_attempts):
                if attempt:
                    self.retries += 1
                    epoch = self._link_epoch
                    try:
                        async with self._send_lock:
                            await self.host_end.send(envelope)
                    except GemStoneError as error:
                        if self.link_factory is None or not await self._reconnect(
                            epoch
                        ):
                            raise LinkTimeout(
                                f"link closed while retrying seq {seq}"
                            ) from error
                        try:
                            async with self._send_lock:
                                await self.host_end.send(envelope)
                        except GemStoneError:
                            continue  # next attempt redials again
                try:
                    return await asyncio.wait_for(
                        asyncio.shield(future), self.reply_timeout
                    )
                except asyncio.TimeoutError:
                    continue  # lost somewhere: resend under the same seq
            raise LinkTimeout(
                f"no response to frame seq {seq} "
                f"after {self.max_attempts} attempts"
            )
        finally:
            self._pending.pop(seq, None)
            self._window.release()

    async def _submit(
        self, inner: bytes, decode: Callable[[Frame], Any]
    ) -> "asyncio.Task":
        """Pipeline one logical request; resolves to ``decode(frame)``.

        The first transmission is on the wire before this returns.
        OVERLOADED answers are resubmitted under fresh sequence numbers
        inside the returned task, after the carried backoff.
        """
        first = await self._post(inner)
        return asyncio.get_running_loop().create_task(
            self._finish(first, inner, decode)
        )

    async def _finish(
        self,
        in_flight: "asyncio.Task[Frame]",
        inner: bytes,
        decode: Callable[[Frame], Any],
    ) -> Any:
        retry_after = 0.0
        for _attempt in range(self.overload_attempts):
            frame = await in_flight
            if frame.type is not FrameType.OVERLOADED:
                return decode(frame)
            retry_after = frame.fields["retry_after"]
            self.overload_backoffs += 1
            await self._backoff(retry_after)
            in_flight = await self._post(inner)
        raise OverloadedError(
            f"still shedding after {self.overload_attempts} backoffs",
            retry_after=retry_after,
        )

    async def _backoff(self, retry_after: float) -> None:
        if self.clock is not None:
            # simulated time: advance the shared clock so the leaky
            # bucket drains, then yield so the loop makes progress
            self.clock.advance(max(retry_after, 0.5))
            await asyncio.sleep(0)
        else:
            await asyncio.sleep(min(max(retry_after, 0.001), 0.05))

    async def _request(self, inner: bytes, decode: Callable[[Frame], Any]) -> Any:
        return await (await self._submit(inner, decode))

    # -- response decoders ----------------------------------------------------

    @staticmethod
    def _decode_execute(frame: Frame) -> tuple[Any, str]:
        if frame.type is FrameType.ERROR:
            raise protocol.rehydrate_error(
                frame.fields["error_class"], frame.fields["message"]
            )
        return frame.fields["value"], frame.fields["display"]

    @staticmethod
    def _decode_commit(frame: Frame) -> Optional[int]:
        if frame.type is FrameType.CONFLICT:
            return None
        if frame.type is FrameType.ERROR:
            raise protocol.rehydrate_error(
                frame.fields["error_class"], frame.fields["message"]
            )
        return frame.fields["tx_time"]

    @staticmethod
    def _decode_any(frame: Frame) -> Frame:
        return frame

    # -- session protocol -----------------------------------------------------

    async def login(self, user: str, password: str) -> int:
        """Authenticate; returns the session id."""
        frame = await self._request(
            protocol.encode_login(user, password), self._decode_any
        )
        if frame.type is FrameType.ERROR:
            raise GemStoneError(frame.fields["message"])
        self.session_id = frame.fields["session_id"]
        return self.session_id

    async def execute(self, source: str) -> tuple[Any, str]:
        """Run a block of OPAL; returns (wire value, display string)."""
        return await self._request(
            protocol.encode_execute(source), self._decode_execute
        )

    async def post_execute(self, source: str) -> "asyncio.Task":
        """Pipelined :meth:`execute`: sent now, awaited later."""
        return await self._submit(
            protocol.encode_execute(source), self._decode_execute
        )

    async def commit(self) -> Optional[int]:
        """Commit; the transaction time, or None on conflict."""
        return await self._request(
            protocol.encode_simple(FrameType.COMMIT), self._decode_commit
        )

    async def post_commit(self) -> "asyncio.Task":
        """Pipelined :meth:`commit`: sent now, awaited later."""
        return await self._submit(
            protocol.encode_simple(FrameType.COMMIT), self._decode_commit
        )

    async def abort(self) -> None:
        await self._request(
            protocol.encode_simple(FrameType.ABORT), self._decode_any
        )

    async def logout(self) -> None:
        """End the session (the link stays open until :meth:`close`)."""
        await self._request(
            protocol.encode_simple(FrameType.LOGOUT), self._decode_any
        )
        self.session_id = None
