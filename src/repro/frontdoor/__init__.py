"""``repro.frontdoor`` — the asyncio session front door.

One event loop multiplexing thousands of host links (section 6's
Executor at production concurrency): async framing over the existing
SEQ envelope, request pipelining with a bounded per-session window,
arrival-time admission plus dequeue-time deadline shedding, and a
bounded ``(channel, seq)`` replay window for pipelined exactly-once.
See ``docs/frontdoor.md``.
"""

from .alink import AsyncLinkEnd, FaultyAsyncLink, make_async_link
from .client import AsyncHostConnection
from .server import DEFAULT_SESSION_WINDOW, FrontDoor

__all__ = [
    "AsyncHostConnection",
    "AsyncLinkEnd",
    "DEFAULT_SESSION_WINDOW",
    "FaultyAsyncLink",
    "FrontDoor",
    "make_async_link",
]
