"""An open-loop load generator for the async session front door.

``python -m repro.frontdoor.loadgen`` drives one :class:`FrontDoor`
with thousands of concurrent sessions arriving at a fixed rate —
**open-loop**: arrivals are scheduled by the clock, not by completions,
so a saturated server sees the full offered load instead of the
self-throttled trickle a closed loop would send it.  That is the regime
where overload behaviour matters, and the claim under test is the
governance story end to end:

* saturation degrades into *typed* OVERLOADED frames (clients back off
  for the carried retry-after and resubmit under fresh sequence
  numbers) — never into unexplained exceptions or silent stalls;
* every session reaches a terminal outcome: completed, refused with a
  typed error, or timed out by its own giving-up policy.  A session
  still unfinished when the wall-clock limit expires is **hung**, and
  hung must be zero;
* latency quantiles and shed counts come from ``repro.obs`` — the
  ``frontdoor.latency_ms`` histogram and the front door's snapshot
  section — not from generator-side bookkeeping.

Arrival time is simulated on the shared :class:`~repro.faults.plan
.FaultClock` (each arrival advances it by ``1/rate``), so the leaky
bucket, circuit-breaker timers and request deadlines all run on one
reproducible timeline; only the hung-session limit uses wall time.

Exit status is 0 iff zero untyped errors and zero hung sessions.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from typing import Any, Optional

from ..db import GemStone
from ..errors import (
    GemStoneError,
    LinkTimeout,
    OverloadedError,
)
from ..faults.plan import FaultClock
from ..govern.admission import AdmissionController
from .client import AsyncHostConnection
from .server import FrontDoor

#: session outcomes, in reporting order
_OUTCOMES = (
    "completed", "overloaded", "deadline", "link_timeouts",
    "typed_errors", "untyped_errors", "hung",
)

FULL = dict(sessions=10_000, rate=2_000.0, requests=5, max_sessions=512,
            queue_capacity=4_096.0, drain_rate=256.0, track_count=8_192)
SMOKE = dict(sessions=300, rate=600.0, requests=4, max_sessions=48,
             queue_capacity=256.0, drain_rate=64.0, track_count=2_048)


class _Tally:
    """Mutable outcome counters shared by every session coroutine."""

    def __init__(self) -> None:
        for name in _OUTCOMES:
            setattr(self, name, 0)
        self.conflicts = 0
        self.commits = 0
        self.executes = 0
        self.first_error: Optional[str] = None

    def untyped(self, error: BaseException) -> None:
        self.untyped_errors += 1
        if self.first_error is None:
            self.first_error = f"{type(error).__name__}: {error}"

    def as_dict(self) -> dict[str, int]:
        report = {name: getattr(self, name) for name in _OUTCOMES}
        report["conflicts"] = self.conflicts
        report["commits"] = self.commits
        report["executes"] = self.executes
        return report


async def _session(
    index: int,
    door: FrontDoor,
    clock: FaultClock,
    tally: _Tally,
    rng: random.Random,
    requests: int,
    window: int,
    deadline: Optional[float],
    link_factory=None,
) -> None:
    """One simulated host: login, a pipelined request mix, commit, logout.

    With *link_factory* set (the ``--tcp`` mode) the session dials the
    door's listening socket instead of attaching an in-memory link; the
    factory re-handshakes on reconnect, so the replay discipline under
    test is the same one real hosts get.
    """
    connection = await AsyncHostConnection.open(
        None if link_factory is not None else door.connect(),
        link_factory=link_factory,
        window=window,
        clock=clock,
        request_deadline=deadline,
        reply_timeout=2.0,  # localhost does not lose frames
    )
    try:
        await connection.login("DataCurator", "swordfish")
        wrote = False
        pending = []
        for n in range(requests):
            if rng.random() < 0.2:
                # a write: mostly private, occasionally contended so the
                # conflict path sees real traffic
                name = "contended" if rng.random() < 0.1 else f"lg{index}"
                pending.append(await connection.post_execute(
                    f"World!{name} := {n}"
                ))
                wrote = True
            else:
                pending.append(await connection.post_execute(
                    f"{index} + {n}"
                ))
        for task in pending:
            await task
            tally.executes += 1
        if wrote:
            tx_time = await connection.commit()
            if tx_time is None:
                tally.conflicts += 1
            else:
                tally.commits += 1
        await connection.logout()
        tally.completed += 1
    except OverloadedError:
        tally.overloaded += 1  # typed: refused after bounded backoffs
    except LinkTimeout:
        tally.link_timeouts += 1  # typed: gave up waiting for a reply
    except GemStoneError as error:
        if type(error).__name__ == "DeadlineExceeded":
            tally.deadline += 1  # typed: the server shed expired work
        else:
            tally.typed_errors += 1
    except asyncio.CancelledError:
        raise  # the hung-session reaper is counting us; stay out of its way
    except Exception as error:  # the failure the run exists to rule out
        tally.untyped(error)
    finally:
        await connection.close()


async def run_load(
    sessions: int = 10_000,
    rate: float = 2_000.0,
    requests: int = 5,
    seed: int = 2026,
    window: int = 4,
    max_sessions: int = 512,
    queue_capacity: float = 4_096.0,
    drain_rate: float = 256.0,
    deadline: Optional[float] = None,
    track_count: int = 8_192,
    wall_limit: float = 300.0,
    tcp: bool = False,
) -> dict[str, Any]:
    """Run the open-loop ramp; returns the JSON-ready report.

    *tcp* serves the door on a localhost socket and has every session
    dial it — each frame crosses a real kernel boundary, and the HELLO
    resume handshake binds each connection to its session.
    """
    clock = FaultClock()
    admission = AdmissionController(
        clock=clock,
        max_sessions=max_sessions,
        queue_capacity=queue_capacity,
        drain_rate=drain_rate,
    )
    database = GemStone.create(track_count=track_count, track_size=1024)
    door = FrontDoor(database, admission=admission, window=window)
    server = None
    port = None
    if tcp:
        from ..net.aio import serve_frontdoor, server_port

        server = await serve_frontdoor(
            door, registry=database.obs.registry
        )
        port = server_port(server)
    tally = _Tally()
    started = time.perf_counter()
    tasks: list[asyncio.Task] = []
    loop = asyncio.get_running_loop()
    for index in range(sessions):
        rng = random.Random((seed << 16) ^ index)
        link_factory = None
        if tcp:
            from ..net.aio import stream_link_factory

            link_factory = stream_link_factory(
                "127.0.0.1", port, f"lg{seed}.{index}",
                registry=database.obs.registry,
            )
        tasks.append(loop.create_task(_session(
            index, door, clock, tally, rng, requests, window, deadline,
            link_factory,
        )))
        # open loop: the next arrival is due 1/rate clock units later
        # whether or not anyone already here has been served
        clock.advance(1.0 / rate)
        await asyncio.sleep(0)
    done, still_running = await asyncio.wait(
        tasks, timeout=wall_limit
    ) if tasks else (set(), set())
    for task in still_running:  # hung: the one unacceptable outcome
        tally.hung += 1
        task.cancel()
    if still_running:
        await asyncio.gather(*still_running, return_exceptions=True)
    elapsed = time.perf_counter() - started
    if server is not None:
        server.close()
        await server.wait_closed()
    await door.close()
    latency = database.obs.registry.histogram("frontdoor.latency_ms").summary()
    report = {
        "config": {
            "sessions": sessions, "rate": rate, "requests": requests,
            "seed": seed, "window": window, "max_sessions": max_sessions,
            "queue_capacity": queue_capacity, "drain_rate": drain_rate,
            "deadline": deadline, "transport": "tcp" if tcp else "memory",
        },
        "outcomes": tally.as_dict(),
        "frontdoor": door.report(),
        "admission": {
            "admitted": admission.admitted,
            "shed_requests": admission.shed_requests,
            "shed_sessions": admission.shed_sessions,
            "breaker_sheds": admission.breaker_sheds,
        },
        "latency_ms": latency,
        "elapsed_s": round(elapsed, 3),
        "sessions_per_s": round(sessions / elapsed, 1) if elapsed else 0.0,
    }
    if tally.first_error is not None:
        report["first_untyped_error"] = tally.first_error
    return report


def clean(report: dict[str, Any]) -> bool:
    """The pass criterion: zero untyped errors, zero hung sessions."""
    outcomes = report["outcomes"]
    return outcomes["untyped_errors"] == 0 and outcomes["hung"] == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=None,
                        help="total session arrivals (default 10000)")
    parser.add_argument("--rate", type=float, default=None,
                        help="arrivals per simulated clock unit")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests pipelined per session")
    parser.add_argument("--seed", type=int, default=2026,
                        help="seed for the per-session request mix")
    parser.add_argument("--window", type=int, default=4,
                        help="client pipelining window")
    parser.add_argument("--max-sessions", type=int, default=None,
                        help="admission session-slot limit")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-request deadline in clock units")
    parser.add_argument("--tcp", action="store_true",
                        help="serve the door on a localhost socket and "
                        "dial every session over real TCP (fd-hungry at "
                        "full scale; pairs well with --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    args = parser.parse_args(argv)
    params = dict(SMOKE if args.smoke else FULL)
    for key in ("sessions", "rate", "requests", "max_sessions"):
        value = getattr(args, key)
        if value is not None:
            params[key] = value
    report = asyncio.run(run_load(
        seed=args.seed, window=args.window, deadline=args.deadline,
        tcp=args.tcp, **params,
    ))
    if args.json:
        json.dump(report, sys.stdout, indent=2, default=str)
        print()
    else:
        outcomes = report["outcomes"]
        print(f"sessions={report['config']['sessions']} "
              f"elapsed={report['elapsed_s']}s "
              f"({report['sessions_per_s']}/s)")
        print("  " + "  ".join(
            f"{name}={outcomes[name]}" for name in _OUTCOMES))
        print(f"  executes={outcomes['executes']} "
              f"commits={outcomes['commits']} "
              f"conflicts={outcomes['conflicts']}")
        front = report["frontdoor"]
        print(f"  shed_overload={front['shed_overload']} "
              f"shed_deadline={front['shed_deadline']} "
              f"replays={front['replays']} "
              f"max_queue_depth={front['max_queue_depth']}")
        latency = report["latency_ms"]
        print(f"  latency_ms p50={latency['p50']:.3f} "
              f"p90={latency['p90']:.3f} p99={latency['p99']:.3f} "
              f"(n={latency['count']})")
    ok = clean(report)
    print("CLEAN" if ok else "DIRTY: untyped errors or hung sessions")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
