"""``repro.tools`` — host-side utilities (OPAL console, dashboard).

The console is imported lazily so ``python -m repro.tools.repl`` does
not re-import its own module through the package.
"""

__all__ = ["Repl", "render_dashboard", "render_snapshot"]


def __getattr__(name):
    if name == "Repl":
        from .repl import Repl

        return Repl
    if name in ("render_dashboard", "render_snapshot"):
        from . import dashboard

        return getattr(dashboard, name)
    raise AttributeError(name)
