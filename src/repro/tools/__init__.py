"""``repro.tools`` — host-side utilities (the OPAL console).

The console is imported lazily so ``python -m repro.tools.repl`` does
not re-import its own module through the package.
"""

__all__ = ["Repl"]


def __getattr__(name):
    if name == "Repl":
        from .repl import Repl

        return Repl
    raise AttributeError(name)
