"""A text dashboard over the observability snapshot.

``render_dashboard(database)`` turns ``GemStone.observability()`` into
the terminal report a DBA reads at a glance: transaction outcomes, cache
hit rates, storage occupancy, governance counters, the slowest queries
with their plans, and the recent trace spans when tracing is on.  The
console exposes it as the ``:obs`` directive; scripts can print it
directly::

    from repro.tools.dashboard import render_dashboard
    print(render_dashboard(db))

Everything renders from the snapshot dict alone, so the dashboard can
also replay a snapshot saved to JSON (``render_snapshot``).
"""

from __future__ import annotations

from typing import Any, Optional


def _pct(rate: float) -> str:
    return f"{rate * 100.0:5.1f}%"


def _section(title: str) -> list[str]:
    return [title, "-" * len(title)]


def render_snapshot(snap: dict[str, Any], width: int = 72) -> str:
    """Render an already-taken observability snapshot as text."""
    lines: list[str] = []
    lines.append("=" * width)
    lines.append("GemStone observability".center(width))
    lines.append("=" * width)

    txn = snap.get("transactions", {})
    lines += _section("transactions")
    lines.append(
        f"  commits {txn.get('commits', 0)}"
        f"  aborts {txn.get('aborts', 0)}"
        f"  read-only {txn.get('read_only_commits', 0)}"
        f"  retries {txn.get('conflict_retries', 0)}"
        f"  abort-rate {_pct(txn.get('abort_rate', 0.0))}"
    )
    lines.append(
        f"  active {txn.get('active_transactions', 0)}"
        f"  storage-failures {txn.get('storage_failures', 0)}"
        f"  storms {txn.get('storms_detected', 0)}"
        f"  backoff {txn.get('backoff_units', 0.0):.1f}"
    )

    caches = snap.get("caches", {})
    lines += _section("caches")
    for name in ("method_cache", "inline_cache", "translation_cache",
                 "plan_cache", "object_cache"):
        report = caches.get(name)
        if not isinstance(report, dict) or "hit_rate" not in report:
            continue
        lines.append(
            f"  {name:<18} hits {report.get('hits', 0):>8}"
            f"  misses {report.get('misses', 0):>8}"
            f"  hit-rate {_pct(report['hit_rate'])}"
        )
    session_caches = caches.get("sessions", {})
    for name, report in session_caches.items():
        if isinstance(report, dict) and "hit_rate" in report:
            lines.append(
                f"  sessions.{name:<9} hits {report.get('hits', 0):>8}"
                f"  misses {report.get('misses', 0):>8}"
                f"  hit-rate {_pct(report['hit_rate'])}"
            )

    storage = snap.get("storage", {})
    if storage:
        lines += _section("storage")
        lines.append(
            f"  objects {storage.get('objects', 0)}"
            f"  tracks used {storage.get('tracks_allocated', 0)}"
            f" / free {storage.get('tracks_free', 0)}"
            f"  epoch {storage.get('epoch', 0)}"
            f"  last-tx {storage.get('last_tx_time', 0)}"
        )
        if "replication_repairs" in storage:
            lines.append(
                f"  volume: repairs {storage.get('replication_repairs', 0)}"
                f"  stale-repairs {storage.get('replication_stale_repairs', 0)}"
            )

    replication = storage.get("replication", {}) if storage else {}
    if replication.get("enabled"):
        lines += _section("replication")
        lines.append(
            f"  shipped epoch {replication.get('acked_epoch', 0)}"
            f" / local {replication.get('local_epoch', 0)}"
            f"  lag {replication.get('replication_lag', 0)}"
            f"  records {replication.get('records_shipped', 0)}"
            f"  retries {replication.get('retries', 0)}"
            f"  failures {replication.get('ship_failures', 0)}"
            + ("  [suspended]" if replication.get("suspended") else "")
        )
        replica = replication.get("replica", {})
        if replica:
            lines.append(
                f"  replica log: epoch {replica.get('acked_epoch', 0)}"
                f"  segments {replica.get('segments', 0)}"
                f" ({replica.get('archived_segments', 0)} archived)"
                f"  torn-rejected {replica.get('torn_rejected', 0)}"
                f"  {replica.get('bytes_stored', 0)} bytes"
            )

    shard = snap.get("shard", {})
    if shard:
        lines += _section(
            f"shards ({shard.get('shard_count', 0)} workers, "
            f"generation {shard.get('generation', 0)})"
        )
        lines.append(
            f"  commits: single-shard {shard.get('single_shard_commits', 0)}"
            f"  cross-shard {shard.get('cross_shard_commits', 0)}"
            f"  ({_pct(shard.get('cross_shard_ratio', 0.0))} cross)"
            f"  in-doubt {shard.get('in_doubt', 0)}"
        )
        coordinator = shard.get("coordinator", {})
        lines.append(
            f"  coordinator: decided {coordinator.get('commits', 0)} commit"
            f" / {coordinator.get('aborts', 0)} abort"
            f"  resolutions {coordinator.get('resolutions', 0)}"
            f"  log pending {coordinator.get('pending', 0)}"
            f" (forgot {coordinator.get('forgotten', 0)})"
            + ("" if coordinator.get("alive", True) else "  [DOWN]")
        )
        for worker in shard.get("per_shard", []):
            lines.append(
                f"  shard {worker.get('shard_id', '?')}:"
                f" commits {worker.get('commits', 0)}"
                f"  prepares {worker.get('prepares', 0)}"
                f" ({worker.get('prepared_commits', 0)}c"
                f"/{worker.get('prepared_aborts', 0)}a)"
                f"  sessions {worker.get('live_sessions', 0)}"
                f"  in-doubt {worker.get('in_doubt', 0)}"
                + ("" if worker.get("alive", True) else "  [DOWN]")
            )

    front = snap.get("frontdoor", {})
    if front:
        lines += _section(
            f"front door ({front.get('doors', 0)} doors, "
            f"{front.get('links_served', 0)} links served)"
        )
        lines.append(
            f"  requests {front.get('requests', 0)}"
            f"  queued {front.get('queued', 0)}"
            f"  replays {front.get('replays', 0)}"
            f"  active links {front.get('active_links', 0)}"
            f"  max queue depth {front.get('max_queue_depth', 0)}"
        )
        lines.append(
            f"  shed: overload {front.get('shed_overload', 0)}"
            f"  deadline {front.get('shed_deadline', 0)}"
            f"  corrupt frames {front.get('corrupt_frames', 0)}"
            f"  protocol errors {front.get('protocol_errors', 0)}"
        )
        latency = front.get("latency_ms", {})
        if latency.get("count"):
            lines.append(
                f"  latency: p50 {latency.get('p50', 0.0):.3f} ms"
                f"  p90 {latency.get('p90', 0.0):.3f} ms"
                f"  p99 {latency.get('p99', 0.0):.3f} ms"
                f"  (n={latency.get('count', 0)})"
            )

    net = snap.get("net", {})
    if net:
        lines += _section(
            f"network ({net.get('connections', 0)} connections, "
            f"{net.get('reconnects', 0)} reconnects)"
        )
        lines.append(
            f"  frames {net.get('frames_sent', 0)} out /"
            f" {net.get('frames_received', 0)} in"
            f"  bytes {net.get('bytes_sent', 0)} out /"
            f" {net.get('bytes_received', 0)} in"
        )
        rtt = net.get("rtt_ms", {})
        if rtt.get("count"):
            lines.append(
                f"  rtt: p50 {rtt.get('p50', 0.0):.3f} ms"
                f"  p90 {rtt.get('p90', 0.0):.3f} ms"
                f"  p99 {rtt.get('p99', 0.0):.3f} ms"
                f"  (n={rtt.get('count', 0)})"
            )

    gov = snap.get("governance", {})
    lines += _section("governance")
    admission = gov.get("admission", {})
    lines.append(
        f"  admission: admitted {admission.get('admitted', 0)}"
        f"  shed {admission.get('shed_requests', 0)} req"
        f" / {admission.get('shed_sessions', 0)} sess"
        f"  breaker sheds {admission.get('breaker_sheds', 0)}"
        f" trips {admission.get('breaker_trips', 0)}"
    )
    lines.append(
        f"  budgets: queries {gov.get('budgets', {}).get('queries', 0)}"
        f"  kills {gov.get('budgets', {}).get('kills', 0)}"
        f"  quota rejections {gov.get('quotas', {}).get('rejections', 0)}"
        f"  safetime clamps {gov.get('safetime_clamps', 0)}"
    )
    sessions = gov.get("sessions", {})
    lines.append(
        f"  sessions: live {sessions.get('live', 0)}"
        f"  opened {sessions.get('opened', 0)}"
        f"  closed {sessions.get('closed', 0)}"
    )

    slow = snap.get("slow_queries", {})
    lines += _section(
        f"slow queries ({slow.get('total_queries', 0)} run, "
        f"{slow.get('kept', 0)} kept)"
    )
    for entry in slow.get("slowest", []):
        lines.append(
            f"  {entry.get('elapsed_ms', 0.0):8.3f} ms"
            f"  candidates {entry.get('candidates', 0):>6}"
            f"  results {entry.get('result_count', '-'):>6}"
            f"  [{entry.get('translation', '?')}/{entry.get('plan_cache', '?')}]"
            f"  {entry.get('source', '')}"
        )
        for step in entry.get("plan", []):
            lines.append(f"             | {step}")

    tracing = snap.get("tracing", {})
    if tracing.get("enabled"):
        lines += _section(
            f"tracing ({tracing.get('recorded', 0)} spans recorded)"
        )
        for span in tracing.get("recent_spans", []):
            rid = span.get("request_id")
            rid_text = f"r{rid}" if rid is not None else "-"
            lines.append(
                f"  {span.get('ms', 0.0):8.3f} ms  {rid_text:>6}"
                f"  {span.get('name', '')}"
            )
    else:
        lines += _section("tracing")
        lines.append("  disabled (db.obs.enable_tracing() to record spans)")
    return "\n".join(lines)


def render_dashboard(
    database: Any, slow: int = 5, spans: int = 10, width: int = 72,
) -> str:
    """Take a snapshot of *database* and render it as text."""
    return render_snapshot(
        database.observability(slow=slow, spans=spans), width=width
    )


def main(argv: Optional[list[str]] = None) -> int:
    """Replay a saved snapshot: python -m repro.tools.dashboard FILE."""
    import json
    import sys

    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.tools.dashboard snapshot.json")
        return 2
    with open(argv[0], "r", encoding="utf-8") as handle:
        print(render_snapshot(json.load(handle)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
