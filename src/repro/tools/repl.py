"""An interactive OPAL console (the host-side "user interface program").

Blocks of OPAL accumulate line by line and are shipped to the database
when a blank line (or end of input) arrives — the unit of communication
the paper prescribes.  Directives start with ``:``:

    :commit      commit the current transaction
    :abort       discard the workspace
    :time        show the current transaction time (and the dial)
    :dial T      set the time dial (``:dial now`` resets)
    :report      storage report
    :obs         observability dashboard (``:obs trace`` toggles tracing)
    :help        this text
    :quit        leave

Run it:  python -m repro.tools.repl
"""

from __future__ import annotations

import sys
from typing import Iterable, Optional, TextIO

from ..db import GemSession, GemStone
from ..errors import GemStoneError, TransactionConflict

_HELP = """OPAL console — type statements, submit with a blank line.
Directives: :commit :abort :time :dial T|now :report :obs :help :quit"""


class Repl:
    """Line-driven console over one session; testable via streams."""

    def __init__(
        self,
        database: Optional[GemStone] = None,
        session: Optional[GemSession] = None,
        out: TextIO = sys.stdout,
    ) -> None:
        self.database = database or GemStone.create()
        self.session = session or self.database.login()
        self.out = out
        self._buffer: list[str] = []
        self.running = True

    # -- driving ----------------------------------------------------------

    def run(self, lines: Iterable[str]) -> None:
        """Feed input lines (a file, a list, or stdin) until exhausted."""
        self._emit(_HELP)
        for raw in lines:
            if not self.running:
                break
            self.feed(raw.rstrip("\n"))
        self.flush()

    def feed(self, line: str) -> None:
        """Process one input line."""
        stripped = line.strip()
        if stripped.startswith(":"):
            self.flush()
            self._directive(stripped)
            return
        if stripped == "":
            self.flush()
            return
        self._buffer.append(line)

    def flush(self) -> None:
        """Execute the buffered block, if any."""
        if not self._buffer:
            return
        source = "\n".join(self._buffer)
        self._buffer.clear()
        try:
            value = self.session.execute(source)
            self._emit(f"=> {self.session.display(value)}")
        except GemStoneError as error:
            self._emit(f"!! {type(error).__name__}: {error}")

    # -- directives ---------------------------------------------------------

    def _directive(self, text: str) -> None:
        command, _, argument = text[1:].partition(" ")
        command = command.lower()
        if command in ("quit", "exit", "q"):
            self.running = False
            self._emit("bye.")
        elif command == "help":
            self._emit(_HELP)
        elif command == "commit":
            try:
                tx_time = self.session.commit()
                self._emit(f"committed at transaction time {tx_time}")
            except TransactionConflict as conflict:
                self._emit(f"!! conflict, transaction aborted: {conflict}")
        elif command == "abort":
            self.session.abort()
            self._emit("aborted; workspace discarded")
        elif command == "time":
            dial = self.session.time_dial
            setting = "now" if dial.is_now else str(dial.time)
            self._emit(
                f"transaction time {self.database.store.last_tx_time}, "
                f"dial: {setting}"
            )
        elif command == "dial":
            if argument.strip().lower() in ("", "now", "nil"):
                self.session.time_dial.reset()
                self._emit("dial: now")
            else:
                try:
                    self.session.time_dial.set(int(argument))
                    self._emit(f"dial: {int(argument)}")
                except ValueError:
                    self._emit("!! :dial needs an integer time or 'now'")
        elif command == "report":
            for key, value in self.database.storage_report().items():
                self._emit(f"  {key}: {value}")
        elif command == "obs":
            from .dashboard import render_dashboard

            if argument.strip().lower() == "trace":
                enabled = not self.database.obs.tracer.enabled
                self.database.obs.enable_tracing(enabled)
                self._emit(f"tracing {'enabled' if enabled else 'disabled'}")
            else:
                self._emit(render_dashboard(self.database))
        else:
            self._emit(f"!! unknown directive :{command} (try :help)")

    def _emit(self, text: str) -> None:
        print(text, file=self.out)


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point: fresh in-memory database, interactive stdin loop."""
    argv = argv if argv is not None else sys.argv[1:]
    repl = Repl()
    if argv:  # script files
        for path in argv:
            with open(path, "r", encoding="utf-8") as handle:
                repl.run(handle)
        return 0
    try:
        repl.run(iter(sys.stdin.readline, ""))
    except KeyboardInterrupt:
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
