"""``repro.stdm`` — the Set-Theoretic Data Model and its query system.

Labeled sets (section 5.1), the set calculus, the set algebra, the
calculus→algebra translator, the directory-aware optimizer, and the
relational encodings of section 5.2.
"""

from .algebra import (
    BindScan,
    ConstructResult,
    Filter,
    IndexEq,
    IndexRange,
    Plan,
    Unit,
    deduplicate,
    difference,
    intersection,
    union,
)
from .calculus import (
    Apply,
    Exists,
    ForAll,
    Binder,
    Compare,
    Const,
    Expr,
    In,
    NOVALUE,
    PathApply,
    QueryContext,
    SetQuery,
    Subset,
    Var,
    value_equal,
    variables,
)
from .optimize import IndexChoice, best_plan, optimize
from .relational import (
    flatten_set_valued,
    relation_to_set,
    set_to_relation,
    unflatten_to_sets,
)
from .sets import LabeledSet, format_set, materialize, snapshot
from .translate import conjuncts, translate

__all__ = [
    "Apply",
    "BindScan",
    "Binder",
    "Compare",
    "Const",
    "ConstructResult",
    "Exists",
    "Expr",
    "ForAll",
    "Filter",
    "In",
    "IndexChoice",
    "IndexEq",
    "IndexRange",
    "LabeledSet",
    "NOVALUE",
    "PathApply",
    "Plan",
    "QueryContext",
    "SetQuery",
    "Subset",
    "Unit",
    "Var",
    "best_plan",
    "conjuncts",
    "deduplicate",
    "difference",
    "flatten_set_valued",
    "format_set",
    "intersection",
    "materialize",
    "optimize",
    "relation_to_set",
    "set_to_relation",
    "snapshot",
    "translate",
    "unflatten_to_sets",
    "union",
    "value_equal",
    "variables",
]
