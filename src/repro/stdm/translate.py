"""Calculus → algebra translation.

"We have developed a set algebra, and an algorithm to translate a
set-calculus expression to a set-algebra expression" (section 5.1; the
acknowledgements credit Fred Boals and Bob Johnson with the algorithm).

The translation chains the query's binders into
:class:`~repro.stdm.algebra.BindScan` operators in declaration order
(each binder may depend on earlier variables, so this order is always
legal), and attaches each conjunct of the condition as a
:class:`~repro.stdm.algebra.Filter` at the *earliest* point where all
its variables are bound — selection pushdown falls out of the algorithm
rather than being a separate rewrite.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..errors import TranslationError
from .algebra import BindScan, ConstructResult, Filter, Plan, Unit
from .calculus import And, Compare, Expr, SetQuery


def conjuncts(condition: Expr | None) -> list[Expr]:
    """Flatten nested conjunctions into a list of conjuncts."""
    if condition is None:
        return []
    flattened: list[Expr] = []
    stack = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, And):
            stack.append(node.right)
            stack.append(node.left)
        else:
            flattened.append(node)
    return flattened


def match_join_conjunct(
    conjunct: Expr, var: str, bound: set[str]
) -> Optional[tuple[Expr, Expr]]:
    """Match a join conjunct for *var*: ``expr-over-var == expr-over-earlier``.

    Returns ``(member_key, probe_key)`` — the side evaluated per member
    of *var*'s collection and the side evaluated per input row — or
    ``None``.  The probe side must actually use earlier variables (a
    constant right-hand side is a plain selection, not a join) and use
    only variables bound before this binder.  Only ``==`` fuses: a hash
    table realizes equality, nothing else.
    """
    if not isinstance(conjunct, Compare) or conjunct.op != "==":
        return None
    for member_key, probe_key in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        probe_vars = probe_key.free_vars()
        if (
            member_key.free_vars() == {var}
            and probe_vars
            and probe_vars <= bound
        ):
            return member_key, probe_key
    return None


def translate(query: SetQuery) -> Plan:
    """Translate a calculus query into an executable algebra plan.

    The result evaluates to exactly the same multiset as
    :meth:`SetQuery.evaluate` (a property the test-suite checks with
    hypothesis-generated databases).
    """
    remaining = conjuncts(query.condition)
    bound: set[str] = set()
    plan: Plan = Unit()
    for binder in query.binders:
        missing = binder.source.free_vars() - bound
        if missing:
            raise TranslationError(
                f"binder {binder!r} depends on unbound {sorted(missing)}"
            )
        plan = BindScan(plan, binder.var, binder.source)
        bound.add(binder.var)
        plan, remaining = _attach_ready_filters(plan, remaining, bound)
    if remaining:
        names = sorted(set().union(*(c.free_vars() for c in remaining)) - bound)
        raise TranslationError(f"condition uses unbound variable(s) {names}")
    return ConstructResult(plan, query.result)


def _attach_ready_filters(
    plan: Plan, remaining: list[Expr], bound: set[str]
) -> tuple[Plan, list[Expr]]:
    """Attach every conjunct whose variables are all bound."""
    still_pending: list[Expr] = []
    for conjunct in remaining:
        if conjunct.free_vars() <= bound:
            plan = Filter(plan, conjunct)
        else:
            still_pending.append(conjunct)
    return plan, still_pending


def filters_in(plan: Plan) -> Iterator[Filter]:
    """All Filter operators in a plan (tests inspect pushdown depth)."""
    from .algebra import collect_operators

    for node in collect_operators(plan):
        if isinstance(node, Filter):
            yield node
