"""Relational encodings in STDM (section 5.2 of the paper).

The paper shows a relation is "a set of tuples, where each tuple is a set
with element names corresponding to attributes", and works the flattening
example both ways: a set-valued attribute (children of an employee) must
be flattened into several tuples relationally, losing the set as an
entity.  These helpers reproduce both encodings exactly, for experiments
E3 and E4.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..errors import CalculusError
from .sets import LabeledSet


def relation_to_set(
    attributes: Sequence[str], rows: Iterable[Sequence[Any]]
) -> LabeledSet:
    """Encode a relation as an STDM set of labeled tuples.

    The paper's example::

        {T1: {A: 1, B: 3, C: 4}, T2: {A: 1, B: 5, C: 4}}
    """
    result = LabeledSet()
    for index, row in enumerate(rows, start=1):
        if len(row) != len(attributes):
            raise CalculusError(
                f"row {index} has {len(row)} values for {len(attributes)} attributes"
            )
        result[f"T{index}"] = LabeledSet(dict(zip(attributes, row)))
    return result


def set_to_relation(relation_set: LabeledSet) -> tuple[list[str], list[tuple]]:
    """Decode :func:`relation_to_set` output back to (attributes, rows).

    Attribute order is taken from the first tuple; every tuple must have
    the same attributes (relational tuples are homogeneous — exactly the
    rigidity STDM escapes).
    """
    attributes: list[str] = []
    rows: list[tuple] = []
    for label, tuple_set in relation_set.items():
        if not isinstance(tuple_set, LabeledSet):
            raise CalculusError(f"element {label!r} is not a tuple set")
        if not attributes:
            attributes = [str(name) for name in tuple_set.names()]
        row = []
        for attribute in attributes:
            if attribute not in tuple_set:
                raise CalculusError(
                    f"tuple {label!r} is missing attribute {attribute!r}"
                )
            row.append(tuple_set[attribute])
        if len(tuple_set) != len(attributes):
            raise CalculusError(f"tuple {label!r} has extra attributes")
        rows.append(tuple(row))
    return attributes, rows


def flatten_set_valued(
    entities: Iterable[LabeledSet],
    scalar_paths: Sequence[str],
    set_attribute: str,
    flattened_name: str,
) -> tuple[list[str], list[tuple]]:
    """Flatten a set-valued attribute into a relation (the children table).

    For each entity, emits one row per member of ``set_attribute``; the
    scalar columns repeat on every row — the paper's "unavoidable
    redundancy".  ``scalar_paths`` may be nested (``Name!First``).
    """
    attributes = [path.split("!")[-1] for path in scalar_paths] + [flattened_name]
    rows: list[tuple] = []
    for entity in entities:
        scalars = tuple(entity.navigate(path) for path in scalar_paths)
        members = entity.get(set_attribute)
        if not isinstance(members, LabeledSet):
            raise CalculusError(f"{set_attribute!r} is not a set-valued attribute")
        for value in members.values():
            rows.append(scalars + (value,))
    return attributes, rows


def unflatten_to_sets(
    attributes: Sequence[str],
    rows: Iterable[Sequence[Any]],
    key_columns: Sequence[str],
    member_column: str,
    set_attribute: str,
) -> list[LabeledSet]:
    """Rebuild entities with set-valued attributes from a flattened relation.

    Rows sharing the same key columns merge back into one entity whose
    ``set_attribute`` collects the member-column values — undoing the
    encoding an application would otherwise have to manage by hand.
    """
    positions = {name: i for i, name in enumerate(attributes)}
    for column in list(key_columns) + [member_column]:
        if column not in positions:
            raise CalculusError(f"no column named {column!r}")
    entities: dict[tuple, LabeledSet] = {}
    for row in rows:
        key = tuple(row[positions[column]] for column in key_columns)
        entity = entities.get(key)
        if entity is None:
            entity = LabeledSet(
                {column: row[positions[column]] for column in key_columns}
            )
            entity[set_attribute] = LabeledSet()
            entities[key] = entity
        entity[set_attribute].add(row[positions[member_column]])
    return list(entities.values())
