"""Pure STDM labeled sets (section 5.1), independent of the object store.

"STDM is based on labeled sets of heterogeneous values, which themselves
can be sets or simple values. ... A set has elements, each of which has
an element name that labels the element and a value."

:class:`LabeledSet` is the standalone realization used to demonstrate
STDM by itself (the paper presents it before the merge with ST80) and to
build test fixtures; :func:`materialize` pours a labeled set into a GSDM
store (each set becomes an object with entity identity), and
:func:`snapshot` reads one back out of any state of the database.

The textual form printed by :func:`format_set` matches the paper's
``{Name: 'Sales', Managers: {...}, Budget: 142000}`` notation.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..core.objects import GemObject
from ..core.values import Ref, is_immediate
from ..errors import CalculusError


class LabeledSet:
    """An ordered mapping from element names to values (simple or set).

    Elements without explicit labels receive generated aliases, as the
    paper prescribes ("arbitrary aliases are used as element names").
    """

    _alias_counter = 0

    def __init__(self, elements: Optional[dict[Any, Any]] = None) -> None:
        self._elements: dict[Any, Any] = {}
        if elements:
            for name, value in elements.items():
                self[name] = value

    # -- construction ----------------------------------------------------------

    @classmethod
    def of(cls, *values: Any, **named: Any) -> "LabeledSet":
        """Build a set from unlabeled values and/or keyword-labeled ones."""
        result = cls()
        for value in values:
            result.add(value)
        for name, value in named.items():
            result[name] = value
        return result

    @classmethod
    def from_nested(cls, data: Any) -> Any:
        """Convert nested dicts/lists into labeled sets recursively."""
        if isinstance(data, dict):
            result = cls()
            for name, value in data.items():
                result[name] = cls.from_nested(value)
            return result
        if isinstance(data, (list, tuple, set, frozenset)):
            result = cls()
            for value in data:
                result.add(cls.from_nested(value))
            return result
        return data

    @classmethod
    def _new_alias(cls) -> str:
        cls._alias_counter += 1
        return f"a{cls._alias_counter}"

    def add(self, value: Any) -> str:
        """Add an unlabeled element under a fresh alias; returns the alias."""
        alias = self._new_alias()
        self[alias] = value
        return alias

    # -- mapping protocol ---------------------------------------------------------

    def __setitem__(self, name: Any, value: Any) -> None:
        if not isinstance(name, (str, int)) or isinstance(name, bool):
            raise CalculusError(f"element names are strings or ints, not {name!r}")
        self._elements[name] = value

    def __getitem__(self, name: Any) -> Any:
        if name not in self._elements:
            raise CalculusError(f"no element named {name!r}")
        return self._elements[name]

    def get(self, name: Any, default: Any = None) -> Any:
        """The value under *name*, or *default*."""
        return self._elements.get(name, default)

    def __contains__(self, name: Any) -> bool:
        return name in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def names(self) -> list[Any]:
        """Element names in insertion order."""
        return list(self._elements)

    def values(self) -> list[Any]:
        """Element values in insertion order."""
        return list(self._elements.values())

    def items(self) -> Iterator[tuple[Any, Any]]:
        """(name, value) pairs in insertion order."""
        return iter(self._elements.items())

    def has_member(self, value: Any) -> bool:
        """True if *value* equals some element value (set membership)."""
        return any(_set_equal(value, v) for v in self._elements.values())

    # -- paths -------------------------------------------------------------------

    def navigate(self, path: str) -> Any:
        """Follow a ``!``-separated path of element names (section 5.1).

        ``X.navigate("Departments!A16!Managers")`` mirrors the paper's
        ``X!Departments!A16!Managers``.
        """
        current: Any = self
        for raw in path.split("!"):
            name: Any = raw.strip()
            if not isinstance(current, LabeledSet):
                raise CalculusError(f"cannot apply !{name} to a simple value")
            if name not in current and name.lstrip("-").isdigit():
                name = int(name)
            current = current[name]
        return current

    # -- equality -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Structural equivalence: same labels, equivalent values.

        Pure STDM has no entity identity (section 5.4 calls this out as
        its deficiency); two sets with equal structure *are* equal.
        """
        if not isinstance(other, LabeledSet):
            return NotImplemented
        if set(self._elements) != set(other._elements):
            return False
        return all(
            _set_equal(value, other._elements[name])
            for name, value in self._elements.items()
        )

    def __hash__(self) -> int:  # labeled sets are mutable: unhashable
        raise TypeError("LabeledSet is unhashable")

    def __repr__(self) -> str:
        return format_set(self)


def _set_equal(a: Any, b: Any) -> bool:
    if isinstance(a, LabeledSet) and isinstance(b, LabeledSet):
        return a == b
    if isinstance(a, LabeledSet) or isinstance(b, LabeledSet):
        return False
    return a == b


def format_set(value: Any, indent: int = 0, width: int = 72) -> str:
    """Render a value in the paper's brace notation."""
    if not isinstance(value, LabeledSet):
        return repr(value)
    parts = [
        f"{name}: {format_set(element, indent + 2, width)}"
        for name, element in value.items()
    ]
    one_line = "{" + ", ".join(parts) + "}"
    if len(one_line) + indent <= width:
        return one_line
    pad = " " * (indent + 2)
    return "{\n" + ",\n".join(pad + part for part in parts) + "\n" + " " * indent + "}"


# --------------------------------------------------------------------------
# bridging to GSDM
# --------------------------------------------------------------------------

def materialize(store, data: Any, class_name: str = "Object") -> Any:
    """Pour a labeled set (or simple value) into a GSDM store.

    Every nested :class:`LabeledSet` becomes one object with its own
    identity; simple values stay immediates.  Returns the created object
    (or the value itself).
    """
    if isinstance(data, LabeledSet):
        obj = store.instantiate(class_name)
        for name, value in data.items():
            store.bind(obj, name, materialize(store, value, class_name))
        return obj
    if isinstance(data, (dict, list, tuple)):
        return materialize(store, LabeledSet.from_nested(data), class_name)
    if is_immediate(data) or isinstance(data, (GemObject, Ref)):
        return data
    raise CalculusError(f"cannot materialize {type(data).__name__}")


def snapshot(store, target: Any, time: Optional[int] = None) -> Any:
    """Read an object (and everything it reaches) back as labeled sets.

    Captures the state at *time*; shared objects are snapshotted once
    per occurrence (pure STDM cannot express sharing — the deficiency
    section 5.4 records).  Reference cycles raise, as they are
    inexpressible without identity.
    """
    return _snapshot(store, target, time, frozenset())


def _snapshot(store, target: Any, time: Optional[int], seen: frozenset) -> Any:
    value = store.deref(target) if isinstance(target, Ref) else target
    if isinstance(value, GemObject):
        if value.oid in seen:
            raise CalculusError(
                f"cycle through oid {value.oid}: pure STDM cannot express it"
            )
        inner = seen | {value.oid}
        result = LabeledSet()
        for name, element in value.items_at(time):
            result[name] = _snapshot(store, element, time, inner)
        return result
    return value
