"""Query optimization over the set algebra.

Section 4.3: "a declarative semantics allows more flexibility in
evaluating queries, and that flexibility is needed to support reasonable
optimization on queries involving large amounts of data."  Section 6:
"by having a declarative query language, we have the latitude in
processing queries to exploit fully secondary storage layout,
directories, and special hardware."

This optimizer exploits *directories*: where the naive translation would
scan a set binder and filter, it looks for a conjunct of the form

    <var>!<path>  <op>  <expr-over-earlier-vars>

with a directory registered on exactly (that set, that path), and
replaces the scan with an :class:`~repro.stdm.algebra.IndexEq` or
:class:`~repro.stdm.algebra.IndexRange`, consuming the conjunct.  Only
binders whose source is a *constant* set designator are indexed — a
source that is itself a function of other variables names a different
set per binding, so no single directory covers it.

Remaining conjuncts attach as filters at the earliest legal point, same
as the plain translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.objects import GemObject
from ..core.values import Ref
from .algebra import (
    BindScan,
    ConstructResult,
    HashJoin,
    IndexEq,
    IndexRange,
    Plan,
    Unit,
)
from .calculus import Compare, Const, Expr, PathApply, SetQuery, Var
from .translate import _attach_ready_filters, conjuncts, match_join_conjunct


#: work counter for :func:`repro.perf.stats`: a flat ``plans_built``
#: under a repeated workload is the plan memoization demonstrably working
planning_stats = {"plans_built": 0}


def reset_planning_stats() -> None:
    """Zero the planner work counter (scoped-reset hook for perf/obs)."""
    planning_stats["plans_built"] = 0


@dataclass
class IndexChoice:
    """A directory pick for one binder, recorded for `explain`-style tests."""

    var: str
    directory_name: str
    kind: str  # "eq" or "range"
    conjunct: Expr


@dataclass
class JoinChoice:
    """A join-fusion pick for one binder (no directory involved)."""

    var: str
    kind: str  # "hash"
    conjunct: Expr


def _constant_owner_oid(source: Expr) -> Optional[int]:
    """The owner oid if *source* designates one fixed set object."""
    if isinstance(source, Const):
        value = source.value
        if isinstance(value, GemObject):
            return value.oid
        if isinstance(value, Ref):
            return value.oid
    return None


def _match_indexable(
    conjunct: Expr, var: str, bound: set[str]
) -> Optional[tuple[str, PathApply, Expr]]:
    """Match ``var!path <op> expr`` (either side); returns (op, path, expr).

    The non-path side must only use variables bound *before* this
    binder, so its value is available when the index is probed.
    """
    if not isinstance(conjunct, Compare):
        return None
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
    for left, right, op in (
        (conjunct.left, conjunct.right, conjunct.op),
        (conjunct.right, conjunct.left, flip[conjunct.op]),
    ):
        if (
            isinstance(left, PathApply)
            and isinstance(left.base, Var)
            and left.base.name == var
            and all(step.at is None for step in left.path_expr.steps)
            and right.free_vars() <= bound
            and op != "!="
        ):
            return op, left, right
    return None


def optimize(
    query: SetQuery, directory_manager=None
) -> tuple[Plan, list]:
    """Produce an index- and join-aware plan; returns (plan, choices made).

    Per binder, in priority order: a directory pick (which, when the
    probed value uses earlier variables, *is* an index nested-loop
    join), then hash-join fusion for an equality join conjunct with no
    covering directory, then a plain ``BindScan``.
    """
    remaining = conjuncts(query.condition)
    bound: set[str] = set()
    plan: Plan = Unit()
    choices: list = []
    for binder in query.binders:
        indexed = None
        owner_oid = (
            _constant_owner_oid(binder.source)
            if directory_manager is not None
            else None
        )
        if owner_oid is not None:
            indexed = _pick_index(
                directory_manager, owner_oid, binder.var, remaining, bound
            )
        if indexed is not None:
            plan, used_conjunct, choice = indexed(plan)
            remaining = [c for c in remaining if c is not used_conjunct]
            choices.append(choice)
        else:
            fused = _pick_hash_join(binder, remaining, bound)
            if fused is not None:
                member_key, probe_key, conjunct = fused
                plan = HashJoin(
                    plan, binder.var, binder.source,
                    probe_key, member_key, conjunct,
                )
                remaining = [c for c in remaining if c is not conjunct]
                choices.append(JoinChoice(binder.var, "hash", conjunct))
            else:
                plan = BindScan(plan, binder.var, binder.source)
        bound.add(binder.var)
        plan, remaining = _attach_ready_filters(plan, remaining, bound)
    return ConstructResult(plan, query.result), choices


def _pick_hash_join(binder, remaining, bound):
    """Find a fusable equality join conjunct for this binder, if any.

    The binder's source must be constant (the build side is materialized
    once per execution, so it cannot depend on per-row variables).
    """
    if binder.source.free_vars():
        return None
    for conjunct in remaining:
        match = match_join_conjunct(conjunct, binder.var, bound)
        if match is not None:
            member_key, probe_key = match
            return member_key, probe_key, conjunct
    return None


def _pick_index(directory_manager, owner_oid: int, var: str, remaining, bound):
    """Find (directory, conjunct) usable for this binder, if any."""
    for conjunct in remaining:
        match = _match_indexable(conjunct, var, bound)
        if match is None:
            continue
        op, path_apply, value_expr = match
        directory = directory_manager.find_directory(
            owner_oid, path_apply.path_expr
        )
        if directory is None:
            continue

        def build(child: Plan, *, _op=op, _dir=directory, _val=value_expr,
                  _conj=conjunct):
            if _op == "==":
                node: Plan = IndexEq(child, var, _dir, _val)
                kind = "eq"
            elif _op in ("<", "<="):
                node = IndexRange(
                    child, var, _dir, low=None, high=_val,
                    include_high=(_op == "<="),
                )
                kind = "range"
            else:  # > or >=
                node = IndexRange(
                    child, var, _dir, low=_val, high=None,
                    include_low=(_op == ">="),
                )
                kind = "range"
            return node, _conj, IndexChoice(var, _dir.name, kind, _conj)

        return build
    return None


def best_plan(query: SetQuery, directory_manager=None) -> Plan:
    """The plan the system would run: indexes when directories exist,
    hash-join fusion either way."""
    planning_stats["plans_built"] += 1
    plan, _ = optimize(query, directory_manager)
    return plan
