"""The STDM set algebra: executable query plans.

"We have developed a set algebra, and an algorithm to translate a
set-calculus expression to a set-algebra expression" (section 5.1) —
this module is the algebra half.  A plan is a tree of operators over
streams of variable bindings:

* :class:`Unit` — the empty binding (the stream's seed);
* :class:`BindScan` — the dependent product: for each input binding,
  bind a variable to each member of a set-valued expression;
* :class:`IndexEq` / :class:`IndexRange` — associative variants that
  draw members from a directory instead of scanning;
* :class:`Filter` — restriction by a calculus predicate;
* :class:`ConstructResult` — build the output tuples.

Each node counts the rows it produces, so plans self-report their work
(the benchmarks compare scan vs. index plans with these counters).
Materialized set operations (union, difference, intersection) with
entity-identity semantics round out the algebra.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from ..errors import DirectoryError
from .calculus import NOVALUE, Expr, QueryContext, value_equal


class Plan:
    """Base class for algebra operators."""

    def __init__(self) -> None:
        self.rows_out = 0

    def rows(self, ctx: QueryContext) -> Iterator[dict[str, Any]]:
        """Stream of variable bindings; subclasses implement `_rows`."""
        for binding in self._rows(ctx):
            self.rows_out += 1
            yield binding

    def _rows(self, ctx: QueryContext) -> Iterator[dict[str, Any]]:
        raise NotImplementedError

    def run(self, ctx: QueryContext) -> list[Any]:
        """Execute to completion; meaningful only on a result-producing root."""
        return [binding for binding in self.rows(ctx)]

    def reset_counters(self) -> None:
        """Zero `rows_out` on this node and its inputs."""
        self.rows_out = 0
        for child in self.children():
            child.reset_counters()

    def children(self) -> Sequence["Plan"]:
        """Input plans."""
        return ()

    def explain(self, indent: int = 0) -> str:
        """A printable plan tree with row counters."""
        line = " " * indent + f"{self.describe()}  [rows_out={self.rows_out}]"
        return "\n".join(
            [line] + [child.explain(indent + 2) for child in self.children()]
        )

    def describe(self) -> str:
        """One-line operator description."""
        return type(self).__name__


class Unit(Plan):
    """Yields a single empty binding — the seed of every plan."""

    def _rows(self, ctx):
        yield {}

    def describe(self):
        return "Unit"


class BindScan(Plan):
    """Dependent product: bind *var* to each member of *source*.

    The source expression may use variables bound upstream, which is how
    the calculus's dependent binders (``m ∈ d!Managers``) execute.
    """

    def __init__(self, child: Plan, var: str, source: Expr) -> None:
        super().__init__()
        self.child = child
        self.var = var
        self.source = source

    def _rows(self, ctx):
        for binding in self.child.rows(ctx):
            collection = self.source.evaluate(ctx, binding)
            for member in ctx.members(collection):
                out = dict(binding)
                out[self.var] = member
                yield out

    def children(self):
        return (self.child,)

    def describe(self):
        return f"BindScan {self.var} ∈ {self.source!r}"


class IndexEq(Plan):
    """Associative access: bind *var* to members whose key equals a value."""

    def __init__(self, child: Plan, var: str, directory, value: Expr) -> None:
        super().__init__()
        self.child = child
        self.var = var
        self.directory = directory
        self.value = value

    def _rows(self, ctx):
        for binding in self.child.rows(ctx):
            key = self.value.evaluate(ctx, binding)
            if key is NOVALUE:
                continue  # no-value fails every comparison, = included
            try:
                member_oids = self.directory.lookup(key, ctx.time)
            except DirectoryError:
                continue  # unindexable probe value: = can never hold
            for oid in member_oids:
                ctx.charge()  # index probes bypass members(): meter here
                out = dict(binding)
                out[self.var] = ctx.store.object(oid)
                yield out

    def children(self):
        return (self.child,)

    def describe(self):
        return (
            f"IndexEq {self.var} via {self.directory.name!r} "
            f"on !{self.directory.path} = {self.value!r}"
        )


class IndexRange(Plan):
    """Associative access by key range (open bounds allowed)."""

    def __init__(
        self,
        child: Plan,
        var: str,
        directory,
        low: Optional[Expr] = None,
        high: Optional[Expr] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> None:
        super().__init__()
        self.child = child
        self.var = var
        self.directory = directory
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high

    def _rows(self, ctx):
        for binding in self.child.rows(ctx):
            low = self.low.evaluate(ctx, binding) if self.low is not None else None
            high = self.high.evaluate(ctx, binding) if self.high is not None else None
            if low is NOVALUE or high is NOVALUE:
                continue  # no-value fails every comparison (§5.2)
            try:
                member_oids = list(
                    self.directory.range(
                        low, high, ctx.time, self.include_low, self.include_high
                    )
                )
            except DirectoryError:
                continue  # unindexable bound: the comparison can never hold
            for oid in member_oids:
                ctx.charge()
                out = dict(binding)
                out[self.var] = ctx.store.object(oid)
                yield out

    def children(self):
        return (self.child,)

    def describe(self):
        lo = "(" if not self.include_low else "["
        hi = ")" if not self.include_high else "]"
        return (
            f"IndexRange {self.var} via {self.directory.name!r} "
            f"on !{self.directory.path} {lo}{self.low!r}, {self.high!r}{hi}"
        )


class Filter(Plan):
    """Restriction: keep bindings satisfying a calculus predicate."""

    def __init__(self, child: Plan, predicate: Expr) -> None:
        super().__init__()
        self.child = child
        self.predicate = predicate

    def _rows(self, ctx):
        for binding in self.child.rows(ctx):
            if bool(self.predicate.evaluate(ctx, binding)):
                yield binding

    def children(self):
        return (self.child,)

    def describe(self):
        return f"Filter {self.predicate!r}"


class ConstructResult(Plan):
    """Build output values from final bindings (the result template)."""

    def __init__(self, child: Plan, result) -> None:
        super().__init__()
        self.child = child
        self.result = result

    def _rows(self, ctx):
        for binding in self.child.rows(ctx):
            if isinstance(self.result, dict):
                yield {
                    label: expr.evaluate(ctx, binding)
                    for label, expr in self.result.items()
                }
            else:
                yield self.result.evaluate(ctx, binding)

    def children(self):
        return (self.child,)

    def describe(self):
        return f"Construct {self.result!r}"


# --------------------------------------------------------------------------
# materialized set operations
# --------------------------------------------------------------------------

def _contains(members: list, value: Any) -> bool:
    return any(value_equal(value, m) for m in members)


def union(a, b) -> list:
    """Members of *a* or *b*, identity-deduplicated, order-preserving."""
    result = list(a)
    for member in b:
        if not _contains(result, member):
            result.append(member)
    return result


def intersection(a, b) -> list:
    """Members of *a* also in *b*."""
    b_members = list(b)
    return [m for m in a if _contains(b_members, m)]


def difference(a, b) -> list:
    """Members of *a* not in *b*."""
    b_members = list(b)
    return [m for m in a if not _contains(b_members, m)]


def deduplicate(members) -> list:
    """Identity-deduplicate a member list."""
    result: list = []
    for member in members:
        if not _contains(result, member):
            result.append(member)
    return result


def plan_depth(plan: Plan) -> int:
    """Number of operators along the plan's spine (for tests)."""
    depth = 1
    children = plan.children()
    if not children:
        return depth
    return 1 + max(plan_depth(child) for child in children)


def collect_operators(plan: Plan) -> list[Plan]:
    """Flatten a plan tree into a list (root first)."""
    nodes = [plan]
    for child in plan.children():
        nodes.extend(collect_operators(child))
    return nodes
