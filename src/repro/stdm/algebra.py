"""The STDM set algebra: executable query plans.

"We have developed a set algebra, and an algorithm to translate a
set-calculus expression to a set-algebra expression" (section 5.1) —
this module is the algebra half.  A plan is a tree of operators over
streams of variable bindings:

* :class:`Unit` — the empty binding (the stream's seed);
* :class:`BindScan` — the dependent product: for each input binding,
  bind a variable to each member of a set-valued expression;
* :class:`IndexEq` / :class:`IndexRange` — associative variants that
  draw members from a directory instead of scanning;
* :class:`HashJoin` — a fused equality join: the build side is keyed
  once, each input row probes instead of rescanning (O(n+m), not O(n·m));
* :class:`Filter` — restriction by a calculus predicate;
* :class:`ConstructResult` — build the output tuples.

Plans execute in one of two modes.  ``"row"`` streams one dict per
binding (the original interpreter, kept as the differential baseline);
``"vectorized"`` — the default — streams :class:`BindingBatch` blocks of
:data:`DEFAULT_BATCH_SIZE` rows, evaluating predicates and paths over
whole columns via :meth:`Expr.evaluate_column` so interpreter dispatch
is amortized out of the inner loop.  Both modes produce identical
results, identical ``rows_out`` totals and identical fuel charges; the
``repro.check`` differential oracle holds them to that.

Each node counts the rows it produces, so plans self-report their work
(the benchmarks compare scan vs. index vs. fused plans with these
counters).  Materialized set operations (union, difference,
intersection) with entity-identity semantics round out the algebra.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from ..core.objects import GemObject
from ..core.values import Ref
from ..errors import DirectoryError
from .calculus import BindingBatch, Expr, NOVALUE, QueryContext, value_equal

#: Rows per batch in vectorized mode.  Big enough to amortize the
#: per-batch Python overhead (a few dict/list constructions), small
#: enough that budget kills land within one batch of the row-mode point
#: and memory stays bounded on wide joins.
DEFAULT_BATCH_SIZE = 1024

#: Reserved column carrying constructed results through batch streams.
RESULT_COLUMN = "__result__"

EXECUTOR_MODES = ("row", "vectorized")

_EXECUTOR_MODE = "vectorized"


def executor_mode() -> str:
    """The process-wide default execution mode for :meth:`Plan.run`."""
    return _EXECUTOR_MODE


def set_executor_mode(mode: str) -> str:
    """Set the default execution mode; returns the previous one.

    Plan caches must key on this (the ``perf`` memo keys carry an
    executor-mode token) since the mode changes how a cached plan runs.
    """
    global _EXECUTOR_MODE
    if mode not in EXECUTOR_MODES:
        raise ValueError(f"unknown executor mode {mode!r}")
    previous = _EXECUTOR_MODE
    _EXECUTOR_MODE = mode
    return previous


_UNSET = object()


def _same_key(a: Any, b: Any) -> bool:
    """Conservative "same probe key" test for consecutive-key reuse."""
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    try:
        return bool(a == b)
    except Exception:
        return False


def _expand(
    batch: BindingBatch,
    take: list[int],
    var: str,
    values: list[Any],
    batch_size: int,
) -> Iterator[BindingBatch]:
    """Extend *batch*: output row j is input row ``take[j]`` plus
    ``var=values[j]``, re-chunked to at most *batch_size* rows."""
    total = len(values)
    columns = batch.columns
    for start in range(0, total, batch_size):
        stop = min(start + batch_size, total)
        chunk = take[start:stop]
        out = {
            name: [column[i] for i in chunk]
            for name, column in columns.items()
        }
        out[var] = values[start:stop]
        yield BindingBatch(out, stop - start)


class Plan:
    """Base class for algebra operators."""

    def __init__(self) -> None:
        self.rows_out = 0

    def rows(self, ctx: QueryContext) -> Iterator[dict[str, Any]]:
        """Stream of variable bindings; subclasses implement `_rows`."""
        for binding in self._rows(ctx):
            self.rows_out += 1
            yield binding

    def _rows(self, ctx: QueryContext) -> Iterator[dict[str, Any]]:
        raise NotImplementedError

    def batches(
        self, ctx: QueryContext, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[BindingBatch]:
        """Stream of binding batches; subclasses implement `_batches`."""
        for batch in self._batches(ctx, batch_size):
            if batch.size:
                self.rows_out += batch.size
                yield batch

    def _batches(
        self, ctx: QueryContext, batch_size: int
    ) -> Iterator[BindingBatch]:
        # Fallback-to-row rule: an operator with no columnar
        # implementation still composes in a vectorized plan by chunking
        # its row stream.  (All built-in operators override this.)
        buffer: list[dict[str, Any]] = []
        for binding in self._rows(ctx):
            buffer.append(binding)
            if len(buffer) >= batch_size:
                yield BindingBatch.from_rows(buffer)
                buffer = []
        if buffer:
            yield BindingBatch.from_rows(buffer)

    def run(self, ctx: QueryContext, mode: Optional[str] = None) -> list[Any]:
        """Execute to completion; meaningful only on a result-producing root.

        *mode* overrides the process-wide :func:`executor_mode` —
        ``"row"`` for the one-dict-per-binding interpreter, or
        ``"vectorized"`` for the batched executor.
        """
        if mode is None:
            mode = _EXECUTOR_MODE
        if mode == "row":
            return [binding for binding in self.rows(ctx)]
        if mode != "vectorized":
            raise ValueError(f"unknown executor mode {mode!r}")
        results: list[Any] = []
        for batch in self.batches(ctx):
            column = batch.columns.get(RESULT_COLUMN)
            if column is not None:
                results.extend(column)
            else:
                results.extend(batch.rows())
        return results

    def reset_counters(self) -> None:
        """Zero `rows_out` on this node and its inputs."""
        self.rows_out = 0
        for child in self.children():
            child.reset_counters()

    def children(self) -> Sequence["Plan"]:
        """Input plans."""
        return ()

    def explain(self, indent: int = 0) -> str:
        """A printable plan tree with row counters."""
        line = " " * indent + f"{self.describe()}  [rows_out={self.rows_out}]"
        return "\n".join(
            [line] + [child.explain(indent + 2) for child in self.children()]
        )

    def describe(self) -> str:
        """One-line operator description."""
        return type(self).__name__


class Unit(Plan):
    """Yields a single empty binding — the seed of every plan."""

    def _rows(self, ctx):
        yield {}

    def _batches(self, ctx, batch_size):
        yield BindingBatch({}, 1)

    def describe(self):
        return "Unit"


class BindScan(Plan):
    """Dependent product: bind *var* to each member of *source*.

    The source expression may use variables bound upstream, which is how
    the calculus's dependent binders (``m ∈ d!Managers``) execute.
    """

    def __init__(self, child: Plan, var: str, source: Expr) -> None:
        super().__init__()
        self.child = child
        self.var = var
        self.source = source

    def _rows(self, ctx):
        for binding in self.child.rows(ctx):
            collection = self.source.evaluate(ctx, binding)
            for member in ctx.members(collection):
                out = dict(binding)
                out[self.var] = member
                yield out

    def _batches(self, ctx, batch_size):
        var = self.var
        source = self.source
        constant = not source.free_vars()
        members: Optional[list[Any]] = None
        for batch in self.child.batches(ctx, batch_size):
            take: list[int] = []
            values: list[Any] = []
            if constant:
                # Hoist: a constant source is materialized once per
                # execution; fuel still charges per member *per input
                # row*, exactly as the row-mode members() stream does.
                if members is None:
                    collection = source.evaluate(ctx, {})
                    members = ctx.raw_member_list(collection)
                ctx.charge(len(members) * batch.size)
                count = len(members)
                for i in range(batch.size):
                    take.extend([i] * count)
                    values.extend(members)
            else:
                charged = 0
                column = source.evaluate_column(ctx, batch)
                for i, collection in enumerate(column):
                    drawn = ctx.raw_member_list(collection)
                    charged += len(drawn)
                    take.extend([i] * len(drawn))
                    values.extend(drawn)
                ctx.charge(charged)
            yield from _expand(batch, take, var, values, batch_size)

    def children(self):
        return (self.child,)

    def describe(self):
        return f"BindScan {self.var} ∈ {self.source!r}"


class IndexEq(Plan):
    """Associative access: bind *var* to members whose key equals a value.

    When *value* refers to earlier variables, this is the probe side of
    an index nested-loop join — the optimizer emits exactly that shape
    for join conjuncts covered by a directory.
    """

    def __init__(self, child: Plan, var: str, directory, value: Expr) -> None:
        super().__init__()
        self.child = child
        self.var = var
        self.directory = directory
        self.value = value

    def _probe_oids(self, ctx, key) -> Sequence[int]:
        if key is NOVALUE:
            return ()  # no-value fails every comparison, = included
        try:
            return self.directory.lookup(key, ctx.time)
        except DirectoryError:
            return ()  # unindexable probe value: = can never hold

    def _rows(self, ctx):
        for binding in self.child.rows(ctx):
            key = self.value.evaluate(ctx, binding)
            for oid in self._probe_oids(ctx, key):
                ctx.charge()  # index probes bypass members(): meter here
                out = dict(binding)
                out[self.var] = ctx.store.object(oid)
                yield out

    def _batches(self, ctx, batch_size):
        store_object = ctx.store.object
        value = self.value
        constant = not value.free_vars()
        const_members: Optional[list[Any]] = None
        last_key: Any = _UNSET
        last_members: Optional[list[Any]] = None
        for batch in self.child.batches(ctx, batch_size):
            if constant:
                if const_members is None:
                    key = value.evaluate(ctx, {})
                    const_members = [
                        store_object(oid)
                        for oid in self._probe_oids(ctx, key)
                    ]
                keys = None
            else:
                keys = value.evaluate_column(ctx, batch)
            take: list[int] = []
            values: list[Any] = []
            for i in range(batch.size):
                if constant:
                    matched = const_members
                else:
                    key = keys[i]
                    if last_members is not None and _same_key(key, last_key):
                        matched = last_members  # consecutive-key reuse
                    else:
                        matched = [
                            store_object(oid)
                            for oid in self._probe_oids(ctx, key)
                        ]
                        last_key, last_members = key, matched
                if matched:
                    take.extend([i] * len(matched))
                    values.extend(matched)
            ctx.charge(len(values))
            yield from _expand(batch, take, self.var, values, batch_size)

    def children(self):
        return (self.child,)

    def describe(self):
        return (
            f"IndexEq {self.var} via {self.directory.name!r} "
            f"on !{self.directory.path} = {self.value!r}"
        )


class IndexRange(Plan):
    """Associative access by key range (open bounds allowed)."""

    def __init__(
        self,
        child: Plan,
        var: str,
        directory,
        low: Optional[Expr] = None,
        high: Optional[Expr] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> None:
        super().__init__()
        self.child = child
        self.var = var
        self.directory = directory
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high

    def _bounds(self, ctx, binding) -> Any:
        low = self.low.evaluate(ctx, binding) if self.low is not None else None
        high = self.high.evaluate(ctx, binding) if self.high is not None else None
        if low is NOVALUE or high is NOVALUE:
            return None  # no-value fails every comparison (§5.2)
        return low, high

    def _open_range(self, ctx, low, high):
        """Start a range scan; (first_oid, rest) or None when empty/unindexable."""
        stream = self.directory.range(
            low, high, ctx.time, self.include_low, self.include_high
        )
        try:
            first = next(stream)
        except StopIteration:
            return None
        except DirectoryError:
            return None  # unindexable bound: the comparison can never hold
        return first, stream

    def _rows(self, ctx):
        store_object = ctx.store.object
        last_bounds: Any = _UNSET
        cached: Optional[list[int]] = None
        for binding in self.child.rows(ctx):
            bounds = self._bounds(ctx, binding)
            if bounds is None:
                continue
            if cached is not None and _same_key(bounds, last_bounds):
                # identical consecutive bounds reuse the previous probe
                for oid in cached:
                    ctx.charge()
                    out = dict(binding)
                    out[self.var] = store_object(oid)
                    yield out
                continue
            last_bounds = bounds
            opened = self._open_range(ctx, *bounds)
            if opened is None:
                cached = []
                continue
            first, rest = opened
            # stream the range — rows flow (and fuel meters) as the scan
            # advances instead of after a full materialization
            collected = [first]
            ctx.charge()
            out = dict(binding)
            out[self.var] = store_object(first)
            yield out
            for oid in rest:
                collected.append(oid)
                ctx.charge()
                out = dict(binding)
                out[self.var] = store_object(oid)
                yield out
            cached = collected

    def _batches(self, ctx, batch_size):
        store_object = ctx.store.object
        last_bounds: Any = _UNSET
        cached: Optional[list[Any]] = None
        for batch in self.child.batches(ctx, batch_size):
            take: list[int] = []
            values: list[Any] = []
            for i in range(batch.size):
                bounds = self._bounds(ctx, batch.row(i))
                if bounds is None:
                    continue
                if cached is not None and _same_key(bounds, last_bounds):
                    matched = cached
                else:
                    last_bounds = bounds
                    opened = self._open_range(ctx, *bounds)
                    if opened is None:
                        cached = []
                        continue
                    first, rest = opened
                    matched = [store_object(first)]
                    matched.extend(store_object(oid) for oid in rest)
                    cached = matched
                if matched:
                    take.extend([i] * len(matched))
                    values.extend(matched)
            ctx.charge(len(values))
            yield from _expand(batch, take, self.var, values, batch_size)

    def children(self):
        return (self.child,)

    def describe(self):
        lo = "(" if not self.include_low else "["
        hi = ")" if not self.include_high else "]"
        return (
            f"IndexRange {self.var} via {self.directory.name!r} "
            f"on !{self.directory.path} {lo}{self.low!r}, {self.high!r}{hi}"
        )


# --------------------------------------------------------------------------
# hash keys with value_equal semantics
# --------------------------------------------------------------------------

_UNHASHABLE = object()
_OID_KEY = object()  # tag for oid-keyed entries; never equals a user value


def _unmatchable(value: Any) -> bool:
    """True for values that fail *every* ``value_equal`` comparison."""
    return value is NOVALUE or (isinstance(value, float) and value != value)


def _hash_key(value: Any) -> Any:
    """A dict/set key consistent with :func:`value_equal`, or _UNHASHABLE.

    Objects and Refs key by oid (entity identity); everything else keys
    by the value itself (Python guarantees ``hash`` consistency with
    ``==`` across int/bool/float).  Callers must screen NOVALUE and NaN
    first via :func:`_unmatchable`.
    """
    if isinstance(value, (GemObject, Ref)):
        return (_OID_KEY, value.oid)
    try:
        hash(value)
    except TypeError:
        return _UNHASHABLE
    return value


class HashJoin(Plan):
    """Fused equality join: build the inner side once, probe per row.

    The optimizer rewrites a dependent ``BindScan`` + ``Filter`` pair
    whose conjunct equates an expression over *var* (``member_key``)
    with an expression over earlier variables (``probe_key``) — the
    O(n·m) nested rescan — into this operator.  The inner collection is
    materialized and keyed once per execution, charging one fuel unit
    per member (one scan of the build side); each input row then emits
    its matches in member order, charging one unit per emitted candidate
    (the ``IndexEq`` precedent: probes bypass ``members()``).

    Keys follow ``value_equal``: objects/Refs join by oid, NOVALUE and
    NaN match nothing, and unhashable key values fall back to a linear
    ``value_equal`` scan so exotic :class:`Apply` keys stay correct.
    """

    def __init__(
        self,
        child: Plan,
        var: str,
        source: Expr,
        probe_key: Expr,
        member_key: Expr,
        conjunct: Optional[Expr] = None,
    ) -> None:
        super().__init__()
        self.child = child
        self.var = var
        self.source = source
        self.probe_key = probe_key
        self.member_key = member_key
        self.conjunct = conjunct

    def _build(self, ctx):
        collection = self.source.evaluate(ctx, {})
        members = list(ctx.members(collection))  # one charged build-side scan
        batch = BindingBatch({self.var: members}, len(members))
        keys = self.member_key.evaluate_column(ctx, batch)
        table: dict[Any, list] = {}
        fallback: list[tuple[int, Any, Any]] = []
        pairs: list[tuple[int, Any, Any]] = []
        for pos, (member, key) in enumerate(zip(members, keys)):
            if _unmatchable(key):
                continue
            pairs.append((pos, member, key))
            hkey = _hash_key(key)
            if hkey is _UNHASHABLE:
                fallback.append((pos, member, key))
            else:
                table.setdefault(hkey, []).append((pos, member))
        return table, fallback, pairs

    def _matches(self, built, key) -> Sequence[Any]:
        """Members joining *key*, in member (build) order."""
        table, fallback, pairs = built
        if _unmatchable(key):
            return ()
        hkey = _hash_key(key)
        if hkey is _UNHASHABLE:
            # unhashable probe: row-mode semantics are a full scan
            return [m for _pos, m, k in pairs if value_equal(key, k)]
        bucket = table.get(hkey, ())
        if not fallback:
            return [m for _pos, m in bucket]
        extra = [
            (pos, m) for pos, m, k in fallback if value_equal(key, k)
        ]
        if not extra:
            return [m for _pos, m in bucket]
        merged = sorted([*bucket, *extra], key=lambda pm: pm[0])
        return [m for _pos, m in merged]

    def _rows(self, ctx):
        built = None
        for binding in self.child.rows(ctx):
            if built is None:
                built = self._build(ctx)  # lazy: no input rows, no build
            key = self.probe_key.evaluate(ctx, binding)
            for member in self._matches(built, key):
                ctx.charge()
                out = dict(binding)
                out[self.var] = member
                yield out

    def _batches(self, ctx, batch_size):
        built = None
        last_key: Any = _UNSET
        last_matches: Optional[Sequence[Any]] = None
        for batch in self.child.batches(ctx, batch_size):
            if built is None:
                built = self._build(ctx)
            keys = self.probe_key.evaluate_column(ctx, batch)
            take: list[int] = []
            values: list[Any] = []
            for i, key in enumerate(keys):
                if last_matches is not None and _same_key(key, last_key):
                    matched = last_matches
                else:
                    matched = self._matches(built, key)
                    last_key, last_matches = key, matched
                if matched:
                    take.extend([i] * len(matched))
                    values.extend(matched)
            ctx.charge(len(values))
            yield from _expand(batch, take, self.var, values, batch_size)

    def children(self):
        return (self.child,)

    def describe(self):
        return (
            f"HashJoin {self.var} ∈ {self.source!r} "
            f"on {self.member_key!r} == {self.probe_key!r}"
        )


class Filter(Plan):
    """Restriction: keep bindings satisfying a calculus predicate."""

    def __init__(self, child: Plan, predicate: Expr) -> None:
        super().__init__()
        self.child = child
        self.predicate = predicate

    def _rows(self, ctx):
        for binding in self.child.rows(ctx):
            if bool(self.predicate.evaluate(ctx, binding)):
                yield binding

    def _batches(self, ctx, batch_size):
        predicate = self.predicate
        for batch in self.child.batches(ctx, batch_size):
            column = predicate.evaluate_column(ctx, batch)
            # boolean mask + compress keeps the whole keep/gather loop
            # at C speed (truthiness, count, and per-column gather)
            mask = list(map(bool, column))
            live = sum(mask)
            if live == batch.size:
                yield batch
            elif live:
                yield batch.select_mask(mask, live)

    def children(self):
        return (self.child,)

    def describe(self):
        return f"Filter {self.predicate!r}"


class ConstructResult(Plan):
    """Build output values from final bindings (the result template)."""

    def __init__(self, child: Plan, result) -> None:
        super().__init__()
        self.child = child
        self.result = result

    def _rows(self, ctx):
        for binding in self.child.rows(ctx):
            if isinstance(self.result, dict):
                yield {
                    label: expr.evaluate(ctx, binding)
                    for label, expr in self.result.items()
                }
            else:
                yield self.result.evaluate(ctx, binding)

    def _batches(self, ctx, batch_size):
        result = self.result
        if isinstance(result, dict):
            items = list(result.items())
            labels = [label for label, _ in items]
            for batch in self.child.batches(ctx, batch_size):
                columns = [
                    expr.evaluate_column(ctx, batch) for _, expr in items
                ]
                # dict(zip(...)) builds each row at C speed — far cheaper
                # than a per-row dict comprehension indexing the columns
                if columns:
                    built = [
                        dict(zip(labels, row_values))
                        for row_values in zip(*columns)
                    ]
                else:
                    built = [{} for _ in range(batch.size)]
                yield BindingBatch({RESULT_COLUMN: built}, batch.size)
        else:
            for batch in self.child.batches(ctx, batch_size):
                column = result.evaluate_column(ctx, batch)
                yield BindingBatch({RESULT_COLUMN: list(column)}, batch.size)

    def children(self):
        return (self.child,)

    def describe(self):
        return f"Construct {self.result!r}"


# --------------------------------------------------------------------------
# materialized set operations
# --------------------------------------------------------------------------

def _contains(members: list, value: Any) -> bool:
    return any(value_equal(value, m) for m in members)


class _MemberIndex:
    """Hash-accelerated ``value_equal`` membership over a member list.

    Keys members by oid/value hash; unhashable members land in a
    fallback list scanned with :func:`value_equal`.  NOVALUE and NaN are
    never members of anything (they fail every comparison), so they are
    neither indexed nor matched.
    """

    __slots__ = ("keyed", "unkeyed")

    def __init__(self, members=()) -> None:
        self.keyed: set = set()
        self.unkeyed: list = []
        for member in members:
            self.add(member)

    def add(self, member: Any) -> None:
        if _unmatchable(member):
            return
        hkey = _hash_key(member)
        if hkey is _UNHASHABLE:
            self.unkeyed.append(member)
        else:
            self.keyed.add(hkey)

    def __contains__(self, value: Any) -> bool:
        if _unmatchable(value):
            return False
        hkey = _hash_key(value)
        if hkey is _UNHASHABLE:
            return _contains(self.unkeyed, value)
        if hkey in self.keyed:
            return True
        # an unhashable member may still value_equal a hashable probe
        return bool(self.unkeyed) and _contains(self.unkeyed, value)


def union(a, b) -> list:
    """Members of *a* or *b*, identity-deduplicated, order-preserving."""
    result = list(a)
    index = _MemberIndex(result)
    for member in b:
        if member not in index:
            result.append(member)
            index.add(member)
    return result


def intersection(a, b) -> list:
    """Members of *a* also in *b*."""
    index = _MemberIndex(b)
    return [m for m in a if m in index]


def difference(a, b) -> list:
    """Members of *a* not in *b*."""
    index = _MemberIndex(b)
    return [m for m in a if m not in index]


def deduplicate(members) -> list:
    """Identity-deduplicate a member list."""
    result: list = []
    index = _MemberIndex()
    for member in members:
        if member not in index:
            result.append(member)
            index.add(member)
    return result


def plan_depth(plan: Plan) -> int:
    """Number of operators along the plan's spine (for tests)."""
    depth = 1
    children = plan.children()
    if not children:
        return depth
    return 1 + max(plan_depth(child) for child in children)


def collect_operators(plan: Plan) -> list[Plan]:
    """Flatten a plan tree into a list (root first)."""
    nodes = [plan]
    for child in plan.children():
        nodes.extend(collect_operators(child))
    return nodes
