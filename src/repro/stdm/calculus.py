"""The STDM set calculus (section 5.1).

The paper's example query —

    {{Emp: e, Mgr: m} where
      (e ∈ X!Employees) and (d ∈ X!Departments)
      [(m ∈ d!Managers) and (d!Name ∈ e!Depts) and
       (e!Salary > 0.10 * d!Budget)]}

— is a :class:`SetQuery`: a result constructor, a list of *binders*
(each binding a variable to the members of a set-valued expression,
which may be a function of earlier variables — "a distinguishing feature
of our calculus"), and a condition.

Expressions build with Python operators: ``e.path("Salary") >
d.path("Budget") * 0.10``, ``d.path("Name").in_(e.path("Depts"))``,
``&``/``|``/``~`` for the connectives, and :class:`Apply` wraps an
arbitrary Python function for the "general computations in the
conditions" the paper wants (section 5.4).

:meth:`SetQuery.evaluate` is the *reference* nested-loop interpreter:
the algebra (:mod:`repro.stdm.algebra`) and the translator are tested
for equivalence against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Sequence

from ..core.objects import GemObject
from ..core.paths import Path, parse_path
from ..core.timedial import TimeDial
from ..core.values import Ref
from ..errors import CalculusError
from .sets import LabeledSet


class _NoValue:
    """Result of a path that does not resolve; fails every condition."""

    _instance: "_NoValue | None" = None

    def __new__(cls) -> "_NoValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<no-value>"


NOVALUE = _NoValue()


class QueryContext:
    """Everything evaluation needs: the store, a time, and directories.

    When a *budget* is attached, evaluation meters its own fuel: one
    unit per member drawn from any set (scans, membership tests and
    index probes alike), so declarative work is charged by what it
    actually examines rather than pre-charged by collection size.

    ``examined`` counts every charged unit whether or not a budget is
    attached — it is the candidate count the slow-query log reports,
    the number that separates an index probe from a full scan.
    """

    def __init__(
        self,
        store,
        time: Optional[int] = None,
        directory_manager=None,
        budget=None,
    ):
        self.store = store
        self.time = time
        self.directory_manager = directory_manager
        self.budget = budget
        self.examined = 0
        self.dial = TimeDial()
        self.dial.set(time)

    def at(self, time: Optional[int]) -> "QueryContext":
        """A context like this one, dialed to *time*."""
        return QueryContext(self.store, time, self.directory_manager, self.budget)

    def charge(self, units: int = 1) -> None:
        """Count examined candidates; spend fuel when a budget is attached."""
        self.examined += units
        if self.budget is not None:
            self.budget.charge_steps(units)

    def members(self, collection: Any) -> Iterator[Any]:
        """Iterate the members of any set-like value.

        GSDM set objects yield their live element values (dereferenced);
        labeled sets yield their values; plain Python iterables pass
        through.  Each member drawn costs one unit of query fuel.
        """
        if self.budget is None:
            for member in self._raw_members(collection):
                self.examined += 1
                yield member
            return
        for member in self._raw_members(collection):
            self.examined += 1
            self.budget.charge_steps()
            yield member

    def _raw_members(self, collection: Any) -> Iterator[Any]:
        if isinstance(collection, Ref):
            collection = self.store.deref(collection)
        if isinstance(collection, GemObject):
            yield from self.store.members_of(collection, self.time)
        elif isinstance(collection, LabeledSet):
            yield from collection.values()
        elif isinstance(collection, (list, tuple, set, frozenset)):
            yield from collection
        elif collection is NOVALUE or collection is None:
            return
        else:
            raise CalculusError(f"{collection!r} is not a set-like value")


def value_equal(a: Any, b: Any) -> bool:
    """Equality with entity identity: objects compare by oid."""
    a_oid = a.oid if isinstance(a, (GemObject, Ref)) else None
    b_oid = b.oid if isinstance(b, (GemObject, Ref)) else None
    if a_oid is not None or b_oid is not None:
        return a_oid == b_oid
    if a is NOVALUE or b is NOVALUE:
        return False
    return a == b


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------

class Expr:
    """Base class for calculus expressions; combinators build the AST."""

    def evaluate(self, ctx: QueryContext, bindings: dict[str, Any]) -> Any:
        """The expression's value under *bindings*."""
        raise NotImplementedError

    def free_vars(self) -> frozenset[str]:
        """Variables this expression refers to."""
        raise NotImplementedError

    # -- combinators ----------------------------------------------------------

    def path(self, path_text: "str | Path") -> "PathApply":
        """Apply a path: ``e.path("Salary")`` is the paper's ``e!Salary``."""
        return PathApply(self, path_text)

    def in_(self, collection: "Expr | Any") -> "In":
        """Membership: ``x.in_(s)`` is ``x ∈ s``."""
        return In(self, as_expr(collection))

    def subset_of(self, other: "Expr | Any") -> "Subset":
        """``x.subset_of(s)`` is ``x ⊆ s`` (one quantifier, not two)."""
        return Subset(self, as_expr(other))

    def eq(self, other: Any) -> "Compare":
        """Equality comparison (named to keep ``==`` for AST identity)."""
        return Compare("==", self, as_expr(other))

    def ne(self, other: Any) -> "Compare":
        """Inequality comparison."""
        return Compare("!=", self, as_expr(other))

    def __lt__(self, other: Any) -> "Compare":
        return Compare("<", self, as_expr(other))

    def __le__(self, other: Any) -> "Compare":
        return Compare("<=", self, as_expr(other))

    def __gt__(self, other: Any) -> "Compare":
        return Compare(">", self, as_expr(other))

    def __ge__(self, other: Any) -> "Compare":
        return Compare(">=", self, as_expr(other))

    def __add__(self, other: Any) -> "BinOp":
        return BinOp("+", self, as_expr(other))

    def __sub__(self, other: Any) -> "BinOp":
        return BinOp("-", self, as_expr(other))

    def __mul__(self, other: Any) -> "BinOp":
        return BinOp("*", self, as_expr(other))

    def __truediv__(self, other: Any) -> "BinOp":
        return BinOp("/", self, as_expr(other))

    def __rmul__(self, other: Any) -> "BinOp":
        return BinOp("*", as_expr(other), self)

    def __and__(self, other: "Expr") -> "And":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


def as_expr(value: Any) -> Expr:
    """Lift a plain value to a :class:`Const` unless already an Expr."""
    return value if isinstance(value, Expr) else Const(value)


@dataclass(frozen=True)
class Const(Expr):
    """A literal value (or a direct reference to a set object)."""

    value: Any

    def evaluate(self, ctx, bindings):
        return self.value

    def free_vars(self):
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A calculus variable, bound by a binder."""

    name: str

    def evaluate(self, ctx, bindings):
        if self.name not in bindings:
            raise CalculusError(f"unbound variable {self.name!r}")
        return bindings[self.name]

    def free_vars(self):
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


class PathApply(Expr):
    """``base!component!component`` — navigation from an expression."""

    def __init__(self, base: Expr, path: "str | Path") -> None:
        self.base = base
        self.path_expr: Path = parse_path(path) if isinstance(path, str) else path

    def evaluate(self, ctx, bindings):
        start = self.base.evaluate(ctx, bindings)
        if start is NOVALUE:
            return NOVALUE
        current = ctx.store.deref(start) if isinstance(start, Ref) else start
        for step in self.path_expr.steps:
            if not isinstance(current, (GemObject, Ref)):
                return NOVALUE
            time = step.at if step.at is not None else ctx.time
            value = ctx.store.value_at(current, step.name, time)
            from ..core.history import MISSING

            if value is MISSING:
                return NOVALUE
            current = ctx.store.deref(value)
        return current

    def free_vars(self):
        return self.base.free_vars()

    def __repr__(self) -> str:
        return f"{self.base!r}!{self.path_expr}"


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic on numbers; NOVALUE propagates."""

    op: str
    left: Expr
    right: Expr

    _FUNCTIONS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
    }

    def evaluate(self, ctx, bindings):
        left = self.left.evaluate(ctx, bindings)
        right = self.right.evaluate(ctx, bindings)
        if left is NOVALUE or right is NOVALUE:
            return NOVALUE
        return self._FUNCTIONS[self.op](left, right)

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Compare(Expr):
    """Ordering / equality comparison; NOVALUE fails every comparison."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, ctx, bindings):
        left = self.left.evaluate(ctx, bindings)
        right = self.right.evaluate(ctx, bindings)
        if self.op == "==":
            return value_equal(left, right)
        if self.op == "!=":
            if left is NOVALUE or right is NOVALUE:
                return False
            return not value_equal(left, right)
        if left is NOVALUE or right is NOVALUE:
            return False
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        if self.op == ">=":
            return left >= right
        raise CalculusError(f"unknown comparison {self.op!r}")

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class In(Expr):
    """Membership: ``m ∈ d!Managers`` (section 5.2's distinguishing case)."""

    member: Expr
    collection: Expr

    def evaluate(self, ctx, bindings):
        member = self.member.evaluate(ctx, bindings)
        if member is NOVALUE:
            return False
        collection = self.collection.evaluate(ctx, bindings)
        if collection is NOVALUE:
            return False
        return any(value_equal(member, m) for m in ctx.members(collection))

    def free_vars(self):
        return self.member.free_vars() | self.collection.free_vars()

    def __repr__(self) -> str:
        return f"({self.member!r} ∈ {self.collection!r})"


@dataclass(frozen=True)
class Subset(Expr):
    """``a ⊆ b`` — one construct, where relational calculus needs two
    quantifiers (section 5.2)."""

    left: Expr
    right: Expr

    def evaluate(self, ctx, bindings):
        left = self.left.evaluate(ctx, bindings)
        right = self.right.evaluate(ctx, bindings)
        if left is NOVALUE or right is NOVALUE:
            return False
        right_members = list(ctx.members(right))
        return all(
            any(value_equal(m, r) for r in right_members)
            for m in ctx.members(left)
        )

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self) -> str:
        return f"({self.left!r} ⊆ {self.right!r})"


@dataclass(frozen=True)
class And(Expr):
    """Conjunction."""

    left: Expr
    right: Expr

    def evaluate(self, ctx, bindings):
        return bool(self.left.evaluate(ctx, bindings)) and bool(
            self.right.evaluate(ctx, bindings)
        )

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self) -> str:
        return f"({self.left!r} and {self.right!r})"


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction."""

    left: Expr
    right: Expr

    def evaluate(self, ctx, bindings):
        return bool(self.left.evaluate(ctx, bindings)) or bool(
            self.right.evaluate(ctx, bindings)
        )

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self) -> str:
        return f"({self.left!r} or {self.right!r})"


@dataclass(frozen=True)
class Not(Expr):
    """Negation."""

    operand: Expr

    def evaluate(self, ctx, bindings):
        return not bool(self.operand.evaluate(ctx, bindings))

    def free_vars(self):
        return self.operand.free_vars()

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


class Exists(Expr):
    """∃ var ∈ source: condition — an expression-level subquery.

    The paper's calculus brackets (``(d ∈ X!Departments)[…]``) quantify
    variables inside conditions; :class:`Exists` and :class:`ForAll`
    provide that form when a binder at query level would change the
    result multiplicity.
    """

    def __init__(self, var: "str | Var", source: "Expr | Any",
                 condition: Expr) -> None:
        self.var = var.name if isinstance(var, Var) else var
        self.source = as_expr(source)
        self.condition = condition

    def evaluate(self, ctx, bindings):
        collection = self.source.evaluate(ctx, bindings)
        if collection is NOVALUE:
            return False
        inner = dict(bindings)
        for member in ctx.members(collection):
            inner[self.var] = member
            if bool(self.condition.evaluate(ctx, inner)):
                return True
        return False

    def free_vars(self):
        return self.source.free_vars() | (
            self.condition.free_vars() - {self.var}
        )

    def __repr__(self) -> str:
        return f"(∃{self.var} ∈ {self.source!r} [{self.condition!r}])"


class ForAll(Expr):
    """∀ var ∈ source: condition (vacuously true on an empty source)."""

    def __init__(self, var: "str | Var", source: "Expr | Any",
                 condition: Expr) -> None:
        self.var = var.name if isinstance(var, Var) else var
        self.source = as_expr(source)
        self.condition = condition

    def evaluate(self, ctx, bindings):
        collection = self.source.evaluate(ctx, bindings)
        if collection is NOVALUE:
            return True
        inner = dict(bindings)
        for member in ctx.members(collection):
            inner[self.var] = member
            if not bool(self.condition.evaluate(ctx, inner)):
                return False
        return True

    def free_vars(self):
        return self.source.free_vars() | (
            self.condition.free_vars() - {self.var}
        )

    def __repr__(self) -> str:
        return f"(∀{self.var} ∈ {self.source!r} [{self.condition!r}])"


class Apply(Expr):
    """General computation: a Python function over expression values.

    Realizes "we also wanted to include general computations in the
    conditions of calculus expressions" (section 5.4).
    """

    def __init__(self, function: Callable[..., Any], *args: "Expr | Any",
                 label: str = "") -> None:
        self.function = function
        self.args = tuple(as_expr(a) for a in args)
        self.label = label or getattr(function, "__name__", "fn")

    def evaluate(self, ctx, bindings):
        values = [a.evaluate(ctx, bindings) for a in self.args]
        if any(v is NOVALUE for v in values):
            return NOVALUE
        return self.function(*values)

    def free_vars(self):
        result: frozenset[str] = frozenset()
        for a in self.args:
            result |= a.free_vars()
        return result

    def __repr__(self) -> str:
        return f"{self.label}({', '.join(map(repr, self.args))})"


# --------------------------------------------------------------------------
# queries
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Binder:
    """``var ∈ source`` — *source* may use earlier binders' variables."""

    var: str
    source: Expr

    def __repr__(self) -> str:
        return f"({self.var} ∈ {self.source!r})"


class SetQuery:
    """A set-calculus comprehension: result template, binders, condition."""

    def __init__(
        self,
        result: "dict[str, Expr] | Expr",
        binders: Sequence["Binder | tuple"],
        condition: Optional[Expr] = None,
    ) -> None:
        self.result = (
            {label: as_expr(e) for label, e in result.items()}
            if isinstance(result, dict)
            else as_expr(result)
        )
        self.binders = [
            b if isinstance(b, Binder) else Binder(_binder_var(b[0]), as_expr(b[1]))
            for b in binders
        ]
        self.condition = condition
        self._check_scoping()

    def _check_scoping(self) -> None:
        bound: set[str] = set()
        for binder in self.binders:
            unknown = binder.source.free_vars() - bound
            if unknown:
                raise CalculusError(
                    f"binder {binder!r} uses unbound variable(s) {sorted(unknown)}"
                )
            bound.add(binder.var)
        used = frozenset()
        if self.condition is not None:
            used |= self.condition.free_vars()
        if isinstance(self.result, dict):
            for expr in self.result.values():
                used |= expr.free_vars()
        else:
            used |= self.result.free_vars()
        unknown = used - bound
        if unknown:
            raise CalculusError(f"query uses unbound variable(s) {sorted(unknown)}")

    def evaluate(self, ctx: QueryContext) -> list[Any]:
        """Reference nested-loop evaluation; returns constructed results."""
        results: list[Any] = []
        self._loop(ctx, 0, {}, results)
        return results

    def _loop(self, ctx, depth, bindings, results) -> None:
        if depth == len(self.binders):
            if self.condition is None or bool(
                self.condition.evaluate(ctx, bindings)
            ):
                results.append(self._construct(ctx, bindings))
            return
        binder = self.binders[depth]
        source = binder.source.evaluate(ctx, bindings)
        for member in ctx.members(source):
            bindings[binder.var] = member
            self._loop(ctx, depth + 1, bindings, results)
        bindings.pop(binder.var, None)

    def _construct(self, ctx, bindings):
        if isinstance(self.result, dict):
            return {
                label: expr.evaluate(ctx, bindings)
                for label, expr in self.result.items()
            }
        return self.result.evaluate(ctx, bindings)

    def __repr__(self) -> str:
        parts = " and ".join(repr(b) for b in self.binders)
        where = f" where {self.condition!r}" if self.condition is not None else ""
        return f"{{{self.result!r} : {parts}{where}}}"


def _binder_var(var: "str | Var") -> str:
    return var.name if isinstance(var, Var) else var


def variables(*names: str) -> tuple[Var, ...]:
    """Convenience: ``e, d, m = variables("e", "d", "m")``."""
    return tuple(Var(name) for name in names)
