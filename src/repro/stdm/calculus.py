"""The STDM set calculus (section 5.1).

The paper's example query —

    {{Emp: e, Mgr: m} where
      (e ∈ X!Employees) and (d ∈ X!Departments)
      [(m ∈ d!Managers) and (d!Name ∈ e!Depts) and
       (e!Salary > 0.10 * d!Budget)]}

— is a :class:`SetQuery`: a result constructor, a list of *binders*
(each binding a variable to the members of a set-valued expression,
which may be a function of earlier variables — "a distinguishing feature
of our calculus"), and a condition.

Expressions build with Python operators: ``e.path("Salary") >
d.path("Budget") * 0.10``, ``d.path("Name").in_(e.path("Depts"))``,
``&``/``|``/``~`` for the connectives, and :class:`Apply` wraps an
arbitrary Python function for the "general computations in the
conditions" the paper wants (section 5.4).

:meth:`SetQuery.evaluate` is the *reference* nested-loop interpreter:
the algebra (:mod:`repro.stdm.algebra`) and the translator are tested
for equivalence against it.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from itertools import compress
from typing import Any, Callable, Iterator, Optional, Sequence

from ..core.history import MISSING
from ..core.objects import GemObject
from ..core.paths import Path, parse_path
from ..core.timedial import TimeDial
from ..core.values import Ref
from ..errors import CalculusError
from .sets import LabeledSet

#: exact types the batched path navigator treats as already-resolved
#: objects; subclasses (none today) simply take the generic gather path
_NAVIGABLE_TYPES = frozenset((GemObject,))
_MISSING_TYPE = type(MISSING)


class _NoValue:
    """Result of a path that does not resolve; fails every condition."""

    _instance: "_NoValue | None" = None

    def __new__(cls) -> "_NoValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<no-value>"


NOVALUE = _NoValue()

#: value types with non-``==`` comparison semantics (oid identity for
#: entities, universal failure for NOVALUE); a column free of these can
#: be compared with plain operators instead of per-row ``value_equal``
_IDENTITY_TYPES = frozenset((GemObject, Ref, _NoValue))


class QueryContext:
    """Everything evaluation needs: the store, a time, and directories.

    When a *budget* is attached, evaluation meters its own fuel: one
    unit per member drawn from any set (scans, membership tests and
    index probes alike), so declarative work is charged by what it
    actually examines rather than pre-charged by collection size.

    ``examined`` counts every charged unit whether or not a budget is
    attached — it is the candidate count the slow-query log reports,
    the number that separates an index probe from a full scan.
    """

    def __init__(
        self,
        store,
        time: Optional[int] = None,
        directory_manager=None,
        budget=None,
    ):
        self.store = store
        self.time = time
        self.directory_manager = directory_manager
        self.budget = budget
        self.examined = 0
        self.dial = TimeDial()
        self.dial.set(time)

    def at(self, time: Optional[int]) -> "QueryContext":
        """A context like this one, dialed to *time*."""
        return QueryContext(self.store, time, self.directory_manager, self.budget)

    def charge(self, units: int = 1) -> None:
        """Count examined candidates; spend fuel when a budget is attached."""
        self.examined += units
        if self.budget is not None:
            self.budget.charge_steps(units)

    def members(self, collection: Any) -> Iterator[Any]:
        """Iterate the members of any set-like value.

        GSDM set objects yield their live element values (dereferenced);
        labeled sets yield their values; plain Python iterables pass
        through.  Each member drawn costs one unit of query fuel.
        """
        if self.budget is None:
            for member in self._raw_members(collection):
                self.examined += 1
                yield member
            return
        for member in self._raw_members(collection):
            self.examined += 1
            self.budget.charge_steps()
            yield member

    def raw_member_list(self, collection: Any) -> list[Any]:
        """Materialize members without charging — bulk callers charge once."""
        if isinstance(collection, Ref):
            collection = self.store.deref(collection)
        if isinstance(collection, GemObject):
            return self.store.members_of(collection, self.time)
        if isinstance(collection, (list, tuple, set, frozenset)):
            return list(collection)
        return list(self._raw_members(collection))

    def _raw_members(self, collection: Any) -> Iterator[Any]:
        if isinstance(collection, Ref):
            collection = self.store.deref(collection)
        if isinstance(collection, GemObject):
            yield from self.store.members_of(collection, self.time)
        elif isinstance(collection, LabeledSet):
            yield from collection.values()
        elif isinstance(collection, (list, tuple, set, frozenset)):
            yield from collection
        elif collection is NOVALUE or collection is None:
            return
        else:
            raise CalculusError(f"{collection!r} is not a set-like value")


class BindingBatch:
    """A column-oriented block of variable bindings.

    The vectorized executor streams these instead of one dict per row:
    ``columns`` maps each variable name to a parallel list of values and
    ``size`` is the row count.  Row dicts are materialized lazily (and
    cached) only when an expression has no columnar implementation and
    falls back to per-row :meth:`Expr.evaluate`.
    """

    __slots__ = ("columns", "size", "_row_cache", "_expr_cache")

    def __init__(self, columns: dict[str, list], size: int) -> None:
        self.columns = columns
        self.size = size
        self._row_cache: Optional[list] = None
        # computed columns for repeated sub-expressions (e.g. ``e!Salary``
        # appearing in several conjuncts), keyed structurally; valid for
        # this batch's lifetime because queries never write the store
        self._expr_cache: dict[tuple, list] = {}

    @classmethod
    def from_rows(cls, rows: Sequence[dict[str, Any]]) -> "BindingBatch":
        """Transpose row dicts into columns (all rows share one key set)."""
        if not rows:
            return cls({}, 0)
        columns = {name: [row[name] for row in rows] for name in rows[0]}
        return cls(columns, len(rows))

    def row(self, index: int) -> dict[str, Any]:
        """The *index*-th binding as a dict (cached; callers must not mutate)."""
        cache = self._row_cache
        if cache is None:
            cache = self._row_cache = [None] * self.size
        row = cache[index]
        if row is None:
            row = cache[index] = {
                name: column[index] for name, column in self.columns.items()
            }
        return row

    def rows(self) -> list[dict[str, Any]]:
        """All bindings as row dicts (row-mode compatible output)."""
        return [self.row(i) for i in range(self.size)]

    def select(self, indices: Sequence[int]) -> "BindingBatch":
        """A new batch keeping only the rows at *indices* (in order)."""
        columns = {
            name: [column[i] for i in indices]
            for name, column in self.columns.items()
        }
        selected = BindingBatch(columns, len(indices))
        # carry computed columns along: a gather is far cheaper than
        # re-reading the store for the surviving rows
        selected._expr_cache = {
            key: [column[i] for i in indices]
            for key, column in self._expr_cache.items()
        }
        return selected

    def select_mask(self, mask: Sequence[bool], count: int) -> "BindingBatch":
        """Like :meth:`select` but driven by a boolean mask.

        ``itertools.compress`` gathers each column at C speed, so callers
        that already hold a truth column (``Filter``) should prefer this
        over materializing an index list.  *count* is ``sum(mask)``.
        """
        columns = {
            name: list(compress(column, mask))
            for name, column in self.columns.items()
        }
        selected = BindingBatch(columns, count)
        selected._expr_cache = {
            key: list(compress(column, mask))
            for key, column in self._expr_cache.items()
        }
        return selected


def value_equal(a: Any, b: Any) -> bool:
    """Equality with entity identity: objects compare by oid."""
    a_oid = a.oid if isinstance(a, (GemObject, Ref)) else None
    b_oid = b.oid if isinstance(b, (GemObject, Ref)) else None
    if a_oid is not None or b_oid is not None:
        return a_oid == b_oid
    if a is NOVALUE or b is NOVALUE:
        return False
    return a == b


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------

class Expr:
    """Base class for calculus expressions; combinators build the AST."""

    def evaluate(self, ctx: QueryContext, bindings: dict[str, Any]) -> Any:
        """The expression's value under *bindings*."""
        raise NotImplementedError

    def evaluate_column(self, ctx: QueryContext,
                        batch: "BindingBatch") -> list[Any]:
        """The expression's value for every row of *batch*, as one list.

        The default falls back to per-row :meth:`evaluate`, which keeps
        fuel charging and short-circuit semantics bit-identical for the
        node types that meter their own work (``In``/``Subset``/
        ``Exists``/``ForAll``).  Pure node types override this with loops
        that hoist dispatch out of the row.
        """
        evaluate = self.evaluate
        return [evaluate(ctx, batch.row(i)) for i in range(batch.size)]

    def const_value(self) -> tuple[bool, Any]:
        """``(True, value)`` when this expression is row-independent.

        The batched executor hoists such sub-expressions out of the inner
        loop: ``0.10 * d!Budget`` keeps a per-row path, but ``10 * 3000``
        collapses to one scalar broadcast per batch.
        """
        return (False, None)

    def free_vars(self) -> frozenset[str]:
        """Variables this expression refers to."""
        raise NotImplementedError

    # -- combinators ----------------------------------------------------------

    def path(self, path_text: "str | Path") -> "PathApply":
        """Apply a path: ``e.path("Salary")`` is the paper's ``e!Salary``."""
        return PathApply(self, path_text)

    def in_(self, collection: "Expr | Any") -> "In":
        """Membership: ``x.in_(s)`` is ``x ∈ s``."""
        return In(self, as_expr(collection))

    def subset_of(self, other: "Expr | Any") -> "Subset":
        """``x.subset_of(s)`` is ``x ⊆ s`` (one quantifier, not two)."""
        return Subset(self, as_expr(other))

    def eq(self, other: Any) -> "Compare":
        """Equality comparison (named to keep ``==`` for AST identity)."""
        return Compare("==", self, as_expr(other))

    def ne(self, other: Any) -> "Compare":
        """Inequality comparison."""
        return Compare("!=", self, as_expr(other))

    def __lt__(self, other: Any) -> "Compare":
        return Compare("<", self, as_expr(other))

    def __le__(self, other: Any) -> "Compare":
        return Compare("<=", self, as_expr(other))

    def __gt__(self, other: Any) -> "Compare":
        return Compare(">", self, as_expr(other))

    def __ge__(self, other: Any) -> "Compare":
        return Compare(">=", self, as_expr(other))

    def __add__(self, other: Any) -> "BinOp":
        return BinOp("+", self, as_expr(other))

    def __sub__(self, other: Any) -> "BinOp":
        return BinOp("-", self, as_expr(other))

    def __mul__(self, other: Any) -> "BinOp":
        return BinOp("*", self, as_expr(other))

    def __truediv__(self, other: Any) -> "BinOp":
        return BinOp("/", self, as_expr(other))

    def __rmul__(self, other: Any) -> "BinOp":
        return BinOp("*", as_expr(other), self)

    def __and__(self, other: "Expr") -> "And":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


def as_expr(value: Any) -> Expr:
    """Lift a plain value to a :class:`Const` unless already an Expr."""
    return value if isinstance(value, Expr) else Const(value)


@dataclass(frozen=True)
class Const(Expr):
    """A literal value (or a direct reference to a set object)."""

    value: Any

    def evaluate(self, ctx, bindings):
        return self.value

    def evaluate_column(self, ctx, batch):
        return [self.value] * batch.size

    def const_value(self):
        return (True, self.value)

    def free_vars(self):
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A calculus variable, bound by a binder."""

    name: str

    def evaluate(self, ctx, bindings):
        if self.name not in bindings:
            raise CalculusError(f"unbound variable {self.name!r}")
        return bindings[self.name]

    def evaluate_column(self, ctx, batch):
        column = batch.columns.get(self.name)
        if column is None:
            raise CalculusError(f"unbound variable {self.name!r}")
        return column

    def free_vars(self):
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


class PathApply(Expr):
    """``base!component!component`` — navigation from an expression."""

    def __init__(self, base: Expr, path: "str | Path") -> None:
        self.base = base
        self.path_expr: Path = parse_path(path) if isinstance(path, str) else path
        # structural identity for batch-level CSE: two PathApply nodes
        # over the same variable and path yield the same column.  Chained
        # navigations (``e!Name!Last`` built as nested PathApply) compose
        # their keys so every prefix shares one cached column.
        if isinstance(base, Var):
            self._column_key = ("path", base.name, str(self.path_expr))
        elif isinstance(base, PathApply) and base._column_key is not None:
            self._column_key = base._column_key + (str(self.path_expr),)
        else:
            self._column_key = None

    def evaluate(self, ctx, bindings):
        start = self.base.evaluate(ctx, bindings)
        if start is NOVALUE:
            return NOVALUE
        current = ctx.store.deref(start) if isinstance(start, Ref) else start
        for step in self.path_expr.steps:
            if not isinstance(current, (GemObject, Ref)):
                return NOVALUE
            time = step.at if step.at is not None else ctx.time
            value = ctx.store.value_at(current, step.name, time)
            if value is MISSING:
                return NOVALUE
            current = ctx.store.deref(value)
        return current

    def evaluate_column(self, ctx, batch):
        key = self._column_key
        if key is not None:
            cached = batch._expr_cache.get(key)
            if cached is not None:
                return cached
        current = self.base.evaluate_column(ctx, batch)
        store = ctx.store
        deref = store.deref
        values_at_column = store.values_at_column
        if not self.path_expr.steps:
            return [deref(v) if isinstance(v, Ref) else v for v in current]
        for step in self.path_expr.steps:
            time = step.at if step.at is not None else ctx.time
            if set(map(type, current)) <= _NAVIGABLE_TYPES:
                # every row is already a navigable object (the common
                # case right after a scan): no gather/scatter needed.
                # ``set(map(type, ...))`` runs at C speed, unlike an
                # ``all(isinstance(...))`` pass over the column.
                values = values_at_column(current, step.name, time)
                value_types = set(map(type, values))
                if _MISSING_TYPE in value_types:
                    values = [
                        NOVALUE if value is MISSING else value
                        for value in values
                    ]
                if Ref in value_types:
                    values = store.deref_column(values)
                current = values
                continue
            # Gather the rows that are still navigable objects, read the
            # whole column through the store in one call, scatter back;
            # everything else becomes NOVALUE (a path that fails to
            # resolve fails every condition, §5.2).
            positions: list[int] = []
            targets: list[Any] = []
            nxt: list[Any] = [NOVALUE] * len(current)
            for i, value in enumerate(current):
                if isinstance(value, GemObject):
                    positions.append(i)
                    targets.append(value)
                elif isinstance(value, Ref):
                    positions.append(i)
                    targets.append(deref(value))
            for pos, value in zip(
                positions, values_at_column(targets, step.name, time)
            ):
                if value is not MISSING:
                    nxt[pos] = deref(value)
            current = nxt
        if key is not None:
            batch._expr_cache[key] = current
        return current

    def free_vars(self):
        return self.base.free_vars()

    def __repr__(self) -> str:
        return f"{self.base!r}!{self.path_expr}"


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic on numbers; NOVALUE propagates."""

    op: str
    left: Expr
    right: Expr

    _FUNCTIONS = {
        "+": operator.add,
        "-": operator.sub,
        "*": operator.mul,
        "/": operator.truediv,
    }

    def evaluate(self, ctx, bindings):
        left = self.left.evaluate(ctx, bindings)
        right = self.right.evaluate(ctx, bindings)
        if left is NOVALUE or right is NOVALUE:
            return NOVALUE
        return self._FUNCTIONS[self.op](left, right)

    def evaluate_column(self, ctx, batch):
        fn = self._FUNCTIONS[self.op]
        l_const, l_value = self.left.const_value()
        r_const, r_value = self.right.const_value()
        if l_const and r_const:
            value = (
                NOVALUE if (l_value is NOVALUE or r_value is NOVALUE)
                else fn(l_value, r_value)
            )
            return [value] * batch.size
        op = self.op
        if r_const and r_value is not NOVALUE:
            left = self.left.evaluate_column(ctx, batch)
            r = r_value
            # explicit per-op loops: an inline BINARY_OP beats a C-level
            # function call in the innermost loop; columns with no
            # NOVALUE (one C-speed type pass) also drop the row guard
            if _NoValue not in set(map(type, left)):
                if op == "+":
                    return [a + r for a in left]
                if op == "-":
                    return [a - r for a in left]
                if op == "*":
                    return [a * r for a in left]
                return [fn(a, r) for a in left]
            if op == "+":
                return [NOVALUE if a is NOVALUE else a + r for a in left]
            if op == "-":
                return [NOVALUE if a is NOVALUE else a - r for a in left]
            if op == "*":
                return [NOVALUE if a is NOVALUE else a * r for a in left]
            return [NOVALUE if a is NOVALUE else fn(a, r) for a in left]
        if l_const and l_value is not NOVALUE:
            right = self.right.evaluate_column(ctx, batch)
            lv = l_value
            if _NoValue not in set(map(type, right)):
                if op == "+":
                    return [lv + b for b in right]
                if op == "-":
                    return [lv - b for b in right]
                if op == "*":
                    return [lv * b for b in right]
                return [fn(lv, b) for b in right]
            if op == "+":
                return [NOVALUE if b is NOVALUE else lv + b for b in right]
            if op == "-":
                return [NOVALUE if b is NOVALUE else lv - b for b in right]
            if op == "*":
                return [NOVALUE if b is NOVALUE else lv * b for b in right]
            return [NOVALUE if b is NOVALUE else fn(lv, b) for b in right]
        left = self.left.evaluate_column(ctx, batch)
        right = self.right.evaluate_column(ctx, batch)
        if _NoValue not in set(map(type, left)) and _NoValue not in set(
            map(type, right)
        ):
            if op == "+":
                return [a + b for a, b in zip(left, right)]
            if op == "-":
                return [a - b for a, b in zip(left, right)]
            if op == "*":
                return [a * b for a, b in zip(left, right)]
            return [fn(a, b) for a, b in zip(left, right)]
        return [
            NOVALUE if (a is NOVALUE or b is NOVALUE) else fn(a, b)
            for a, b in zip(left, right)
        ]

    def const_value(self):
        l_const, l_value = self.left.const_value()
        if not l_const:
            return (False, None)
        r_const, r_value = self.right.const_value()
        if not r_const:
            return (False, None)
        if l_value is NOVALUE or r_value is NOVALUE:
            return (True, NOVALUE)
        try:
            return (True, self._FUNCTIONS[self.op](l_value, r_value))
        except Exception:
            # let the generic path raise row-by-row, as row mode would
            return (False, None)

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Compare(Expr):
    """Ordering / equality comparison; NOVALUE fails every comparison."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, ctx, bindings):
        left = self.left.evaluate(ctx, bindings)
        right = self.right.evaluate(ctx, bindings)
        if self.op == "==":
            return value_equal(left, right)
        if self.op == "!=":
            if left is NOVALUE or right is NOVALUE:
                return False
            return not value_equal(left, right)
        if left is NOVALUE or right is NOVALUE:
            return False
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        if self.op == ">=":
            return left >= right
        raise CalculusError(f"unknown comparison {self.op!r}")

    _ORDERINGS = {
        "<": operator.lt,
        "<=": operator.le,
        ">": operator.gt,
        ">=": operator.ge,
    }

    def evaluate_column(self, ctx, batch):
        op = self.op
        r_const, r_value = self.right.const_value()
        if r_const:
            left = self.left.evaluate_column(ctx, batch)
            # one C-speed type pass tells us whether any row needs
            # identity/NOVALUE semantics; plain columns then compare
            # with a bare operator instead of per-row ``value_equal``
            left_types = set(map(type, left))
            plain = not (left_types & _IDENTITY_TYPES) and not (
                isinstance(r_value, (GemObject, Ref)) or r_value is NOVALUE
            )
            r = r_value
            if op == "==":
                if plain:
                    return [a == r for a in left]
                return [value_equal(a, r_value) for a in left]
            if op == "!=":
                if r_value is NOVALUE:
                    return [False] * batch.size
                if plain:
                    return [not (a == r) for a in left]
                return [
                    a is not NOVALUE and not value_equal(a, r_value)
                    for a in left
                ]
            if op not in self._ORDERINGS:
                raise CalculusError(f"unknown comparison {op!r}")
            if r_value is NOVALUE:
                return [False] * batch.size
            # explicit per-op loops: an inline COMPARE_OP beats a C-level
            # function call in the innermost loop
            if _NoValue not in left_types:
                if op == ">":
                    return [a > r for a in left]
                if op == "<":
                    return [a < r for a in left]
                if op == ">=":
                    return [a >= r for a in left]
                return [a <= r for a in left]
            if op == ">":
                return [False if a is NOVALUE else a > r for a in left]
            if op == "<":
                return [False if a is NOVALUE else a < r for a in left]
            if op == ">=":
                return [False if a is NOVALUE else a >= r for a in left]
            return [False if a is NOVALUE else a <= r for a in left]
        l_const, l_value = self.left.const_value()
        if l_const:
            right = self.right.evaluate_column(ctx, batch)
            if op == "==":
                return [value_equal(l_value, b) for b in right]
            if op == "!=":
                if l_value is NOVALUE:
                    return [False] * batch.size
                return [
                    b is not NOVALUE and not value_equal(l_value, b)
                    for b in right
                ]
            fn = self._ORDERINGS.get(op)
            if fn is None:
                raise CalculusError(f"unknown comparison {op!r}")
            if l_value is NOVALUE:
                return [False] * batch.size
            return [
                False if b is NOVALUE else fn(l_value, b) for b in right
            ]
        left = self.left.evaluate_column(ctx, batch)
        right = self.right.evaluate_column(ctx, batch)
        if op == "==":
            return [value_equal(a, b) for a, b in zip(left, right)]
        if op == "!=":
            return [
                False
                if (a is NOVALUE or b is NOVALUE)
                else not value_equal(a, b)
                for a, b in zip(left, right)
            ]
        fn = self._ORDERINGS.get(op)
        if fn is None:
            raise CalculusError(f"unknown comparison {op!r}")
        return [
            False if (a is NOVALUE or b is NOVALUE) else fn(a, b)
            for a, b in zip(left, right)
        ]

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class In(Expr):
    """Membership: ``m ∈ d!Managers`` (section 5.2's distinguishing case)."""

    member: Expr
    collection: Expr

    def evaluate(self, ctx, bindings):
        member = self.member.evaluate(ctx, bindings)
        if member is NOVALUE:
            return False
        collection = self.collection.evaluate(ctx, bindings)
        if collection is NOVALUE:
            return False
        return any(value_equal(member, m) for m in ctx.members(collection))

    def free_vars(self):
        return self.member.free_vars() | self.collection.free_vars()

    def __repr__(self) -> str:
        return f"({self.member!r} ∈ {self.collection!r})"


@dataclass(frozen=True)
class Subset(Expr):
    """``a ⊆ b`` — one construct, where relational calculus needs two
    quantifiers (section 5.2)."""

    left: Expr
    right: Expr

    def evaluate(self, ctx, bindings):
        left = self.left.evaluate(ctx, bindings)
        right = self.right.evaluate(ctx, bindings)
        if left is NOVALUE or right is NOVALUE:
            return False
        right_members = list(ctx.members(right))
        return all(
            any(value_equal(m, r) for r in right_members)
            for m in ctx.members(left)
        )

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self) -> str:
        return f"({self.left!r} ⊆ {self.right!r})"


@dataclass(frozen=True)
class And(Expr):
    """Conjunction."""

    left: Expr
    right: Expr

    def evaluate(self, ctx, bindings):
        return bool(self.left.evaluate(ctx, bindings)) and bool(
            self.right.evaluate(ctx, bindings)
        )

    def evaluate_column(self, ctx, batch):
        left = self.left.evaluate_column(ctx, batch)
        # Preserve short-circuiting: the right operand is only evaluated
        # (and only charges fuel) on rows where the left is truthy.
        out = [False] * batch.size
        live = [i for i, v in enumerate(left) if v]
        if live:
            sub = batch if len(live) == batch.size else batch.select(live)
            right = self.right.evaluate_column(ctx, sub)
            for pos, v in zip(live, right):
                out[pos] = bool(v)
        return out

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self) -> str:
        return f"({self.left!r} and {self.right!r})"


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction."""

    left: Expr
    right: Expr

    def evaluate(self, ctx, bindings):
        return bool(self.left.evaluate(ctx, bindings)) or bool(
            self.right.evaluate(ctx, bindings)
        )

    def evaluate_column(self, ctx, batch):
        left = self.left.evaluate_column(ctx, batch)
        # Short-circuit: only rows where the left is falsy see the right.
        out = [True] * batch.size
        live = [i for i, v in enumerate(left) if not v]
        if live:
            sub = batch if len(live) == batch.size else batch.select(live)
            right = self.right.evaluate_column(ctx, sub)
            for pos, v in zip(live, right):
                out[pos] = bool(v)
        return out

    def free_vars(self):
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self) -> str:
        return f"({self.left!r} or {self.right!r})"


@dataclass(frozen=True)
class Not(Expr):
    """Negation."""

    operand: Expr

    def evaluate(self, ctx, bindings):
        return not bool(self.operand.evaluate(ctx, bindings))

    def evaluate_column(self, ctx, batch):
        return [not v for v in self.operand.evaluate_column(ctx, batch)]

    def free_vars(self):
        return self.operand.free_vars()

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


class Exists(Expr):
    """∃ var ∈ source: condition — an expression-level subquery.

    The paper's calculus brackets (``(d ∈ X!Departments)[…]``) quantify
    variables inside conditions; :class:`Exists` and :class:`ForAll`
    provide that form when a binder at query level would change the
    result multiplicity.
    """

    def __init__(self, var: "str | Var", source: "Expr | Any",
                 condition: Expr) -> None:
        self.var = var.name if isinstance(var, Var) else var
        self.source = as_expr(source)
        self.condition = condition

    def evaluate(self, ctx, bindings):
        collection = self.source.evaluate(ctx, bindings)
        if collection is NOVALUE:
            return False
        inner = dict(bindings)
        for member in ctx.members(collection):
            inner[self.var] = member
            if bool(self.condition.evaluate(ctx, inner)):
                return True
        return False

    def free_vars(self):
        return self.source.free_vars() | (
            self.condition.free_vars() - {self.var}
        )

    def __repr__(self) -> str:
        return f"(∃{self.var} ∈ {self.source!r} [{self.condition!r}])"


class ForAll(Expr):
    """∀ var ∈ source: condition (vacuously true on an empty source)."""

    def __init__(self, var: "str | Var", source: "Expr | Any",
                 condition: Expr) -> None:
        self.var = var.name if isinstance(var, Var) else var
        self.source = as_expr(source)
        self.condition = condition

    def evaluate(self, ctx, bindings):
        collection = self.source.evaluate(ctx, bindings)
        if collection is NOVALUE:
            return True
        inner = dict(bindings)
        for member in ctx.members(collection):
            inner[self.var] = member
            if not bool(self.condition.evaluate(ctx, inner)):
                return False
        return True

    def free_vars(self):
        return self.source.free_vars() | (
            self.condition.free_vars() - {self.var}
        )

    def __repr__(self) -> str:
        return f"(∀{self.var} ∈ {self.source!r} [{self.condition!r}])"


class Apply(Expr):
    """General computation: a Python function over expression values.

    Realizes "we also wanted to include general computations in the
    conditions of calculus expressions" (section 5.4).
    """

    def __init__(self, function: Callable[..., Any], *args: "Expr | Any",
                 label: str = "") -> None:
        self.function = function
        self.args = tuple(as_expr(a) for a in args)
        self.label = label or getattr(function, "__name__", "fn")

    def evaluate(self, ctx, bindings):
        values = [a.evaluate(ctx, bindings) for a in self.args]
        if any(v is NOVALUE for v in values):
            return NOVALUE
        return self.function(*values)

    def evaluate_column(self, ctx, batch):
        function = self.function
        if not self.args:
            return [function() for _ in range(batch.size)]
        columns = [a.evaluate_column(ctx, batch) for a in self.args]
        return [
            NOVALUE if any(v is NOVALUE for v in values) else function(*values)
            for values in zip(*columns)
        ]

    def free_vars(self):
        result: frozenset[str] = frozenset()
        for a in self.args:
            result |= a.free_vars()
        return result

    def __repr__(self) -> str:
        return f"{self.label}({', '.join(map(repr, self.args))})"


# --------------------------------------------------------------------------
# queries
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Binder:
    """``var ∈ source`` — *source* may use earlier binders' variables."""

    var: str
    source: Expr

    def __repr__(self) -> str:
        return f"({self.var} ∈ {self.source!r})"


class SetQuery:
    """A set-calculus comprehension: result template, binders, condition."""

    def __init__(
        self,
        result: "dict[str, Expr] | Expr",
        binders: Sequence["Binder | tuple"],
        condition: Optional[Expr] = None,
    ) -> None:
        self.result = (
            {label: as_expr(e) for label, e in result.items()}
            if isinstance(result, dict)
            else as_expr(result)
        )
        self.binders = [
            b if isinstance(b, Binder) else Binder(_binder_var(b[0]), as_expr(b[1]))
            for b in binders
        ]
        self.condition = condition
        self._check_scoping()

    def _check_scoping(self) -> None:
        bound: set[str] = set()
        for binder in self.binders:
            unknown = binder.source.free_vars() - bound
            if unknown:
                raise CalculusError(
                    f"binder {binder!r} uses unbound variable(s) {sorted(unknown)}"
                )
            bound.add(binder.var)
        used = frozenset()
        if self.condition is not None:
            used |= self.condition.free_vars()
        if isinstance(self.result, dict):
            for expr in self.result.values():
                used |= expr.free_vars()
        else:
            used |= self.result.free_vars()
        unknown = used - bound
        if unknown:
            raise CalculusError(f"query uses unbound variable(s) {sorted(unknown)}")

    def evaluate(self, ctx: QueryContext) -> list[Any]:
        """Reference nested-loop evaluation; returns constructed results."""
        results: list[Any] = []
        self._loop(ctx, 0, {}, results)
        return results

    def _loop(self, ctx, depth, bindings, results) -> None:
        if depth == len(self.binders):
            if self.condition is None or bool(
                self.condition.evaluate(ctx, bindings)
            ):
                results.append(self._construct(ctx, bindings))
            return
        binder = self.binders[depth]
        source = binder.source.evaluate(ctx, bindings)
        for member in ctx.members(source):
            bindings[binder.var] = member
            self._loop(ctx, depth + 1, bindings, results)
        bindings.pop(binder.var, None)

    def _construct(self, ctx, bindings):
        if isinstance(self.result, dict):
            return {
                label: expr.evaluate(ctx, bindings)
                for label, expr in self.result.items()
            }
        return self.result.evaluate(ctx, bindings)

    def __repr__(self) -> str:
        parts = " and ".join(repr(b) for b in self.binders)
        where = f" where {self.condition!r}" if self.condition is not None else ""
        return f"{{{self.result!r} : {parts}{where}}}"


def _binder_var(var: "str | Var") -> str:
    return var.name if isinstance(var, Var) else var


def variables(*names: str) -> tuple[Var, ...]:
    """Convenience: ``e, d, m = variables("e", "d", "m")``."""
    return tuple(Var(name) for name in names)
