"""``repro.storage`` — secondary storage management.

The paper's Object Manager subcomponents (section 6), each as a module:

* :mod:`~repro.storage.disk` — whole-track simulated disk with fault
  injection (substitute for the paper's special-purpose hardware);
* :mod:`~repro.storage.tracks` — Track Manager: allocation + scheduling;
* :mod:`~repro.storage.codec` — binary encoding of objects and metadata;
* :mod:`~repro.storage.boxer` — Boxer: fit objects into tracks;
* :mod:`~repro.storage.linker` — Linker: merge transactions at commit;
* :mod:`~repro.storage.commit` — Commit Manager: safe group writes;
* :mod:`~repro.storage.object_table` — GOOP resolution table;
* :mod:`~repro.storage.stable` — the composed durable object space;
* :mod:`~repro.storage.cache` — decoded-object LRU cache;
* :mod:`~repro.storage.replication` — N-way track replication;
* :mod:`~repro.storage.archive` — DBA archival to removable media.
"""

from .archive import ArchiveDrive, ArchiveMedia
from .boxer import Boxer, Fragment, PackResult, assemble, read_entries
from .cache import ObjectCache
from .codec import (
    decode_object,
    decode_object_full,
    decode_root,
    encode_object,
    encode_root,
)
from .commit import CommitManager, decode_root_track, encode_root_track
from .disk import DiskGeometry, DiskStats, SimulatedDisk
from .filedisk import FileDisk
from .linker import Creation, Linker, Write
from .object_table import Location, ObjectTable, PAGE_SPAN
from .replication import ReplicaHealth, ReplicatedDisk
from .stable import StableStore, read_blob, write_blob
from .tracks import RESERVED_TRACKS, TrackManager

__all__ = [
    "ArchiveDrive",
    "ArchiveMedia",
    "Boxer",
    "CommitManager",
    "Creation",
    "DiskGeometry",
    "FileDisk",
    "DiskStats",
    "Fragment",
    "Linker",
    "Location",
    "ObjectCache",
    "ObjectTable",
    "PAGE_SPAN",
    "PackResult",
    "RESERVED_TRACKS",
    "ReplicaHealth",
    "ReplicatedDisk",
    "SimulatedDisk",
    "StableStore",
    "TrackManager",
    "Write",
    "assemble",
    "decode_object",
    "decode_object_full",
    "decode_root",
    "decode_root_track",
    "encode_object",
    "encode_root",
    "encode_root_track",
    "read_blob",
    "read_entries",
    "write_blob",
]
