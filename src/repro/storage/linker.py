"""The Linker: incorporating a transaction's updates at commit time.

Section 6: "The Linker incorporates updates made by a transaction in the
permanent database at commit time, calling for restructuring of
directories as needed.  The Linker is called by the Boxer ..."

In this reproduction the Linker:

1. installs the transaction's newly created objects into the stable
   store, re-stamping their bindings at the commit's transaction time;
2. replays the transaction's write log onto the stable objects (all
   bindings of one transaction share one transaction time, section
   5.3.1);
3. orders the dirty objects parent-first along their reference edges, so
   the Boxer's first-fit packing clusters tree-structured data the way
   the paper wants physical access paths to parallel logical ones.

Directory restructuring is driven from the same write log by the
Directory Manager (:mod:`repro.directories.manager`), which the database
invokes right after the Linker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..core.classes import GemClass
from ..core.objects import GemObject
from ..core.values import Ref


@dataclass(frozen=True)
class Creation:
    """A new object made by a transaction: the session-side instance.

    Only identity and definition survive into the stable store; element
    bindings are replayed from the write log at the commit time.
    """

    obj: GemObject


@dataclass(frozen=True)
class Write:
    """One element binding made by a transaction."""

    oid: int
    name: Any
    value: Any


class Linker:
    """Merges one transaction's effects into the stable store."""

    def __init__(self, store) -> None:
        self.store = store

    def incorporate(
        self,
        creations: Sequence[Creation],
        writes: Sequence[Write],
        tx_time: int,
    ) -> list[GemObject]:
        """Apply a transaction; return dirty stable objects, parent-first."""
        created = self._install_creations(creations, tx_time)
        dirty: dict[int, GemObject] = dict(created)
        for write in writes:
            obj = dirty.get(write.oid)
            if obj is None:
                obj = self.store.object(write.oid)
                dirty[write.oid] = obj
            obj.bind(write.name, write.value, tx_time)
        return self._order_parent_first(dirty)

    # -- creations -------------------------------------------------------------

    def _install_creations(
        self, creations: Sequence[Creation], tx_time: int
    ) -> dict[int, GemObject]:
        installed: dict[int, GemObject] = {}
        for creation in creations:
            twin = self._stable_twin(creation.obj, tx_time)
            self.store.adopt(twin)
            installed[twin.oid] = twin
        return installed

    def _stable_twin(self, obj: GemObject, tx_time: int) -> GemObject:
        if isinstance(obj, GemClass):
            twin = GemClass(
                oid=obj.oid,
                class_oid=obj.class_oid,
                name=obj.name,
                superclass_oid=obj.superclass_oid,
                instvar_names=obj.instvar_names,
                segment_id=obj.segment_id,
                created_at=tx_time,
            )
            # Share method dictionaries: method installs made after the
            # class is committed remain visible through both twins.
            twin.methods = obj.methods
            twin.class_methods = obj.class_methods
            return twin
        return GemObject(
            oid=obj.oid,
            class_oid=obj.class_oid,
            segment_id=obj.segment_id,
            created_at=tx_time,
        )

    # -- ordering ----------------------------------------------------------------

    def _order_parent_first(self, dirty: dict[int, GemObject]) -> list[GemObject]:
        """DFS from un-referenced dirty objects, parents before children."""
        children: dict[int, list[int]] = {}
        referenced: set[int] = set()
        for oid, obj in dirty.items():
            kids = [
                value.oid
                for _, value in obj.items_at(None)
                if isinstance(value, Ref) and value.oid in dirty and value.oid != oid
            ]
            children[oid] = kids
            referenced.update(kids)

        ordered: list[GemObject] = []
        visited: set[int] = set()

        def visit(oid: int) -> None:
            stack = [oid]
            while stack:
                current = stack.pop()
                if current in visited:
                    continue
                visited.add(current)
                ordered.append(dirty[current])
                # push children in reverse so the first child packs next
                stack.extend(reversed(children[current]))

        for oid in dirty:
            if oid not in referenced:
                visit(oid)
        for oid in dirty:  # cycles or shared-only objects
            visit(oid)
        return ordered
