"""An LRU cache of decoded objects in front of the stable store.

The paper's Object Manager keeps hot objects in a session's main memory;
this shared cache plays that role for the stable store.  Benchmarks flush
it to force cold (track-reading) access paths.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..core.objects import GemObject


class ObjectCache:
    """LRU-evicting map from oid to decoded :class:`GemObject`.

    ``capacity=None`` means unbounded (the default for correctness-first
    use); benchmarks size it to model a memory budget.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("cache capacity must be positive or None")
        self.capacity = capacity
        self._entries: "OrderedDict[int, GemObject]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, oid: int) -> bool:
        return oid in self._entries

    def get(self, oid: int) -> Optional[GemObject]:
        """Look up *oid*; refreshes recency on a hit."""
        obj = self._entries.get(oid)
        if obj is None:
            self.misses += 1
            return None
        self._entries.move_to_end(oid)
        self.hits += 1
        return obj

    def put(self, obj: GemObject) -> None:
        """Insert or refresh an object, evicting the LRU entry if full."""
        self._entries[obj.oid] = obj
        self._entries.move_to_end(obj.oid)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def evict(self, oid: int) -> None:
        """Drop one entry if present."""
        self._entries.pop(oid, None)

    def flush(self) -> None:
        """Drop every entry (benchmarks: force cold reads)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
