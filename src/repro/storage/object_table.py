"""The global object table: oid → physical location.

Section 6: "other references to the object use a global object-oriented
pointer (GOOP).  The GOOP is resolved through a global object table to
get the primary logical path to the object, from which its physical
access path can be deduced."

In this reproduction the table maps each oid directly to the ordered list
of tracks holding its record's fragments — or to an archive key once a
database administrator has moved the object to other media (section 6's
"explicitly move objects to other media, such as tape").

The table is paged: a page covers :data:`PAGE_SPAN` consecutive oids and
serializes independently, so a commit rewrites only the pages its
transaction touched (shadow-written like any other track).  A small page
directory (page index → track) is persisted in whole tracks referenced
from the root record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..errors import CodecError, StorageError
from .codec import Reader, Writer

#: oids covered by one object-table page
PAGE_SPAN = 256

_KIND_ABSENT = 0
_KIND_TRACKS = 1
_KIND_ARCHIVED = 2


@dataclass(frozen=True)
class Location:
    """Where an object's record lives.

    Exactly one of ``tracks`` (on-disk fragments, in order) and
    ``archive_key`` (moved to other media) is set.
    """

    tracks: tuple[int, ...] = ()
    archive_key: Optional[int] = None

    @property
    def archived(self) -> bool:
        """True if the object has been moved off-line."""
        return self.archive_key is not None


class ObjectTable:
    """In-memory paged map from oid to :class:`Location`."""

    def __init__(self) -> None:
        self._entries: dict[int, Location] = {}
        self._dirty_pages: set[int] = set()
        #: track -> number of entries whose fragments live there
        self._track_refs: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, oid: int) -> bool:
        return oid in self._entries

    # -- access ----------------------------------------------------------------

    def get(self, oid: int) -> Optional[Location]:
        """The location of *oid*, or None if the table has no entry."""
        return self._entries.get(oid)

    def set_tracks(self, oid: int, tracks: Sequence[int]) -> None:
        """Record that *oid*'s fragments live on *tracks*, in order."""
        if not tracks:
            raise StorageError(f"oid {oid} needs at least one track")
        self._set(oid, Location(tracks=tuple(tracks)))

    def set_archived(self, oid: int, archive_key: int) -> None:
        """Record that *oid* was moved to other media under *archive_key*."""
        self._set(oid, Location(archive_key=archive_key))

    def _set(self, oid: int, location: Optional[Location]) -> None:
        old = self._entries.get(oid)
        if old is not None:
            for track in set(old.tracks):
                count = self._track_refs.get(track, 0) - 1
                if count <= 0:
                    self._track_refs.pop(track, None)
                else:
                    self._track_refs[track] = count
        if location is None:
            self._entries.pop(oid, None)
        else:
            self._entries[oid] = location
            for track in set(location.tracks):
                self._track_refs[track] = self._track_refs.get(track, 0) + 1
        self._dirty_pages.add(self.page_of(oid))

    def oids(self) -> Iterator[int]:
        """All oids with entries."""
        return iter(tuple(self._entries))

    def tracks_in_use(self) -> set[int]:
        """Every track referenced by any on-disk entry."""
        return set(self._track_refs)

    def track_is_used(self, track: int) -> bool:
        """True if any entry still references *track*."""
        return track in self._track_refs

    # -- pages --------------------------------------------------------------------

    @staticmethod
    def page_of(oid: int) -> int:
        """The page index covering *oid*."""
        return oid // PAGE_SPAN

    def dirty_pages(self) -> set[int]:
        """Pages changed since the last :meth:`clear_dirty`."""
        return set(self._dirty_pages)

    def clear_dirty(self) -> None:
        """Forget dirty-page tracking (after a successful commit)."""
        self._dirty_pages.clear()

    def all_pages(self) -> set[int]:
        """Every page that has at least one entry."""
        return {self.page_of(oid) for oid in self._entries}

    def encode_page(self, page: int) -> bytes:
        """Serialize one page: entries for oids in [page*SPAN, …+SPAN)."""
        writer = Writer()
        writer.uvarint(page)
        base = page * PAGE_SPAN
        for oid in range(base, base + PAGE_SPAN):
            location = self._entries.get(oid)
            if location is None:
                writer.uvarint(_KIND_ABSENT)
            elif location.archived:
                writer.uvarint(_KIND_ARCHIVED)
                writer.uvarint(location.archive_key)
            else:
                writer.uvarint(_KIND_TRACKS)
                writer.uvarint(len(location.tracks))
                for track in location.tracks:
                    writer.uvarint(track)
        return writer.getvalue()

    def load_page(self, data: bytes) -> int:
        """Merge a serialized page into the table; returns its page index."""
        reader = Reader(data)
        page = reader.uvarint()
        base = page * PAGE_SPAN
        for oid in range(base, base + PAGE_SPAN):
            kind = reader.uvarint()
            if kind == _KIND_ABSENT:
                self._set(oid, None)
            elif kind == _KIND_TRACKS:
                count = reader.uvarint()
                tracks = tuple(reader.uvarint() for _ in range(count))
                self._set(oid, Location(tracks=tracks))
            elif kind == _KIND_ARCHIVED:
                self._set(oid, Location(archive_key=reader.uvarint()))
            else:
                raise CodecError(f"unknown object-table entry kind {kind}")
        self._dirty_pages.discard(page)
        return page


def encode_page_directory(directory: dict[int, tuple[int, ...]]) -> bytes:
    """Serialize the page directory (page index → tracks of its blob)."""
    writer = Writer()
    writer.uvarint(len(directory))
    for page in sorted(directory):
        writer.uvarint(page)
        tracks = directory[page]
        writer.uvarint(len(tracks))
        for track in tracks:
            writer.uvarint(track)
    return writer.getvalue()


def decode_page_directory(data: bytes) -> dict[int, tuple[int, ...]]:
    """Deserialize :func:`encode_page_directory` output."""
    reader = Reader(data)
    count = reader.uvarint()
    directory: dict[int, tuple[int, ...]] = {}
    for _ in range(count):
        page = reader.uvarint()
        n_tracks = reader.uvarint()
        directory[page] = tuple(reader.uvarint() for _ in range(n_tracks))
    return directory
