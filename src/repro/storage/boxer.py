"""The Boxer: fitting encoded object records into tracks.

Section 6: "The Linker is called by the Boxer, whose job it is to fit
objects into tracks after database changes."

A track image is a sequence of *fragment entries* terminated by a zero
byte:

    entry := uvarint(oid + 1)  uvarint(frag_seq)  uvarint(frag_total)
             uvarint(payload_length)  payload-bytes
    image := entry* 0x00 padding

Small objects share tracks (clustering); an object larger than one
track's capacity is split into fragments spread over several tracks, so
"only the size of secondary storage" limits object size (design goal B) —
unlike ST80's 64KB ceiling.  The Boxer packs records *in the order given*:
the Linker orders dirty objects parent-first along their primary logical
path, so physical access paths parallel logical access for tree data
(section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import CodecError, TrackOverflow
from .codec import Reader, Writer


@dataclass(frozen=True)
class Fragment:
    """One fragment of an object's encoded record."""

    oid: int
    seq: int
    total: int
    payload: bytes


@dataclass
class PackResult:
    """Outcome of a packing pass.

    ``images`` are new track payloads indexed 0..n-1 (the caller maps
    these local indexes onto allocated track numbers); ``placements``
    maps each oid to the local indexes of its fragments in order.
    """

    images: list[bytes]
    placements: dict[int, list[int]]


def _entry_header(oid: int, seq: int, total: int, payload_len: int) -> bytes:
    writer = Writer()
    writer.uvarint(oid + 1)
    writer.uvarint(seq)
    writer.uvarint(total)
    writer.uvarint(payload_len)
    return writer.getvalue()


def entry_size(oid: int, seq: int, total: int, payload_len: int) -> int:
    """Exact bytes an entry occupies in a track image."""
    return len(_entry_header(oid, seq, total, payload_len)) + payload_len


class TrackImageBuilder:
    """Accumulates fragment entries for one track."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._writer = Writer()

    @property
    def used(self) -> int:
        """Bytes consumed, including the terminator to come."""
        return len(self._writer) + 1

    @property
    def room(self) -> int:
        """Bytes still available for entries."""
        return self.capacity - self.used

    @property
    def empty(self) -> bool:
        """True if no entry has been added."""
        return len(self._writer) == 0

    def fits(self, oid: int, seq: int, total: int, payload_len: int) -> bool:
        """True if an entry of this shape would fit."""
        return entry_size(oid, seq, total, payload_len) <= self.room

    def add(self, fragment: Fragment) -> None:
        """Append a fragment entry."""
        size = entry_size(
            fragment.oid, fragment.seq, fragment.total, len(fragment.payload)
        )
        if size > self.room:
            raise TrackOverflow(
                f"fragment of oid {fragment.oid} needs {size} bytes, "
                f"{self.room} free"
            )
        self._writer.uvarint(fragment.oid + 1)
        self._writer.uvarint(fragment.seq)
        self._writer.uvarint(fragment.total)
        self._writer.uvarint(len(fragment.payload))
        self._writer.raw(fragment.payload)

    def finish(self) -> bytes:
        """The final track payload, zero-terminated."""
        return self._writer.getvalue() + b"\x00"


def read_entries(image: bytes) -> Iterator[Fragment]:
    """Parse all fragment entries from a track image."""
    reader = Reader(image)
    while reader.remaining() > 0:
        marker = reader.uvarint()
        if marker == 0:
            return
        oid = marker - 1
        seq = reader.uvarint()
        total = reader.uvarint()
        length = reader.uvarint()
        yield Fragment(oid, seq, total, reader.raw(length))


def find_fragment(image: bytes, oid: int, seq: int) -> Fragment:
    """Locate one object's fragment in a track image."""
    for fragment in read_entries(image):
        if fragment.oid == oid and fragment.seq == seq:
            return fragment
    raise CodecError(f"track image has no fragment {seq} of oid {oid}")


class Boxer:
    """Packs encoded records into track images, splitting large ones."""

    #: conservative per-fragment header allowance when splitting
    _HEADER_ALLOWANCE = 24

    def __init__(self, track_size: int) -> None:
        if track_size <= self._HEADER_ALLOWANCE + 1:
            raise ValueError(f"track size {track_size} is too small to box into")
        self.track_size = track_size

    def max_payload(self) -> int:
        """Largest single-fragment payload guaranteed to fit in a track."""
        return self.track_size - self._HEADER_ALLOWANCE - 1

    def split(self, oid: int, data: bytes) -> list[Fragment]:
        """Split one record into fragments no larger than a track."""
        chunk = self.max_payload()
        if len(data) <= chunk:
            return [Fragment(oid, 0, 1, data)]
        pieces = [data[i : i + chunk] for i in range(0, len(data), chunk)]
        total = len(pieces)
        return [Fragment(oid, seq, total, piece) for seq, piece in enumerate(pieces)]

    def pack(self, records: Sequence[tuple[int, bytes]]) -> PackResult:
        """Pack (oid, encoded-record) pairs into track images, in order.

        First-fit in arrival order: consecutive records share a track
        while they fit, so the Linker's parent-first ordering yields the
        paper's physical/logical path parallelism.  Multi-fragment
        objects occupy consecutive images.
        """
        images: list[bytes] = []
        placements: dict[int, list[int]] = {}
        builder = TrackImageBuilder(self.track_size)

        def flush() -> None:
            nonlocal builder
            if not builder.empty:
                images.append(builder.finish())
                builder = TrackImageBuilder(self.track_size)

        for oid, data in records:
            if oid in placements:
                raise CodecError(f"oid {oid} packed twice in one group")
            fragments = self.split(oid, data)
            spots: list[int] = []
            for fragment in fragments:
                if not builder.fits(
                    fragment.oid, fragment.seq, fragment.total, len(fragment.payload)
                ):
                    flush()
                spots.append(len(images))  # index this fragment will land in
                builder.add(fragment)
            placements[oid] = spots
        flush()
        return PackResult(images=images, placements=placements)


def assemble(fragments: Sequence[Fragment]) -> bytes:
    """Reassemble an object's encoded record from its fragments."""
    ordered = sorted(fragments, key=lambda f: f.seq)
    if not ordered:
        raise CodecError("no fragments to assemble")
    total = ordered[0].total
    if len(ordered) != total or [f.seq for f in ordered] != list(range(total)):
        raise CodecError(
            f"incomplete fragment chain for oid {ordered[0].oid}: "
            f"have {[f.seq for f in ordered]} of {total}"
        )
    return b"".join(f.payload for f in ordered)
