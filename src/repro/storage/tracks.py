"""The Track Manager: allocation and scheduling of whole-track I/O.

Section 6: "The Track Manager schedules reads and writes of tracks."

Responsibilities here:

* **Allocation** — hand out free tracks, preferring contiguous runs so
  the Boxer's clustering survives on the platter; reclaim superseded
  shadow tracks after a commit becomes durable.
* **Scheduling** — group writes are issued in ascending track order
  (an elevator pass), which minimizes simulated seek cost.
* **Bitmap persistence** — the allocation state serializes to a bitmap
  small enough to live in a couple of tracks, pointed to by the root
  record, so recovery restores it without scanning the disk.

Tracks 0 and 1 are reserved for the Commit Manager's two root slots.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import DiskError, StorageError

#: tracks reserved for the ping-pong root slots
RESERVED_TRACKS = (0, 1)


class TrackManager:
    """Allocates tracks and performs scheduled whole-track I/O."""

    def __init__(self, disk) -> None:
        self.disk = disk
        self._allocated: set[int] = set(RESERVED_TRACKS)

    # -- allocation -----------------------------------------------------------

    @property
    def track_count(self) -> int:
        """Total tracks on the underlying disk."""
        return self.disk.track_count

    @property
    def track_size(self) -> int:
        """Bytes per track on the underlying disk."""
        return self.disk.track_size

    def allocated_tracks(self) -> set[int]:
        """A copy of the allocated set (root slots included)."""
        return set(self._allocated)

    def free_count(self) -> int:
        """Number of unallocated tracks."""
        return self.track_count - len(self._allocated)

    def allocate(self, count: int) -> list[int]:
        """Allocate *count* tracks, contiguous when possible.

        A single contiguous run is searched first; if none is long
        enough, the lowest-numbered free tracks are used.  Raises
        :class:`StorageError` when the disk is full.
        """
        if count <= 0:
            return []
        if self.free_count() < count:
            raise StorageError(
                f"disk full: need {count} tracks, {self.free_count()} free"
            )
        run = self._find_contiguous(count)
        if run is None:
            run = []
            for track in range(self.track_count):
                if track not in self._allocated:
                    run.append(track)
                    if len(run) == count:
                        break
        self._allocated.update(run)
        return run

    def _find_contiguous(self, count: int) -> list[int] | None:
        start = None
        length = 0
        for track in range(self.track_count):
            if track in self._allocated:
                start = None
                length = 0
                continue
            if start is None:
                start = track
                length = 0
            length += 1
            if length == count:
                return list(range(start, start + count))
        return None

    def release(self, tracks: Iterable[int]) -> None:
        """Return tracks to the free pool (after the commit is durable)."""
        for track in tracks:
            if track in RESERVED_TRACKS:
                raise StorageError(f"cannot release reserved track {track}")
            self._allocated.discard(track)

    def mark_allocated(self, tracks: Iterable[int]) -> None:
        """Force tracks into the allocated set (used by recovery)."""
        self._allocated.update(tracks)

    # -- scheduled I/O -----------------------------------------------------------

    def read(self, track: int) -> bytes:
        """Read one track."""
        return self.disk.read_track(track)

    def read_many(self, tracks: Sequence[int]) -> dict[int, bytes]:
        """Read several tracks; issued in ascending order (one elevator pass)."""
        return {track: self.disk.read_track(track) for track in sorted(set(tracks))}

    def write(self, track: int, data: bytes) -> None:
        """Write one track."""
        if track in RESERVED_TRACKS:
            raise DiskError(f"track {track} is reserved for root records")
        self.disk.write_track(track, data)

    def write_group(self, writes: dict[int, bytes]) -> None:
        """Write a group of tracks in ascending order.

        This is raw scheduling only — atomicity of the group is the
        Commit Manager's job, which calls this for the shadow tracks and
        then publishes the root.
        """
        for track in sorted(writes):
            self.write(track, writes[track])

    # -- bitmap persistence ---------------------------------------------------------

    def bitmap_bytes(self) -> bytes:
        """The allocation set as a bitmap, one bit per track."""
        bitmap = bytearray((self.track_count + 7) // 8)
        for track in self._allocated:
            bitmap[track // 8] |= 1 << (track % 8)
        return bytes(bitmap)

    def load_bitmap(self, data: bytes) -> None:
        """Restore the allocation set from :meth:`bitmap_bytes` output."""
        allocated = set(RESERVED_TRACKS)
        for track in range(min(self.track_count, len(data) * 8)):
            if data[track // 8] & (1 << (track % 8)):
                allocated.add(track)
        self._allocated = allocated

    def bitmap_track_count(self) -> int:
        """How many tracks the bitmap needs when persisted."""
        return (len(self.bitmap_bytes()) + self.track_size - 1) // self.track_size

    def split_bitmap(self) -> list[bytes]:
        """The bitmap cut into track-sized chunks for persistence."""
        data = self.bitmap_bytes()
        size = self.track_size
        return [data[i : i + size] for i in range(0, len(data), size)] or [b""]

    def join_bitmap(self, chunks: Sequence[bytes]) -> bytes:
        """Reassemble :meth:`split_bitmap` chunks."""
        return b"".join(chunks)[: (self.track_count + 7) // 8]
