"""Archival media: moving history to tape or write-once storage.

Section 6: "A database administrator can explicitly move objects to other
media, such as tape or write-only memory.  Hence, while conceptually the
entire history of the database exists, some objects in it may become
temporarily or permanently inaccessible."

:class:`ArchiveMedia` models a removable volume: encoded object records
keyed by an archive key.  The stable store replaces an archived object's
track locations with its archive key; reading it without the volume
attached raises :class:`~repro.errors.ArchiveError`, and re-attaching the
volume makes the history accessible again.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..errors import ArchiveError


class ArchiveMedia:
    """A removable archive volume holding encoded object records."""

    def __init__(self, label: str = "tape-0") -> None:
        self.label = label
        self._records: dict[int, bytes] = {}
        self._next_key = 1

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"<ArchiveMedia {self.label!r} with {len(self)} records>"

    def store(self, data: bytes) -> int:
        """Write one encoded record; returns its archive key."""
        key = self._next_key
        self._next_key += 1
        self._records[key] = bytes(data)
        return key

    def fetch(self, key: int) -> bytes:
        """Read the record stored under *key*."""
        record = self._records.get(key)
        if record is None:
            raise ArchiveError(f"archive {self.label!r} has no record {key}")
        return record

    def keys(self) -> Iterator[int]:
        """All archive keys on this volume."""
        return iter(tuple(self._records))


class ArchiveDrive:
    """The mount point the stable store reads archives through."""

    def __init__(self) -> None:
        self._mounted: Optional[ArchiveMedia] = None

    @property
    def mounted(self) -> Optional[ArchiveMedia]:
        """The currently attached volume, if any."""
        return self._mounted

    def mount(self, media: ArchiveMedia) -> None:
        """Attach a volume."""
        self._mounted = media

    def unmount(self) -> None:
        """Detach the current volume; archived objects become inaccessible."""
        self._mounted = None

    def fetch(self, key: int) -> bytes:
        """Read an archived record through the mounted volume."""
        if self._mounted is None:
            raise ArchiveError(
                f"object is archived (key {key}) and no archive volume is mounted"
            )
        return self._mounted.fetch(key)
