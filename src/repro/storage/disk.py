"""A simulated disk accessed only by whole tracks.

Section 6: "We expect to obtain efficiency by having the database system
control secondary storage directly, without an intervening operating
system ... Disk access will always be by entire tracks, as a track is the
natural unit of physical access for a disk."

The paper's special-purpose hardware is substituted by this in-process
model (DESIGN.md section 2).  It preserves the properties the paper
reasons about:

* the unit of transfer is a whole track;
* a single track write is atomic, but a *group* of writes is not —
  a crash between writes tears the group (what the Commit Manager's
  safe writes must mask);
* seeks between distant tracks cost more than sequential access, so
  clustering related objects on nearby tracks is measurably better.

Fault injection: :meth:`SimulatedDisk.crash_after` schedules a crash on a
future write; :meth:`corrupt_track` flips bytes so checksum verification
paths can be exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from zlib import crc32

from ..errors import ChecksumError, DiskCrashed, DiskError


@dataclass
class DiskStats:
    """Access counters and the simulated time cost of them."""

    reads: int = 0
    writes: int = 0
    seek_distance: int = 0
    #: simulated elapsed cost: transfers + seek_cost_per_track * distance
    time_units: float = 0.0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.seek_distance = 0
        self.time_units = 0.0


@dataclass
class DiskGeometry:
    """Shape and cost model of a simulated disk."""

    track_count: int = 4096
    track_size: int = 4096
    #: cost of one full-track transfer, in arbitrary time units
    transfer_cost: float = 1.0
    #: cost per track of arm movement between accesses
    seek_cost: float = 0.01


class SimulatedDisk:
    """An array of fixed-size tracks with checksums and fault injection.

    All reads and writes are whole tracks (the natural unit of physical
    access).  Unwritten tracks read as zeroes.  Each write stores a CRC32
    of the track; reads verify it, so silent corruption surfaces as
    :class:`ChecksumError` — which the replication layer can mask.
    """

    def __init__(self, geometry: DiskGeometry | None = None) -> None:
        self.geometry = geometry or DiskGeometry()
        size = self.geometry.track_count
        self._tracks: list[bytes | None] = [None] * size
        self._checksums: list[int] = [0] * size
        self.stats = DiskStats()
        self._head_position = 0
        self._writes_until_crash: int | None = None
        self._crashed = False

    # -- geometry ------------------------------------------------------------

    @property
    def track_count(self) -> int:
        """Number of tracks on the disk."""
        return self.geometry.track_count

    @property
    def track_size(self) -> int:
        """Bytes per track."""
        return self.geometry.track_size

    # -- fault injection ------------------------------------------------------

    def crash_after(self, writes: int) -> None:
        """Crash the disk after *writes* more successful track writes."""
        if writes < 0:
            raise ValueError("crash_after needs a non-negative count")
        self._writes_until_crash = writes

    def cancel_crash(self) -> None:
        """Remove a scheduled crash (the experiment survived)."""
        self._writes_until_crash = None

    @property
    def crashed(self) -> bool:
        """True once the injected crash has fired; all I/O then fails."""
        return self._crashed

    def restart(self) -> None:
        """Bring a crashed disk back up; surviving track contents remain."""
        self._crashed = False
        self._writes_until_crash = None

    def corrupt_track(self, track: int, flip_byte: int = 0) -> None:
        """Flip one byte of a written track, leaving its checksum stale."""
        self._check_track(track)
        data = self._tracks[track]
        if data is None:
            raise DiskError(f"track {track} was never written; nothing to corrupt")
        mutable = bytearray(data)
        mutable[flip_byte % len(mutable)] ^= 0xFF
        self._tracks[track] = bytes(mutable)

    # -- I/O ---------------------------------------------------------------------

    def read_track(self, track: int) -> bytes:
        """Read a whole track; zeroes if never written.

        Raises :class:`ChecksumError` if the stored contents no longer
        match their checksum (injected corruption or a bad medium).
        """
        self._ensure_up()
        self._check_track(track)
        self._account(track, is_write=False)
        data = self._tracks[track]
        if data is None:
            return bytes(self.geometry.track_size)
        if crc32(data) != self._checksums[track]:
            raise ChecksumError(f"track {track} failed checksum verification")
        return data

    def write_track(self, track: int, data: bytes) -> None:
        """Write a whole track atomically.

        Raises :class:`DiskCrashed` when the injected crash point fires;
        the write that triggers the crash is *lost* (the crash happens
        just before the platter is touched), which models the worst case
        for a torn group write.
        """
        self._ensure_up()
        self._check_track(track)
        if len(data) > self.geometry.track_size:
            raise DiskError(
                f"track write of {len(data)} bytes exceeds track size "
                f"{self.geometry.track_size}"
            )
        if self._writes_until_crash is not None:
            if self._writes_until_crash == 0:
                self._crashed = True
                raise DiskCrashed(f"disk crashed writing track {track}")
            self._writes_until_crash -= 1
        self._account(track, is_write=True)
        padded = data.ljust(self.geometry.track_size, b"\x00")
        self._tracks[track] = padded
        self._checksums[track] = crc32(padded)

    def is_written(self, track: int) -> bool:
        """True if the track has ever been written."""
        self._check_track(track)
        return self._tracks[track] is not None

    def clone(self) -> "SimulatedDisk":
        """An independent copy of the platter's current contents.

        The copy starts up (not crashed), with fresh statistics and no
        scheduled faults — it is the platter, not the fault state.  The
        soak harness clones one formatted base image per crash point
        instead of re-formatting a database hundreds of times.
        """
        twin = SimulatedDisk(self.geometry)
        twin._tracks = list(self._tracks)
        twin._checksums = list(self._checksums)
        return twin

    # -- internals ------------------------------------------------------------------

    def _ensure_up(self) -> None:
        if self._crashed:
            raise DiskCrashed("disk is down; call restart() first")

    def _check_track(self, track: int) -> None:
        if not 0 <= track < self.geometry.track_count:
            raise DiskError(
                f"track {track} out of range 0..{self.geometry.track_count - 1}"
            )

    def _account(self, track: int, is_write: bool) -> None:
        distance = abs(track - self._head_position)
        self._head_position = track
        stats = self.stats
        stats.seek_distance += distance
        stats.time_units += (
            self.geometry.transfer_cost + self.geometry.seek_cost * distance
        )
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
