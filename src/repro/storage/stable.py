"""The stable store: the shared, durable object space.

This module composes the storage pipeline of section 6 —

    Linker → Boxer → Track Manager → Commit Manager

— under one object that also implements the
:class:`~repro.core.object_manager.ObjectStore` interface, so the
Database and DBA tooling can navigate committed state directly.

Layout on disk:

* tracks 0/1 — ping-pong root slots (Commit Manager);
* object records — boxed fragments on shadow-allocated tracks, located
  via the paged object table;
* object-table pages, the page directory, and the allocation bitmap —
  shadow-written tracks referenced from the root.

Every commit writes only new tracks and flips the root, so torn groups
are invisible after recovery.  Tracks whose last resident moved are
released only once the commit is durable.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from typing import Any, Optional, Sequence

from ..core.object_manager import FIRST_USER_OID, ObjectStore
from ..core.objects import GemObject
from ..errors import ArchiveError, NoSuchObject, RecoveryError
from .archive import ArchiveDrive, ArchiveMedia
from .boxer import Boxer, assemble, read_entries
from .cache import ObjectCache
from .codec import decode_catalog, decode_object_full, encode_catalog, encode_object
from .commit import CommitManager
from .object_table import (
    ObjectTable,
    decode_page_directory,
    encode_page_directory,
)
from .tracks import TrackManager

_CLASS_CATALOG_PREFIX = "class:"


def write_blob(tracks: TrackManager, data: bytes) -> tuple[list[int], dict[int, bytes]]:
    """Split *data* into length-prefixed track chunks on fresh tracks.

    Returns ``(track_numbers, pending_writes)``; the caller folds the
    writes into its commit group.
    """
    chunk_size = tracks.track_size - 4
    chunks = [data[i : i + chunk_size] for i in range(0, len(data), chunk_size)] or [b""]
    allocated = tracks.allocate(len(chunks))
    writes = {
        track: struct.pack("<I", len(chunk)) + chunk
        for track, chunk in zip(allocated, chunks)
    }
    return allocated, writes


def read_blob(tracks: TrackManager, track_numbers: Sequence[int]) -> bytes:
    """Reassemble a blob written by :func:`write_blob`."""
    parts = []
    for track in track_numbers:
        raw = tracks.read(track)
        (length,) = struct.unpack_from("<I", raw, 0)
        parts.append(raw[4 : 4 + length])
    return b"".join(parts)


class StableStore(ObjectStore):
    """The durable, shared object space behind all sessions."""

    def __init__(self, disk, cache_capacity: Optional[int] = None) -> None:
        super().__init__()
        self.disk = disk
        self.tracks = TrackManager(disk)
        self.boxer = Boxer(disk.track_size)
        self.table = ObjectTable()
        self.commit_manager = CommitManager(self.tracks)
        self.cache = ObjectCache(cache_capacity)
        #: a small LRU of raw track buffers: objects sharing a track
        #: (the Boxer's clustering) cost one read, not one each
        self._track_buffers: "OrderedDict[int, bytes]" = OrderedDict()
        self.track_buffer_capacity = 16
        self.archive_drive = ArchiveDrive()
        self._page_directory: dict[int, tuple[int, ...]] = {}
        self._page_directory_tracks: list[int] = []
        self._bitmap_tracks: list[int] = []
        self._catalog_tracks: list[int] = []
        self._next_oid = FIRST_USER_OID
        self._oid_lock = threading.Lock()
        self.last_tx_time = 0
        #: well-known oids (world, system dictionary, directory catalog)
        self.catalog: dict[str, int] = {}
        #: oid -> decoded-but-not-recompiled OPAL method sources
        self.pending_method_sources: dict[int, list[tuple[str, str, str]]] = {}
        #: objects adopted since the last persist (commit in flight)
        self._resident_only: dict[int, GemObject] = {}
        #: class objects, pinned for the store's lifetime: their method
        #: dictionaries are memory state that an LRU eviction would lose
        self._resident_classes: dict[int, GemObject] = {}
        #: optional :class:`~repro.obs.Observability` (wired by GemStone)
        self.obs = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def format(
        cls,
        disk,
        cache_capacity: Optional[int] = None,
        prepare=None,
    ) -> "StableStore":
        """Initialize a fresh database on *disk*: bootstrap classes, commit.

        *prepare*, when given, runs against the store before the initial
        commit, so database-level setup (the world root, the system
        dictionary) lands in the same transaction time 1 as the kernel
        classes — user commits then start at time 2.
        """
        store = cls(disk, cache_capacity)
        store.last_tx_time = 1
        store._next_oid = 1
        store.bootstrap_classes()
        store._next_oid = max(store._next_oid, FIRST_USER_OID)
        for name, oid in store.classes.items():
            store.catalog[_CLASS_CATALOG_PREFIX + name] = oid
        if prepare is not None:
            prepare(store)
        dirty = [store._resident_only[oid] for oid in sorted(store._resident_only)]
        store.persist(dirty, tx_time=1)
        return store

    @classmethod
    def open(cls, disk, cache_capacity: Optional[int] = None) -> "StableStore":
        """Recover an existing database from *disk*.

        Raises :class:`RecoveryError` when the disk holds no valid root.
        """
        store = cls(disk, cache_capacity)
        fields = store.commit_manager.recover()
        store.last_tx_time = fields["last_tx_time"]
        store._next_oid = fields["next_oid"]
        store._alias_counter = fields["alias_counter"]
        store._page_directory_tracks = list(fields["object_table_tracks"])
        store._bitmap_tracks = list(fields["allocation_tracks"])
        store._catalog_tracks = list(fields["catalog_tracks"])
        store.tracks.load_bitmap(read_blob(store.tracks, store._bitmap_tracks))
        store.catalog = decode_catalog(read_blob(store.tracks, store._catalog_tracks))
        directory_blob = read_blob(store.tracks, store._page_directory_tracks)
        store._page_directory = decode_page_directory(directory_blob)
        for page, page_tracks in store._page_directory.items():
            store.table.load_page(read_blob(store.tracks, page_tracks))
        store.table.clear_dirty()
        store._load_class_registry()
        return store

    def _load_class_registry(self) -> None:
        for key, oid in self.catalog.items():
            if key.startswith(_CLASS_CATALOG_PREFIX):
                self.classes[key[len(_CLASS_CATALOG_PREFIX) :]] = oid

    # ------------------------------------------------------------------
    # ObjectStore primitives
    # ------------------------------------------------------------------

    def object(self, oid: int) -> GemObject:
        pinned = self._resident_classes.get(oid)
        if pinned is not None:
            return pinned
        cached = self.cache.get(oid)
        if cached is not None:
            return cached
        resident = self._resident_only.get(oid)
        if resident is not None:
            return resident
        return self._load(oid)

    def contains(self, oid: int) -> bool:
        return (
            oid in self._resident_classes
            or oid in self.cache
            or oid in self._resident_only
            or oid in self.table
        )

    def register(self, obj: GemObject) -> GemObject:
        """Adopt an object created directly on the stable store (bootstrap)."""
        return self.adopt(obj)

    def adopt(self, obj: GemObject) -> GemObject:
        """Take ownership of *obj*; it becomes durable at the next persist."""
        from ..core.classes import GemClass

        self._resident_only[obj.oid] = obj
        if isinstance(obj, GemClass):
            self._resident_classes[obj.oid] = obj
        else:
            self.cache.put(obj)
        return obj

    def allocate_oid(self) -> int:
        with self._oid_lock:
            oid = self._next_oid
            self._next_oid += 1
            return oid

    def write_time(self) -> int:
        return self.last_tx_time

    def current_time(self) -> int:
        return self.last_tx_time

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def _load(self, oid: int) -> GemObject:
        location = self.table.get(oid)
        if location is None:
            raise NoSuchObject(oid)
        if location.archived:
            data = self.archive_drive.fetch(location.archive_key)
        else:
            data = self._read_record(oid, location.tracks)
        obj, sources = decode_object_full(data)
        if sources:
            self.pending_method_sources[oid] = sources
        from ..core.classes import GemClass

        if isinstance(obj, GemClass):
            self._resident_classes[oid] = obj
        else:
            self.cache.put(obj)
        return obj

    def _read_record(self, oid: int, track_numbers: Sequence[int]) -> bytes:
        fragments = []
        for track in track_numbers:
            image = self._read_track_buffered(track)
            fragments.extend(f for f in read_entries(image) if f.oid == oid)
        return assemble(fragments)

    def _read_track_buffered(self, track: int) -> bytes:
        buffered = self._track_buffers.get(track)
        if buffered is not None:
            self._track_buffers.move_to_end(track)
            return buffered
        image = self.tracks.read(track)
        self._track_buffers[track] = image
        while len(self._track_buffers) > self.track_buffer_capacity:
            self._track_buffers.popitem(last=False)
        return image

    def flush_caches(self) -> None:
        """Drop decoded objects and track buffers (benchmarks: cold reads)."""
        self.cache.flush()
        self._track_buffers.clear()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def persist(
        self,
        dirty_objects: Sequence[GemObject],
        tx_time: int,
        new_classes: dict[str, int] | None = None,
        catalog_updates: dict[str, int] | None = None,
    ) -> int:
        """Make *dirty_objects* durable as one safe-written commit group.

        The caller (the Transaction Manager, or :meth:`format`) has
        already merged the transaction via the Linker; objects arrive
        parent-first for clustering.  Returns the new root epoch.
        """
        obs = self.obs
        if obs is not None and obs.tracer.enabled:
            with obs.tracer.span(
                "storage.persist", objects=len(dirty_objects), tx_time=tx_time
            ):
                return self._persist(
                    dirty_objects, tx_time, new_classes, catalog_updates
                )
        return self._persist(dirty_objects, tx_time, new_classes, catalog_updates)

    def _persist(
        self,
        dirty_objects: Sequence[GemObject],
        tx_time: int,
        new_classes: dict[str, int] | None = None,
        catalog_updates: dict[str, int] | None = None,
    ) -> int:
        if new_classes:
            for name, oid in new_classes.items():
                self.classes[name] = oid
                self.catalog[_CLASS_CATALOG_PREFIX + name] = oid
        if catalog_updates:
            self.catalog.update(catalog_updates)

        writes: dict[int, bytes] = {}
        freed: set[int] = set()

        # 1. Boxer: encode and pack dirty objects into fresh tracks.
        records = [(obj.oid, encode_object(obj)) for obj in dirty_objects]
        pack = self.boxer.pack(records)
        new_tracks = self.tracks.allocate(len(pack.images))
        for index, image in enumerate(pack.images):
            writes[new_tracks[index]] = image
        for oid, spots in pack.placements.items():
            old = self.table.get(oid)
            if old is not None and not old.archived:
                freed.update(old.tracks)
            self.table.set_tracks(oid, [new_tracks[i] for i in spots])

        # 2. Shadow-write dirty object-table pages (multi-track blobs).
        for page in sorted(self.table.dirty_pages()):
            old_tracks = self._page_directory.get(page)
            if old_tracks:
                freed.update(old_tracks)
            page_tracks, page_writes = write_blob(
                self.tracks, self.table.encode_page(page)
            )
            writes.update(page_writes)
            self._page_directory[page] = tuple(page_tracks)

        # 3. Page directory and catalog blobs.
        freed.update(self._page_directory_tracks)
        directory_tracks, directory_writes = write_blob(
            self.tracks, encode_page_directory(self._page_directory)
        )
        writes.update(directory_writes)
        self._page_directory_tracks = directory_tracks

        freed.update(self._catalog_tracks)
        catalog_tracks, catalog_writes = write_blob(
            self.tracks, encode_catalog(self.catalog)
        )
        writes.update(catalog_writes)
        self._catalog_tracks = catalog_tracks

        # 4. Allocation bitmap reflecting the post-commit state.
        freed.update(self._bitmap_tracks)
        still_used = self.table.tracks_in_use() | set(directory_tracks)
        still_used.update(catalog_tracks)
        for page_tracks in self._page_directory.values():
            still_used.update(page_tracks)
        freed -= still_used
        bitmap_bytes = (self.tracks.track_count + 7) // 8
        bitmap_chunks = max(1, -(-bitmap_bytes // (self.tracks.track_size - 4)))
        bitmap_tracks = self.tracks.allocate(bitmap_chunks)
        post_allocated = (self.tracks.allocated_tracks() - freed) | set(bitmap_tracks)
        bitmap_writes = self._bitmap_writes(bitmap_tracks, post_allocated)
        writes.update(bitmap_writes)
        self._bitmap_tracks = bitmap_tracks

        # 5. Commit Manager: safe-write the whole group, flip the root.
        self.last_tx_time = max(self.last_tx_time, tx_time)
        epoch = self.commit_manager.commit(
            writes,
            {
                "last_tx_time": self.last_tx_time,
                "next_oid": self._next_oid,
                "alias_counter": self._alias_counter,
                "object_table_tracks": list(self._page_directory_tracks),
                "allocation_tracks": list(self._bitmap_tracks),
                "catalog_tracks": list(self._catalog_tracks),
            },
        )

        # 6. Durable: reclaim superseded shadow tracks, settle residents.
        for track in writes:
            self._track_buffers.pop(track, None)  # no stale buffers
        self.tracks.release(freed)
        self.table.clear_dirty()
        for obj in dirty_objects:
            self._resident_only.pop(obj.oid, None)
            self.cache.put(obj)
        return epoch

    def _bitmap_writes(
        self, bitmap_tracks: Sequence[int], allocated: set[int]
    ) -> dict[int, bytes]:
        bitmap = bytearray((self.tracks.track_count + 7) // 8)
        for track in allocated:
            bitmap[track // 8] |= 1 << (track % 8)
        data = bytes(bitmap)
        chunk_size = self.tracks.track_size - 4
        chunks = [data[i : i + chunk_size] for i in range(0, len(data), chunk_size)]
        while len(chunks) < len(bitmap_tracks):
            chunks.append(b"")
        return {
            track: struct.pack("<I", len(chunk)) + chunk
            for track, chunk in zip(bitmap_tracks, chunks)
        }

    # ------------------------------------------------------------------
    # enumeration (DBA tooling)
    # ------------------------------------------------------------------

    def all_oids(self):
        """Every on-disk oid plus commit-in-flight residents."""
        seen = set(self.table.oids()) | set(self._resident_only)
        return iter(sorted(seen))

    def instances_of(self, gem_class):
        """Iterate all instances of a class (subclasses included).

        Loads every non-archived object: a DBA-scale scan, matching the
        paper's administrator tooling rather than a query path (queries
        use directories).
        """
        cls = self._coerce_class(gem_class)
        for oid in self.all_oids():
            location = self.table.get(oid)
            if location is not None and location.archived:
                continue
            obj = self.object(oid)
            if self.object(obj.class_oid).is_subclass_of(self, cls):
                yield obj

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def compact(self, tx_time: int, root_oids: Sequence[int] = ()) -> int:
        """Rewrite every on-disk object into fresh, clustered tracks.

        Shadow paging never overwrites live tracks, so long-lived tracks
        accumulate superseded copies next to still-live residents.  A
        compaction pass re-boxes everything: objects reachable from
        *root_oids* (default: the catalog's well-known objects) go first
        in parent-first order — restoring the Boxer's clustering — and
        unreachable objects follow (no GC: they are rewritten, never
        dropped).  Archived objects keep their archive locations.

        Returns the number of tracks reclaimed.
        """
        roots = list(root_oids) or [
            oid for oid in self.catalog.values() if isinstance(oid, int)
        ]
        order = self._compaction_order(roots)
        objects = [self.object(oid) for oid in order]
        before = len(self.tracks.allocated_tracks())
        self.persist(objects, tx_time)
        return before - len(self.tracks.allocated_tracks())

    def _compaction_order(self, roots: Sequence[int]) -> list[int]:
        on_disk = {
            oid
            for oid in self.table.oids()
            if not self.table.get(oid).archived
        }
        ordered: list[int] = []
        seen: set[int] = set()
        stack = [oid for oid in roots if oid in on_disk]
        while stack:
            oid = stack.pop()
            if oid in seen:
                continue
            seen.add(oid)
            ordered.append(oid)
            children = [
                child
                for child in self.object(oid).referenced_oids()
                if child in on_disk and child not in seen
            ]
            stack.extend(reversed(children))
        for oid in sorted(on_disk - seen):  # unreachable: kept, unclustered
            ordered.append(oid)
        return ordered

    # ------------------------------------------------------------------
    # archival
    # ------------------------------------------------------------------

    def archive_object(self, oid: int, media: ArchiveMedia) -> int:
        """Move an object's record to *media*; returns its archive key.

        The object stays conceptually in the database (its oid and the
        references to it remain); reading it requires the volume to be
        mounted.  The table change becomes durable at the next commit.
        """
        location = self.table.get(oid)
        if location is None:
            raise NoSuchObject(oid)
        if location.archived:
            raise ArchiveError(f"oid {oid} is already archived")
        data = self._read_record(oid, location.tracks)
        key = media.store(data)
        self.table.set_archived(oid, key)
        self.tracks.release(
            t for t in location.tracks if t not in self.table.tracks_in_use()
        )
        self.cache.evict(oid)
        return key

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def storage_report(self) -> dict[str, Any]:
        """Occupancy snapshot for DBA tooling and benchmarks.

        Besides occupancy, the report walks the disk wrapper chain
        (resilience, fault injection, replication — whatever is stacked
        under this store) and surfaces each layer's health counters, so
        a DBA can see masked retries, degradation, and per-replica
        failure/repair totals without reaching into the stack.
        """
        report = {
            "epoch": self.commit_manager.current_epoch,
            "last_tx_time": self.last_tx_time,
            "objects": len(self.table),
            "tracks_allocated": len(self.tracks.allocated_tracks()),
            "tracks_free": self.tracks.free_count(),
            "cache_entries": len(self.cache),
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_evictions": self.cache.evictions,
            "cache_hit_rate": self.cache.hit_rate,
        }
        report.update(_disk_health(self.disk))
        return report


def _disk_health(disk: Any) -> dict[str, Any]:
    """Flattened health counters from every layer of a disk stack.

    Layers are duck-typed by their counters, not imported by class —
    the storage package must not depend on ``repro.faults``.  The walk
    follows ``.inner`` through single-disk wrappers and fans out over
    ``.replicas``/``.health`` at a replicated volume.
    """
    health: dict[str, Any] = {}
    layer = disk
    while layer is not None:
        if hasattr(layer, "max_retries") and hasattr(layer, "backoff_time"):
            # the resilience layer: bounded retry + read-only degradation
            health["resilience_retries"] = layer.retries
            health["resilience_backoff_time"] = layer.backoff_time
            health["resilience_degraded"] = bool(layer.degraded)
        elif hasattr(layer, "transient_errors") and hasattr(layer, "plan"):
            # the fault-injection layer: what was actually thrown at us
            health["faults_transient"] = layer.transient_errors
            health["faults_rotted_tracks"] = layer.rotted_tracks
            health["faults_delays"] = layer.delays
        if hasattr(layer, "replicas") and hasattr(layer, "health"):
            health["replication_repairs"] = layer.repairs
            health["replication_stale_repairs"] = layer.stale_repairs
            for index, replica in enumerate(layer.health):
                prefix = f"replica{index}"
                health[f"{prefix}_write_failures"] = replica.write_failures
                health[f"{prefix}_read_failures"] = replica.read_failures
                health[f"{prefix}_repairs"] = replica.repairs
            break  # replicas are leaf SimulatedDisks; nothing below
        layer = getattr(layer, "inner", None)
    return health
