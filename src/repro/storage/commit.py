"""The Commit Manager: safe writing of track groups.

Section 6: "The Commit Manager provides safe writing for groups of
tracks.  Safe writing guarantees that all the tracks in the group get
written, or none get written, and that the tracks in the group replace
their old versions atomically."

Mechanism: shadow paging with ping-pong root slots.

1. Every track in the group is written to a *freshly allocated* track —
   never over live data.
2. The root record (epoch, object-table pointers, allocation bitmap
   pointers) is then written to whichever of tracks 0/1 does **not**
   hold the current root, with the epoch incremented and a CRC over the
   payload.

A crash anywhere before step 2 completes leaves the old root — and thus
the entire old database state — intact; recovery picks the valid root
slot with the highest epoch.  The single root-track write is the atomic
commit point (a single track write is atomic on the simulated disk, as
on real hardware).
"""

from __future__ import annotations

import struct
from typing import Any, Optional
from zlib import crc32

from ..errors import ChecksumError, CodecError, RecoveryError
from .codec import decode_root, encode_root
from .tracks import TrackManager

#: the two alternating root slots
ROOT_SLOTS = (0, 1)


def encode_root_track(fields: dict[str, Any]) -> bytes:
    """Frame a root record for a track: length, payload, CRC32."""
    payload = encode_root(fields)
    return struct.pack("<I", len(payload)) + payload + struct.pack(
        "<I", crc32(payload)
    )


def decode_root_track(data: bytes) -> dict[str, Any]:
    """Unframe and validate a root track; raises on any damage."""
    if len(data) < 8:
        raise CodecError("root track too short")
    (length,) = struct.unpack_from("<I", data, 0)
    if length == 0 or length + 8 > len(data):
        raise CodecError("root track has implausible length")
    payload = data[4 : 4 + length]
    (stored_crc,) = struct.unpack_from("<I", data, 4 + length)
    if crc32(payload) != stored_crc:
        raise ChecksumError("root record CRC mismatch")
    return decode_root(payload)


class CommitManager:
    """Writes track groups all-or-nothing via shadow tracks + root flip."""

    def __init__(self, track_manager: TrackManager) -> None:
        self.tracks = track_manager
        self._current_slot: Optional[int] = None
        self._current_epoch = 0
        #: replication hook, called after every published root with
        #: ``(epoch, root_slot, root_image, shadow_writes)`` — the exact
        #: framed root-track bytes and the exact shadow group, so a log
        #: replay reproduces the platter byte-for-byte.  A raising sink
        #: propagates out of :meth:`commit`: the root is durable locally,
        #: but the commit is *not acknowledged* until the record ships.
        self.log_sink = None

    @property
    def current_epoch(self) -> int:
        """Epoch of the last durable root (0 before any commit)."""
        return self._current_epoch

    def commit(self, shadow_writes: dict[int, bytes], root_fields: dict[str, Any]) -> int:
        """Safe-write *shadow_writes* then publish a new root; return its epoch.

        *shadow_writes* must target only freshly allocated tracks — the
        Track Manager refuses the reserved root slots, and callers uphold
        the never-overwrite-live-data discipline.  Any injected crash
        during the group or the root write leaves the previous commit as
        the recoverable state.
        """
        for slot in ROOT_SLOTS:
            if slot in shadow_writes:
                raise CodecError(f"shadow group may not include root slot {slot}")
        self.tracks.write_group(shadow_writes)
        next_epoch = self._current_epoch + 1
        fields = dict(root_fields)
        fields["epoch"] = next_epoch
        next_slot = self._pick_next_slot()
        root_image = encode_root_track(fields)
        self.tracks.disk.write_track(next_slot, root_image)
        self._current_slot = next_slot
        self._current_epoch = next_epoch
        if self.log_sink is not None:
            self.log_sink(next_epoch, next_slot, root_image, shadow_writes)
        return next_epoch

    def _pick_next_slot(self) -> int:
        if self._current_slot is None:
            return ROOT_SLOTS[0]
        return ROOT_SLOTS[1] if self._current_slot == ROOT_SLOTS[0] else ROOT_SLOTS[0]

    # -- recovery -----------------------------------------------------------

    def recover(self) -> dict[str, Any]:
        """Find the newest valid root; adopt its slot/epoch; return fields.

        Raises :class:`RecoveryError` when neither slot holds a valid
        root (a freshly formatted disk, or catastrophic damage).
        """
        best: Optional[tuple[int, int, dict[str, Any]]] = None
        for slot in ROOT_SLOTS:
            try:
                if not self.tracks.disk.is_written(slot):
                    continue
                fields = decode_root_track(self.tracks.disk.read_track(slot))
            except (CodecError, ChecksumError):
                continue
            if best is None or fields["epoch"] > best[0]:
                best = (fields["epoch"], slot, fields)
        if best is None:
            raise RecoveryError("no valid root record on disk")
        epoch, slot, fields = best
        self._current_slot = slot
        self._current_epoch = epoch
        return fields
