"""Track-level replication with durable epoch-stamped read-repair.

Section 6 lists "requests for replication of data" among the database
amenities OPAL exposes.  :class:`ReplicatedDisk` presents the same
whole-track interface as :class:`~repro.storage.disk.SimulatedDisk` over
N replica disks:

* writes go to every live replica (write-all), and every accepted write
  is stamped with a per-track *epoch* that is **persisted in the track
  image itself** — an 8-byte header prepended to the payload, so the
  stamp travels in the same atomic track write as the data it protects;
* reads come from a replica holding the **current** epoch of the track
  (read-any among the up-to-date), so a replica that was down during a
  write and restarted — checksum-valid but stale — is never served;
* both damaged (checksum-failed) and stale copies are repaired in
  passing from a good one (read-repair), and per-replica health
  counters record every failure and repair.

Because the epoch is on the platter, a *restarted process* (a fresh
:class:`ReplicatedDisk` over the surviving platters, with no in-memory
state) rederives each track's current epoch lazily, by scanning the
stamps of the readable replicas on first access.  Before this, the
epoch map lived only in process memory, so a restart could serve a
checksum-valid-but-stale replica undetected.  The remaining blind spot
is fundamental without a quorum: if *every* replica holding the current
stamp is down at rederivation time, the survivors' highest stamp is
adopted — the same exposure a single disk has to losing its platter.

A read fails only when no replica can produce the current copy.  If a
stale copy survives — data exists, but serving it would be silent time
travel — the typed :class:`~repro.errors.StaleReplicaError` is raised
(with the underlying failure as its cause); otherwise the last
underlying error propagates.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence

from ..errors import ChecksumError, DiskCrashed, DiskError, StaleReplicaError
from .disk import SimulatedDisk

#: bytes prepended to every replica track image: the track's epoch
EPOCH_HEADER_SIZE = 8


def _stamp(epoch: int, data: bytes) -> bytes:
    return struct.pack("<Q", epoch) + data


def _unstamp(image: bytes) -> tuple[int, bytes]:
    (epoch,) = struct.unpack_from("<Q", image, 0)
    return epoch, image[EPOCH_HEADER_SIZE:]


@dataclass
class ReplicaHealth:
    """Per-replica failure and repair counters."""

    write_failures: int = 0
    read_failures: int = 0
    repairs: int = 0  #: times this replica was rewritten from a good copy

    @property
    def failures(self) -> int:
        """All recorded failures, reads and writes together."""
        return self.write_failures + self.read_failures


class ReplicatedDisk:
    """N-way replicated disk with read-repair, same interface as one disk."""

    def __init__(self, replicas: Sequence[SimulatedDisk]) -> None:
        if not replicas:
            raise DiskError("a replicated disk needs at least one replica")
        geometry = replicas[0].geometry
        if geometry.track_size <= EPOCH_HEADER_SIZE:
            raise DiskError(
                f"replica tracks must exceed the {EPOCH_HEADER_SIZE}-byte "
                "epoch header"
            )
        for replica in replicas[1:]:
            if (
                replica.track_count != geometry.track_count
                or replica.track_size != geometry.track_size
            ):
                raise DiskError("replicas must share geometry")
        self.replicas = list(replicas)
        self.repairs = 0
        self.stale_repairs = 0
        self.health = [ReplicaHealth() for _ in self.replicas]
        #: track -> the epoch of its latest accepted write (a cache over
        #: the on-platter stamps; rederived lazily after a restart)
        self._epochs: dict[int, int] = {}
        #: per replica: track -> the epoch that replica last accepted
        self._replica_epochs: list[dict[int, int]] = [{} for _ in self.replicas]

    # -- geometry (mirrors SimulatedDisk) ------------------------------------

    @property
    def track_count(self) -> int:
        """Tracks per replica."""
        return self.replicas[0].track_count

    @property
    def track_size(self) -> int:
        """Payload bytes per track (the epoch header claims the rest)."""
        return self.replicas[0].track_size - EPOCH_HEADER_SIZE

    # -- epoch derivation ------------------------------------------------------

    def current_epoch_of(self, track: int) -> int:
        """The track's current epoch: cached, or rederived from stamps.

        Rederivation reads every replica that admits to holding the
        track and adopts the highest on-platter stamp — the path a
        restarted process takes on its first access to each track.
        Returns 0 for a track no readable replica has written.
        """
        cached = self._epochs.get(track)
        if cached is not None:
            return cached
        derived = self._derive_epoch(track)
        if derived:
            # never cache 0: a down replica may still hold a real write,
            # so keep rederiving until something is learned
            self._epochs[track] = derived
        return derived

    def _derive_epoch(self, track: int) -> int:
        best = 0
        for index, replica in enumerate(self.replicas):
            try:
                if not replica.is_written(track):
                    continue
                image = replica.read_track(track)
            except (ChecksumError, DiskError):
                continue  # down or damaged; a later access may learn more
            epoch, _ = _unstamp(image)
            self._replica_epochs[index][track] = epoch
            best = max(best, epoch)
        return best

    # -- I/O -------------------------------------------------------------------

    def write_track(self, track: int, data: bytes) -> None:
        """Write to every live replica, stamping the track's next epoch.

        A failing replica — down, transient fault, whatever
        :class:`DiskError` it raises — is skipped and its failure
        recorded (it will be repaired on a later read); the epoch
        advances only if at least one replica accepted the write.  If
        *no* replica accepted it, the last failure propagates.
        """
        self._check_track(track)
        if len(data) > self.track_size:
            raise DiskError(
                f"track write of {len(data)} bytes exceeds track size "
                f"{self.track_size}"
            )
        epoch = self.current_epoch_of(track) + 1
        image = _stamp(epoch, data)
        wrote = 0
        last_error: Exception | None = None
        for index, replica in enumerate(self.replicas):
            try:
                replica.write_track(track, image)
            except DiskError as error:
                self.health[index].write_failures += 1
                last_error = error
                continue
            self._replica_epochs[index][track] = epoch
            wrote += 1
        if wrote == 0:
            raise last_error if last_error else DiskCrashed("all replicas down")
        self._epochs[track] = epoch

    def read_track(self, track: int) -> bytes:
        """Read the current copy, repairing damaged and stale replicas.

        Only replicas stamped with the track's current epoch are served;
        a checksum-valid but superseded copy (the replica missed a write
        while down) is treated exactly like a damaged one — skipped, then
        repaired from the copy that is served.
        """
        self._check_track(track)
        current = self.current_epoch_of(track)
        stale: list[int] = []
        damaged: list[int] = []
        last_error: Exception | None = None
        for index, replica in enumerate(self.replicas):
            known = self._replica_epochs[index].get(track)
            if current and known is not None and known != current:
                stale.append(index)
                continue
            try:
                written = replica.is_written(track)
                image = replica.read_track(track)
            except (ChecksumError, DiskError) as error:
                self.health[index].read_failures += 1
                last_error = error
                if isinstance(error, ChecksumError):
                    damaged.append(index)
                continue
            if not written:
                if current:
                    stale.append(index)  # missed every write of the track
                    continue
                return bytes(self.track_size)  # never written anywhere
            epoch, data = _unstamp(image)
            self._replica_epochs[index][track] = epoch
            if current and epoch != current:
                stale.append(index)
                continue
            self._repair(track, data, damaged, stale, current or epoch)
            return data
        if stale:
            # a superseded copy exists and could have been served — the
            # typed error says so, whatever else went wrong is the cause
            raise StaleReplicaError(
                f"no replica holds the current copy of track {track}"
            ) from last_error
        if last_error is not None:
            raise last_error
        raise DiskError("no replicas to read from")

    def _repair(
        self,
        track: int,
        data: bytes,
        damaged: Sequence[int],
        stale: Sequence[int],
        epoch: int,
    ) -> None:
        for index in damaged:
            if self._write_repair(index, track, data, epoch):
                self.repairs += 1
        for index in stale:
            if self._write_repair(index, track, data, epoch):
                self.repairs += 1
                self.stale_repairs += 1

    def _write_repair(self, index: int, track: int, data: bytes, epoch: int) -> bool:
        try:
            self.replicas[index].write_track(track, _stamp(epoch, data))
        except DiskError:
            return False  # still down; a later read will try again
        self.health[index].repairs += 1
        if epoch:
            self._replica_epochs[index][track] = epoch
        return True

    def is_written(self, track: int) -> bool:
        """True if any live replica has the track."""
        self._check_track(track)
        for replica in self.replicas:
            try:
                if replica.is_written(track):
                    return True
            except DiskCrashed:
                continue
        return False

    def _check_track(self, track: int) -> None:
        if not 0 <= track < self.track_count:
            raise DiskError(
                f"track {track} out of range 0..{self.track_count - 1}"
            )
