"""Track-level replication.

Section 6 lists "requests for replication of data" among the database
amenities OPAL exposes.  :class:`ReplicatedDisk` presents the same
whole-track interface as :class:`~repro.storage.disk.SimulatedDisk` over
N replica disks:

* writes go to every live replica (write-all);
* reads come from the first replica that returns a checksum-valid track
  (read-any), and a damaged or stale copy is repaired in passing from a
  good one (read-repair).

A read fails only when *every* replica is down or corrupt, so the commit
pipeline and recovery path run unchanged over a replicated volume.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ChecksumError, DiskCrashed, DiskError
from .disk import SimulatedDisk


class ReplicatedDisk:
    """N-way replicated disk with read-repair, same interface as one disk."""

    def __init__(self, replicas: Sequence[SimulatedDisk]) -> None:
        if not replicas:
            raise DiskError("a replicated disk needs at least one replica")
        geometry = replicas[0].geometry
        for replica in replicas[1:]:
            if (
                replica.track_count != geometry.track_count
                or replica.track_size != geometry.track_size
            ):
                raise DiskError("replicas must share geometry")
        self.replicas = list(replicas)
        self.repairs = 0

    # -- geometry (mirrors SimulatedDisk) ------------------------------------

    @property
    def track_count(self) -> int:
        """Tracks per replica."""
        return self.replicas[0].track_count

    @property
    def track_size(self) -> int:
        """Bytes per track."""
        return self.replicas[0].track_size

    # -- I/O -------------------------------------------------------------------

    def write_track(self, track: int, data: bytes) -> None:
        """Write to every live replica.

        A down replica is skipped (it will be repaired on later reads);
        if *no* replica accepted the write, the failure propagates.
        """
        wrote = 0
        last_error: Exception | None = None
        for replica in self.replicas:
            try:
                replica.write_track(track, data)
                wrote += 1
            except DiskCrashed as error:
                last_error = error
        if wrote == 0:
            raise last_error if last_error else DiskCrashed("all replicas down")

    def read_track(self, track: int) -> bytes:
        """Read from the first healthy replica, repairing damaged ones."""
        damaged: list[SimulatedDisk] = []
        last_error: Exception | None = None
        for replica in self.replicas:
            try:
                data = replica.read_track(track)
            except (ChecksumError, DiskCrashed) as error:
                last_error = error
                if isinstance(error, ChecksumError):
                    damaged.append(replica)
                continue
            for victim in damaged:
                try:
                    victim.write_track(track, data)
                    self.repairs += 1
                except DiskCrashed:
                    pass
            return data
        raise last_error if last_error else DiskError("no replicas to read from")

    def is_written(self, track: int) -> bool:
        """True if any live replica has the track."""
        for replica in self.replicas:
            try:
                if replica.is_written(track):
                    return True
            except DiskCrashed:
                continue
        return False
