"""Binary codec for objects, values and storage metadata.

Section 6 describes the on-disk representation: "objects are broken into
elements and associations, which are organized ... under a header for the
object."  This module is the pure encoding half of that: it turns
:class:`~repro.core.objects.GemObject` instances (headers, elements,
association tables) and storage metadata (root records, object-table
pages) into byte strings and back.  Fragmenting records into tracks is the
Boxer's job; the codec knows nothing about tracks.

Values are tagged; integers and times use unsigned LEB128 varints (zigzag
for signed), so small values — the overwhelmingly common case — cost one
or two bytes.

Class objects are encoded with their structural definition (name,
superclass, instance-variable names) and the *source text* of their
OPAL-compiled methods; primitives are re-seeded by the kernel at open
time, and stored sources are recompiled lazily.  (The real GemStone
stored compiledMethod objects; storing source preserves behaviour while
keeping the codec independent of the bytecode set.)
"""

from __future__ import annotations

import struct
from typing import Any

from ..core.classes import GemClass
from ..core.history import AssociationTable
from ..core.objects import GemObject
from ..core.values import Char, Ref, Symbol
from ..errors import CodecError

# value tags
_TAG_NIL = 0
_TAG_TRUE = 1
_TAG_FALSE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_SYMBOL = 6
_TAG_CHAR = 7
_TAG_REF = 8

# record kinds
RECORD_PLAIN = 0
RECORD_CLASS = 1

#: magic prefix of an encoded object record
RECORD_MAGIC = b"GO"


class Writer:
    """An append-only byte sink with varint and struct helpers."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def __len__(self) -> int:
        return len(self._buffer)

    def getvalue(self) -> bytes:
        """The accumulated bytes."""
        return bytes(self._buffer)

    def raw(self, data: bytes) -> None:
        """Append raw bytes."""
        self._buffer += data

    def uvarint(self, value: int) -> None:
        """Append an unsigned LEB128 varint."""
        if value < 0:
            raise CodecError(f"uvarint cannot encode negative {value}")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._buffer.append(byte | 0x80)
            else:
                self._buffer.append(byte)
                return

    def svarint(self, value: int) -> None:
        """Append a signed (zigzag) varint."""
        self.uvarint((value << 1) ^ (value >> 63) if value < 0 else value << 1)

    def string(self, text: str) -> None:
        """Append a length-prefixed UTF-8 string."""
        data = text.encode("utf-8")
        self.uvarint(len(data))
        self.raw(data)

    def double(self, value: float) -> None:
        """Append an 8-byte IEEE double."""
        self.raw(struct.pack("<d", value))


class Reader:
    """A cursor over bytes, mirror of :class:`Writer`."""

    __slots__ = ("_data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self._data = data
        self.pos = pos

    def remaining(self) -> int:
        """Bytes left after the cursor."""
        return len(self._data) - self.pos

    def raw(self, count: int) -> bytes:
        """Read *count* raw bytes."""
        if self.remaining() < count:
            raise CodecError("unexpected end of encoded data")
        chunk = self._data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def byte(self) -> int:
        """Read one byte as an int."""
        return self.raw(1)[0]

    def uvarint(self) -> int:
        """Read an unsigned LEB128 varint."""
        result = 0
        shift = 0
        while True:
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise CodecError("varint too long")

    def svarint(self) -> int:
        """Read a signed (zigzag) varint."""
        raw = self.uvarint()
        return (raw >> 1) ^ -(raw & 1)

    def string(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        length = self.uvarint()
        return self.raw(length).decode("utf-8")

    def double(self) -> float:
        """Read an 8-byte IEEE double."""
        return struct.unpack("<d", self.raw(8))[0]


# --------------------------------------------------------------------------
# values
# --------------------------------------------------------------------------

def encode_value(writer: Writer, value: Any) -> None:
    """Append a tagged value (immediate or Ref) to *writer*."""
    if value is None:
        writer.raw(bytes([_TAG_NIL]))
    elif value is True:
        writer.raw(bytes([_TAG_TRUE]))
    elif value is False:
        writer.raw(bytes([_TAG_FALSE]))
    elif isinstance(value, Symbol):
        writer.raw(bytes([_TAG_SYMBOL]))
        writer.string(str(value))
    elif isinstance(value, int):
        writer.raw(bytes([_TAG_INT]))
        writer.svarint(value)
    elif isinstance(value, float):
        writer.raw(bytes([_TAG_FLOAT]))
        writer.double(value)
    elif isinstance(value, str):
        writer.raw(bytes([_TAG_STR]))
        writer.string(value)
    elif isinstance(value, Char):
        writer.raw(bytes([_TAG_CHAR]))
        writer.uvarint(value.codepoint)
    elif isinstance(value, Ref):
        writer.raw(bytes([_TAG_REF]))
        writer.uvarint(value.oid)
    else:
        raise CodecError(f"cannot encode {type(value).__name__} value {value!r}")


def decode_value(reader: Reader) -> Any:
    """Read one tagged value from *reader*."""
    tag = reader.byte()
    if tag == _TAG_NIL:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return reader.svarint()
    if tag == _TAG_FLOAT:
        return reader.double()
    if tag == _TAG_STR:
        return reader.string()
    if tag == _TAG_SYMBOL:
        return Symbol(reader.string())
    if tag == _TAG_CHAR:
        return Char(chr(reader.uvarint()))
    if tag == _TAG_REF:
        return Ref(reader.uvarint())
    raise CodecError(f"unknown value tag {tag}")


# --------------------------------------------------------------------------
# objects
# --------------------------------------------------------------------------

def encode_object(obj: GemObject) -> bytes:
    """Encode a full object record: header, elements, association tables."""
    writer = Writer()
    writer.raw(RECORD_MAGIC)
    kind = RECORD_CLASS if isinstance(obj, GemClass) else RECORD_PLAIN
    writer.raw(bytes([kind]))
    writer.uvarint(obj.oid)
    writer.uvarint(obj.class_oid)
    writer.uvarint(obj.segment_id)
    writer.uvarint(obj.created_at)
    if kind == RECORD_CLASS:
        _encode_class_definition(writer, obj)
    writer.uvarint(len(obj.elements))
    for name, table in obj.elements.items():
        encode_value(writer, name)
        _encode_table(writer, table)
    return writer.getvalue()


def _encode_class_definition(writer: Writer, cls: GemClass) -> None:
    writer.string(cls.name)
    writer.uvarint(0 if cls.superclass_oid is None else cls.superclass_oid + 1)
    writer.uvarint(len(cls.instvar_names))
    for name in cls.instvar_names:
        writer.string(name)
    for methods in (cls.methods, cls.class_methods):
        sourced = [
            (selector, method.source)
            for selector, method in methods.items()
            if getattr(method, "source", None) is not None
        ]
        writer.uvarint(len(sourced))
        for selector, source in sourced:
            writer.string(selector)
            writer.string(source)


def _encode_table(writer: Writer, table: AssociationTable) -> None:
    writer.uvarint(len(table))
    previous = 0
    for time, value in table.history():
        writer.uvarint(time - previous)  # delta: times are ascending
        previous = time
        encode_value(writer, value)


def decode_object(data: bytes) -> GemObject:
    """Decode an object record produced by :func:`encode_object`.

    Stored method sources of class records are discarded here; use
    :func:`decode_object_full` when they are needed (the database layer
    recompiles them at open time).
    """
    obj, _ = decode_object_full(data)
    return obj


def decode_object_full(data: bytes) -> tuple[GemObject, list[tuple[str, str, str]]]:
    """Decode an object record together with stored method sources.

    Returns ``(object, sources)`` where each source entry is
    ``(side, selector, source_text)`` with side ``"instance"`` or
    ``"class"``; *sources* is empty for plain objects.
    """
    reader = Reader(data)
    if reader.raw(2) != RECORD_MAGIC:
        raise CodecError("bad object record magic")
    kind = reader.byte()
    oid = reader.uvarint()
    class_oid = reader.uvarint()
    segment_id = reader.uvarint()
    created_at = reader.uvarint()
    sources: list[tuple[str, str, str]] = []
    if kind == RECORD_CLASS:
        obj: GemObject = _decode_class_definition(
            reader, oid, class_oid, segment_id, created_at, sources
        )
    elif kind == RECORD_PLAIN:
        obj = GemObject(oid, class_oid, segment_id, created_at)
    else:
        raise CodecError(f"unknown record kind {kind}")
    count = reader.uvarint()
    for _ in range(count):
        name = decode_value(reader)
        obj.elements[name] = _decode_table(reader)
    return obj, sources


def _decode_class_definition(
    reader: Reader,
    oid: int,
    class_oid: int,
    segment_id: int,
    created_at: int,
    sources: list[tuple[str, str, str]],
) -> GemClass:
    name = reader.string()
    raw_super = reader.uvarint()
    superclass_oid = None if raw_super == 0 else raw_super - 1
    instvars = tuple(reader.string() for _ in range(reader.uvarint()))
    cls = GemClass(
        oid=oid,
        class_oid=class_oid,
        name=name,
        superclass_oid=superclass_oid,
        instvar_names=instvars,
        segment_id=segment_id,
        created_at=created_at,
    )
    for side in ("instance", "class"):
        for _ in range(reader.uvarint()):
            selector = reader.string()
            source = reader.string()
            sources.append((side, selector, source))
    return cls


def _decode_table(reader: Reader) -> AssociationTable:
    table = AssociationTable()
    count = reader.uvarint()
    time = 0
    for _ in range(count):
        time += reader.uvarint()
        table.record(time, decode_value(reader))
    return table


# --------------------------------------------------------------------------
# root records
# --------------------------------------------------------------------------

ROOT_MAGIC = b"GSRT"


_ROOT_TRACK_LISTS = ("object_table_tracks", "allocation_tracks", "catalog_tracks")


def encode_root(fields: dict[str, Any]) -> bytes:
    """Encode a root record: the single mutable anchor of the database.

    Expected fields: ``epoch``, ``last_tx_time``, ``next_oid``,
    ``alias_counter``, and the track lists ``object_table_tracks``,
    ``allocation_tracks`` and ``catalog_tracks``.  The catalog (name →
    well-known oid) is large, so it lives in its own blob and the root
    only points at it — the root must always fit a single track, since
    its write is the atomic commit point.
    """
    writer = Writer()
    writer.raw(ROOT_MAGIC)
    writer.uvarint(fields["epoch"])
    writer.uvarint(fields["last_tx_time"])
    writer.uvarint(fields["next_oid"])
    writer.uvarint(fields["alias_counter"])
    for key in _ROOT_TRACK_LISTS:
        tracks = fields.get(key, [])
        writer.uvarint(len(tracks))
        for track in tracks:
            writer.uvarint(track)
    return writer.getvalue()


def decode_root(data: bytes) -> dict[str, Any]:
    """Decode a root record; raises :class:`CodecError` if malformed."""
    reader = Reader(data)
    if reader.raw(4) != ROOT_MAGIC:
        raise CodecError("bad root magic")
    fields: dict[str, Any] = {
        "epoch": reader.uvarint(),
        "last_tx_time": reader.uvarint(),
        "next_oid": reader.uvarint(),
        "alias_counter": reader.uvarint(),
    }
    for key in _ROOT_TRACK_LISTS:
        fields[key] = [reader.uvarint() for _ in range(reader.uvarint())]
    return fields


def encode_catalog(catalog: dict[str, int]) -> bytes:
    """Serialize the well-known-name catalog blob."""
    writer = Writer()
    writer.uvarint(len(catalog))
    for name, oid in sorted(catalog.items()):
        writer.string(name)
        writer.uvarint(oid)
    return writer.getvalue()


def decode_catalog(data: bytes) -> dict[str, int]:
    """Deserialize :func:`encode_catalog` output."""
    reader = Reader(data)
    catalog: dict[str, int] = {}
    for _ in range(reader.uvarint()):
        name = reader.string()
        catalog[name] = reader.uvarint()
    return catalog
