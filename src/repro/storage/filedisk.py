"""A file-backed platter: ``SimulatedDisk`` semantics, OS-durable slots.

The simulated disk dies with its process, which is exactly the wrong
property for ``repro.shard.procs``' SIGKILL sweeps: a worker killed
mid-2PC must come back with its prepared state intact.  ``FileDisk``
keeps the in-memory model (whole-track I/O, per-track CRC32, the same
crash/corruption fault hooks) and additionally mirrors every track
write into one file via ``os.pwrite`` on a raw descriptor — a single
direct syscall per track, no user-space buffering — so the platter
state a SIGKILLed process leaves behind is whatever tracks it had
fully written, never a torn half-slot of Python buffering.

File layout::

    header : magic "RPFD" | version u32 | track_count u32 | track_size u32
    slot i : crc32 u32 | written u32 | track_size bytes

``open`` loads every written slot back into memory; a slot whose bytes
do not match its recorded CRC (a torn write at kill time) loads with
the stale CRC so ``read_track`` raises the ordinary ``ChecksumError``
and the recovery stack treats it exactly like any corrupt medium.
"""

from __future__ import annotations

import os
import struct
from zlib import crc32

from ..errors import DiskError
from .disk import DiskGeometry, SimulatedDisk

_MAGIC = b"RPFD"
_VERSION = 1
_HEADER = struct.Struct("<4sIII")
_SLOT = struct.Struct("<II")


class FileDisk(SimulatedDisk):
    """A simulated disk whose tracks survive the process."""

    def __init__(self, path: str, geometry: DiskGeometry, fd: int) -> None:
        super().__init__(geometry)
        self.path = path
        self._fd: int | None = fd
        self._slot_size = _SLOT.size + geometry.track_size

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, path: str, geometry: DiskGeometry | None = None) -> "FileDisk":
        """Format a fresh platter file (truncating any existing one)."""
        geometry = geometry or DiskGeometry()
        fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644)
        os.pwrite(
            fd,
            _HEADER.pack(_MAGIC, _VERSION, geometry.track_count, geometry.track_size),
            0,
        )
        return cls(path, geometry, fd)

    @classmethod
    def open(cls, path: str) -> "FileDisk":
        """Reopen an existing platter, loading every written slot."""
        fd = os.open(path, os.O_RDWR)
        header = os.pread(fd, _HEADER.size, 0)
        if len(header) < _HEADER.size:
            os.close(fd)
            raise DiskError(f"{path} is not a platter file (short header)")
        magic, version, track_count, track_size = _HEADER.unpack(header)
        if magic != _MAGIC or version != _VERSION:
            os.close(fd)
            raise DiskError(f"{path} is not a version-{_VERSION} platter file")
        geometry = DiskGeometry(track_count=track_count, track_size=track_size)
        disk = cls(path, geometry, fd)
        for track in range(track_count):
            slot = os.pread(fd, disk._slot_size, disk._slot_offset(track))
            if len(slot) < disk._slot_size:
                break  # sparse tail: nothing past here was ever written
            stored_crc, written = _SLOT.unpack_from(slot, 0)
            if not written:
                continue
            data = slot[_SLOT.size :]
            # a torn slot keeps its stored (mismatching) CRC: read_track
            # then raises ChecksumError, the normal bad-medium signal
            disk._tracks[track] = bytes(data)
            disk._checksums[track] = stored_crc
        return disk

    # -- the durable mirror --------------------------------------------------

    def write_track(self, track: int, data: bytes) -> None:
        super().write_track(track, data)
        if self._fd is None:
            raise DiskError(f"platter file {self.path} is closed")
        padded = self._tracks[track]
        os.pwrite(
            self._fd,
            _SLOT.pack(crc32(padded), 1) + padded,
            self._slot_offset(track),
        )

    def _slot_offset(self, track: int) -> int:
        return _HEADER.size + track * self._slot_size

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the descriptor (contents stay on disk)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __del__(self) -> None:
        try:
            self.close()
        except OSError:
            pass


__all__ = ["FileDisk"]
