"""The Transaction Manager: optimistic concurrency control.

Section 6: "The Transaction Manager is shared by all invocations of the
Object Manager, and handles concurrent use of the permanent database in
an optimistic manner.  It records accesses to the database for each
session, and validates them for consistency when a transaction commits."

Scheme: backward validation.  Sessions read freely (each read is
recorded); at commit, under the commit lock, a transaction's read set is
checked against the write sets of every transaction that committed after
it began.  Any overlap — including a *phantom* overlap, where a later
commit wrote some element of an object this transaction enumerated — is
a :class:`~repro.errors.TransactionConflict`; the losing transaction is
aborted (its workspace discarded) rather than made to wait, which is the
optimistic trade the paper chose.

A successful commit drives the storage pipeline: Linker → (commit
listeners, e.g. the Directory Manager) → Boxer/Commit Manager via
``store.persist``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import StorageError, TransactionConflict
from ..storage.linker import Linker
from .clock import TransactionClock

#: signature of a commit listener: (tx_time, dirty_objects, writes, creations)
CommitListener = Callable[[int, list, list, list], None]


@dataclass
class CommittedTransaction:
    """The validation footprint one commit leaves behind."""

    tx_time: int
    writes: frozenset  # of (oid, element name)
    written_oids: frozenset  # of oid


@dataclass
class TransactionStats:
    """Counters the OCC benchmarks report."""

    commits: int = 0
    aborts: int = 0
    read_only_commits: int = 0
    validations: int = 0
    storage_failures: int = 0

    @property
    def abort_rate(self) -> float:
        """Fraction of attempted read-write commits that conflicted."""
        attempts = self.commits + self.aborts
        return self.aborts / attempts if attempts else 0.0


class TransactionManager:
    """Shared coordinator: validation, commit times, the commit pipeline."""

    def __init__(self, store, clock: Optional[TransactionClock] = None) -> None:
        self.store = store
        self.clock = clock or TransactionClock(start=store.last_tx_time)
        self.linker = Linker(store)
        self.stats = TransactionStats()
        self._lock = threading.RLock()
        self._log: list[CommittedTransaction] = []
        self._active: dict[int, int] = {}  # session_id -> start time
        self._listeners: list[CommitListener] = []

    # -- listeners ---------------------------------------------------------------

    def add_commit_listener(self, listener: CommitListener) -> None:
        """Register a callable run inside each commit, after the Linker.

        The Directory Manager uses this to restructure directories "as
        needed" (section 6) with the committing transaction's writes.
        """
        self._listeners.append(listener)

    # -- session lifecycle -----------------------------------------------------------

    def begin(self, session) -> None:
        """Start a (new) transaction for *session*."""
        with self._lock:
            session.start_time = self.clock.latest
            self._active[session.session_id] = session.start_time

    def end_session(self, session) -> None:
        """Forget an ending session."""
        with self._lock:
            self._active.pop(session.session_id, None)
            session.reset_transaction_state()

    def abort(self, session) -> None:
        """Discard the session's workspace and begin a fresh transaction."""
        with self._lock:
            session.reset_transaction_state()
            self.begin(session)

    # -- commit ------------------------------------------------------------------------

    def commit(self, session) -> int:
        """Validate and commit *session*'s transaction; return its time.

        On conflict the transaction is aborted (workspace discarded, new
        transaction begun) and :class:`TransactionConflict` is raised
        carrying the conflicting (oid, element) pairs.
        """
        with self._lock:
            if not session.has_uncommitted_changes:
                self.stats.read_only_commits += 1
                self.begin(session)
                return self.clock.latest

            conflicts = self._validate(session)
            if conflicts:
                self.stats.aborts += 1
                self.abort(session)
                raise TransactionConflict(
                    f"validation failed on {len(conflicts)} element(s)",
                    conflicts=tuple(sorted(conflicts, key=repr)),
                )

            tx_time = self.clock.assign()
            creations = list(session.creations)
            writes = list(session.write_log)
            dirty = self.linker.incorporate(creations, writes, tx_time)
            for listener in self._listeners:
                listener(tx_time, dirty, writes, creations)
            try:
                self.store.persist(
                    dirty, tx_time, new_classes=session.new_classes()
                )
            except StorageError:
                # the storage stack failed mid-pipeline (injected crash,
                # degraded volume): nothing became durable, so discard
                # the workspace and begin fresh — the session object
                # survives the failure and can retry after recovery
                self.stats.storage_failures += 1
                self.abort(session)
                raise
            self._log.append(
                CommittedTransaction(
                    tx_time=tx_time,
                    writes=frozenset((w.oid, w.name) for w in writes),
                    written_oids=frozenset(w.oid for w in writes),
                )
            )
            self._trim_log()
            self.stats.commits += 1
            session.reset_transaction_state()
            self.begin(session)
            return tx_time

    def _validate(self, session) -> set:
        """Backward validation against commits since the session began."""
        self.stats.validations += 1
        conflicts: set = set()
        for committed in self._log:
            if committed.tx_time <= session.start_time:
                continue
            conflicts |= committed.writes & session.read_set
            for oid in committed.written_oids & session.enum_reads:
                conflicts.add((oid, "<enumeration>"))
        return conflicts

    def _trim_log(self) -> None:
        """Drop log entries no active transaction could conflict with."""
        if not self._active:
            self._log.clear()
            return
        horizon = min(self._active.values())
        self._log = [entry for entry in self._log if entry.tx_time > horizon]

    # -- SafeTime ------------------------------------------------------------------------

    def safe_time(self) -> int:
        """Section 5.4's SafeTime.

        Commit times are assigned at commit, strictly after every
        committed time, so the latest committed time is already immune
        to change by any running transaction.
        """
        return self.clock.latest

    # -- introspection ------------------------------------------------------------------

    def active_count(self) -> int:
        """Number of sessions with an open transaction."""
        with self._lock:
            return len(self._active)
