"""The Transaction Manager: optimistic concurrency control.

Section 6: "The Transaction Manager is shared by all invocations of the
Object Manager, and handles concurrent use of the permanent database in
an optimistic manner.  It records accesses to the database for each
session, and validates them for consistency when a transaction commits."

Scheme: backward validation.  Sessions read freely (each read is
recorded); at commit, under the commit lock, a transaction's read set is
checked against the write sets of every transaction that committed after
it began.  Any overlap — including a *phantom* overlap, where a later
commit wrote some element of an object this transaction enumerated — is
a :class:`~repro.errors.TransactionConflict`; the losing transaction is
aborted (its workspace discarded) rather than made to wait, which is the
optimistic trade the paper chose.

A successful commit drives the storage pipeline: Linker → (commit
listeners, e.g. the Directory Manager) → Boxer/Commit Manager via
``store.persist``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import OverloadedError, StorageError, TransactionConflict
from ..govern.backoff import CommitPolicy
from ..storage.linker import Linker
from .clock import TransactionClock

#: signature of a commit listener: (tx_time, dirty_objects, writes, creations)
CommitListener = Callable[[int, list, list, list], None]


@dataclass
class CommittedTransaction:
    """The validation footprint one commit leaves behind."""

    tx_time: int
    writes: frozenset  # of (oid, element name)
    written_oids: frozenset  # of oid


@dataclass
class PreparedTransaction:
    """Phase one of a cross-shard commit: a validated, detached workspace.

    Between PREPARE and DECIDE the transaction is *in doubt*: it has
    voted yes and must remain committable, so its full read/write
    footprint stays registered with the Transaction Manager and every
    concurrent validation treats it as a lock — any overlap (read-write,
    write-read, or write-write) conflicts the later committer.  The
    workspace content (creations, writes, new classes) is detached from
    the session, which immediately begins a fresh transaction.
    """

    gtid: str
    session_id: int
    creations: list
    write_log: list
    new_classes: dict
    writes: frozenset  # of (oid, element name)
    written_oids: frozenset  # of oid
    read_set: frozenset  # of (oid, element name)
    enum_reads: frozenset  # of oid


@dataclass
class TransactionStats:
    """Counters the OCC benchmarks report."""

    commits: int = 0
    aborts: int = 0
    read_only_commits: int = 0
    validations: int = 0
    storage_failures: int = 0
    # two-phase-commit counters (repro.shard)
    prepares: int = 0
    prepared_commits: int = 0
    prepared_aborts: int = 0
    # contention-policy counters
    conflict_retries: int = 0
    backoff_units: float = 0.0
    storms_detected: int = 0
    priority_grants: int = 0
    priority_rejections: int = 0

    @property
    def abort_rate(self) -> float:
        """Fraction of attempted read-write commits that conflicted."""
        attempts = self.commits + self.aborts
        return self.aborts / attempts if attempts else 0.0


class TransactionManager:
    """Shared coordinator: validation, commit times, the commit pipeline."""

    def __init__(
        self,
        store,
        clock: Optional[TransactionClock] = None,
        policy: Optional[CommitPolicy] = None,
        backoff_clock=None,
    ) -> None:
        self.store = store
        self.clock = clock or TransactionClock(start=store.last_tx_time)
        self.linker = Linker(store)
        self.stats = TransactionStats()
        self._policy = policy or CommitPolicy()
        if backoff_clock is None:
            # imported lazily: repro.faults pulls in the soak harness,
            # which imports the full database stack
            from ..faults.plan import FaultClock

            backoff_clock = FaultClock()
        #: deterministic clock all contention backoff is charged to
        self.backoff_clock = backoff_clock
        #: optional :class:`~repro.obs.Observability` (wired by GemStone):
        #: commit spans + commit/abort/retry counters land there
        self.obs = None
        self._lock = threading.RLock()
        self._log: list[CommittedTransaction] = []
        self._active: dict[int, int] = {}  # session_id -> start time
        #: in-doubt cross-shard transactions, keyed by global txn id
        self._prepared: dict[str, PreparedTransaction] = {}
        self._listeners: list[CommitListener] = []
        # contention-policy state
        self._streaks: dict[int, int] = {}  # session_id -> abort streak
        self._outcomes: deque[bool] = deque(  # True = abort
            maxlen=self._policy.storm_window
        )
        self._storming = False
        self._priority_session: Optional[int] = None
        self._priority_granted_at = 0.0

    @property
    def policy(self) -> CommitPolicy:
        """The contention policy; assigning one resizes the storm window."""
        return self._policy

    @policy.setter
    def policy(self, policy: CommitPolicy) -> None:
        self._policy = policy
        self._outcomes = deque(self._outcomes, maxlen=policy.storm_window)
        self._storming = False

    # -- listeners ---------------------------------------------------------------

    def add_commit_listener(self, listener: CommitListener) -> None:
        """Register a callable run inside each commit, after the Linker.

        The Directory Manager uses this to restructure directories "as
        needed" (section 6) with the committing transaction's writes.
        """
        self._listeners.append(listener)

    # -- session lifecycle -----------------------------------------------------------

    def begin(self, session) -> None:
        """Start a (new) transaction for *session*."""
        with self._lock:
            session.start_time = self.clock.latest
            self._active[session.session_id] = session.start_time

    def end_session(self, session) -> None:
        """Forget an ending session."""
        with self._lock:
            self._active.pop(session.session_id, None)
            session.reset_transaction_state()

    def abort(self, session) -> None:
        """Discard the session's workspace and begin a fresh transaction."""
        with self._lock:
            session.reset_transaction_state()
            self.begin(session)

    # -- commit ------------------------------------------------------------------------

    def commit(self, session) -> int:
        """Validate and commit *session*'s transaction; return its time.

        On conflict the transaction is aborted (workspace discarded, new
        transaction begun) and :class:`TransactionConflict` is raised
        carrying the conflicting (oid, element) pairs.
        """
        obs = self.obs
        if obs is None:
            return self._commit(session)
        with obs.tracer.span("txn.commit") as span:
            try:
                tx_time = self._commit(session)
            except TransactionConflict:
                obs.registry.inc("txn.aborts")
                span.note(outcome="conflict")
                raise
            except StorageError:
                obs.registry.inc("txn.storage_failures")
                span.note(outcome="storage_failure")
                raise
            span.note(tx_time=tx_time)
        obs.registry.inc("txn.commits")
        return tx_time

    def _commit(self, session) -> int:
        with self._lock:
            if not session.has_uncommitted_changes:
                self.stats.read_only_commits += 1
                self.begin(session)
                return self.clock.latest

            self._enforce_priority(session)
            conflicts = self._validate(session)
            if conflicts:
                self.stats.aborts += 1
                delay = self._record_abort(session)
                self.abort(session)
                error = TransactionConflict(
                    f"validation failed on {len(conflicts)} element(s)",
                    conflicts=tuple(sorted(conflicts, key=repr)),
                )
                error.retry_after = delay
                raise error

            tx_time = self.clock.assign()
            creations = list(session.creations)
            writes = list(session.write_log)
            dirty = self.linker.incorporate(creations, writes, tx_time)
            for listener in self._listeners:
                listener(tx_time, dirty, writes, creations)
            try:
                self.store.persist(
                    dirty, tx_time, new_classes=session.new_classes()
                )
            except StorageError:
                # the storage stack failed mid-pipeline (injected crash,
                # degraded volume): nothing became durable, so discard
                # the workspace and begin fresh — the session object
                # survives the failure and can retry after recovery
                self.stats.storage_failures += 1
                self.abort(session)
                raise
            self._log.append(
                CommittedTransaction(
                    tx_time=tx_time,
                    writes=frozenset((w.oid, w.name) for w in writes),
                    written_oids=frozenset(w.oid for w in writes),
                )
            )
            self._trim_log()
            self.stats.commits += 1
            self._record_success(session)
            session.reset_transaction_state()
            self.begin(session)
            return tx_time

    # -- two-phase commit (repro.shard) ------------------------------------------

    def prepare(self, session, gtid: str) -> Optional[PreparedTransaction]:
        """Phase one: validate *session*'s transaction and detach it as *gtid*.

        On success the workspace is detached into a
        :class:`PreparedTransaction` that every later validation treats
        as a lock, the session begins a fresh transaction, and the
        participant may vote yes.  A read-only transaction returns
        ``None`` — there is nothing to lock, the participant votes yes
        read-only and drops out of phase two.  On conflict the workspace
        is discarded and :class:`TransactionConflict` is raised: the
        participant votes no.
        """
        with self._lock:
            if gtid in self._prepared:
                return self._prepared[gtid]  # idempotent re-prepare
            if not session.has_uncommitted_changes:
                self.begin(session)
                return None
            conflicts = self._validate(session)
            if conflicts:
                self.stats.aborts += 1
                delay = self._record_abort(session)
                self.abort(session)
                error = TransactionConflict(
                    f"prepare failed on {len(conflicts)} element(s)",
                    conflicts=tuple(sorted(conflicts, key=repr)),
                )
                error.retry_after = delay
                raise error
            prepared = PreparedTransaction(
                gtid=gtid,
                session_id=session.session_id,
                creations=list(session.creations),
                write_log=list(session.write_log),
                new_classes=session.new_classes(),
                writes=frozenset((w.oid, w.name) for w in session.write_log),
                written_oids=frozenset(w.oid for w in session.write_log),
                read_set=frozenset(session.read_set),
                enum_reads=frozenset(session.enum_reads),
            )
            self._prepared[gtid] = prepared
            self.stats.prepares += 1
            if self.obs is not None:
                self.obs.registry.inc("txn.prepares")
            session.reset_transaction_state()
            self.begin(session)
            return prepared

    def commit_prepared(self, gtid: str, extra_dirty=None) -> int:
        """Phase two, commit side: apply the prepared workspace durably.

        *extra_dirty* is a callable ``(tx_time) -> list of objects``
        whose result joins the same safe group write — the shard worker
        uses it to clear its durable prepared record in the *same*
        atomic commit, so a crash can never leave the record and the
        data disagreeing.  Raises ``KeyError`` for an unknown gtid.
        """
        with self._lock:
            prepared = self._prepared[gtid]
            tx_time = self.clock.assign()
            dirty = self.linker.incorporate(
                prepared.creations, prepared.write_log, tx_time
            )
            for listener in self._listeners:
                listener(tx_time, dirty, prepared.write_log, prepared.creations)
            if extra_dirty is not None:
                for obj in extra_dirty(tx_time):
                    if obj not in dirty:
                        dirty.append(obj)
            try:
                self.store.persist(
                    dirty, tx_time, new_classes=prepared.new_classes
                )
            except StorageError:
                # nothing became durable; the transaction stays prepared
                # (in doubt) for a later retry or post-restart RESOLVE
                self.stats.storage_failures += 1
                raise
            del self._prepared[gtid]
            self._log.append(
                CommittedTransaction(
                    tx_time=tx_time,
                    writes=prepared.writes,
                    written_oids=prepared.written_oids,
                )
            )
            self._trim_log()
            self.stats.commits += 1
            self.stats.prepared_commits += 1
            if self.obs is not None:
                self.obs.registry.inc("txn.prepared_commits")
            return tx_time

    def abort_prepared(self, gtid: str) -> bool:
        """Phase two, abort side: drop the prepared workspace and its locks."""
        with self._lock:
            prepared = self._prepared.pop(gtid, None)
            if prepared is None:
                return False
            self.stats.prepared_aborts += 1
            if self.obs is not None:
                self.obs.registry.inc("txn.prepared_aborts")
            return True

    def in_doubt(self) -> list[str]:
        """Gtids prepared but not yet decided, in prepare order."""
        with self._lock:
            return list(self._prepared)

    # -- contention policy -------------------------------------------------------

    def _enforce_priority(self, session) -> None:
        """Push other committers back while a starving session holds
        priority, so it finally validates against a quiet log."""
        holder = self._priority_session
        if holder is None or holder == session.session_id:
            return
        age = self.backoff_clock.now - self._priority_granted_at
        if age > self.policy.priority_timeout or holder not in self._active:
            self._priority_session = None  # the grant lapsed
            return
        self.stats.priority_rejections += 1
        raise OverloadedError(
            f"session {holder} holds commit priority",
            retry_after=self.policy.priority_retry_after,
        )

    def _record_abort(self, session) -> float:
        """Note a conflict: streaks, storm window, aging, backoff charge.

        Returns the jittered backoff delay, already charged to the
        deterministic clock, so the caller can carry it to the session.
        """
        self._note_outcome(aborted=True)
        streak = self._streaks.get(session.session_id, 0) + 1
        self._streaks[session.session_id] = streak
        if (
            streak >= self.policy.starvation_threshold
            and self._priority_session is None
        ):
            self._priority_session = session.session_id
            self._priority_granted_at = self.backoff_clock.now
            self.stats.priority_grants += 1
        delay = self.policy.backoff_delay(streak, self._storming)
        self.backoff_clock.advance(delay)
        self.stats.backoff_units += delay
        return delay

    def _record_success(self, session) -> None:
        self._note_outcome(aborted=False)
        self._streaks.pop(session.session_id, None)
        if self._priority_session == session.session_id:
            self._priority_session = None  # the grant served its purpose

    def _note_outcome(self, aborted: bool) -> None:
        self._outcomes.append(aborted)
        window = self._outcomes
        storming = (
            len(window) == self.policy.storm_window
            and sum(window) / len(window) >= self.policy.storm_threshold
        )
        if storming and not self._storming:
            self.stats.storms_detected += 1
        self._storming = storming

    @property
    def storming(self) -> bool:
        """True while the outcome window shows an abort storm."""
        return self._storming

    def run_transaction(self, session, body: Callable[[Any], Any]) -> int:
        """Run *body* and commit, retrying under the contention policy.

        OCC discards the loser's workspace, so a conflicted transaction
        cannot simply re-commit — *body* is re-executed against the fresh
        state each attempt (it must therefore be idempotent in intent).
        Backoff is charged to the deterministic clock inside ``commit``;
        priority pushbacks wait out their ``retry_after``.  Raises the
        last typed error when ``max_attempts`` is exhausted.
        """
        last_error: Optional[Exception] = None
        for _attempt in range(self.policy.max_attempts):
            try:
                body(session)
                return session.commit()
            except TransactionConflict as error:
                last_error = error
                self.stats.conflict_retries += 1
                if self.obs is not None:
                    self.obs.registry.inc("txn.conflict_retries")
            except OverloadedError as error:
                last_error = error
                self.backoff_clock.advance(
                    error.retry_after or self.policy.priority_retry_after
                )
                # discard the pushed-back workspace: every attempt must
                # re-run *body* from a clean transaction, or staged
                # read-modify-writes would compound across retries
                session.abort()
        assert last_error is not None
        raise last_error

    def _validate(self, session) -> set:
        """Backward validation against commits since the session began.

        Prepared (in-doubt) cross-shard transactions are also checked,
        as locks: they voted yes and must stay committable, so any
        read-write, write-read, or write-write overlap conflicts the
        *later* committer regardless of start times.
        """
        self.stats.validations += 1
        conflicts: set = set()
        for committed in self._log:
            if committed.tx_time <= session.start_time:
                continue
            conflicts |= committed.writes & session.read_set
            for oid in committed.written_oids & session.enum_reads:
                conflicts.add((oid, "<enumeration>"))
        if self._prepared:
            session_writes = frozenset(
                (w.oid, w.name) for w in session.write_log
            )
            session_written_oids = frozenset(
                w.oid for w in session.write_log
            )
            for prepared in self._prepared.values():
                conflicts |= prepared.writes & session.read_set
                conflicts |= prepared.writes & session_writes
                conflicts |= prepared.read_set & session_writes
                for oid in prepared.written_oids & session.enum_reads:
                    conflicts.add((oid, "<enumeration>"))
                for oid in session_written_oids & prepared.enum_reads:
                    conflicts.add((oid, "<enumeration>"))
        return conflicts

    def _trim_log(self) -> None:
        """Drop log entries no active transaction could conflict with."""
        if not self._active:
            self._log.clear()
            return
        horizon = min(self._active.values())
        self._log = [entry for entry in self._log if entry.tx_time > horizon]

    # -- SafeTime ------------------------------------------------------------------------

    def safe_time(self) -> int:
        """Section 5.4's SafeTime.

        Commit times are assigned at commit, strictly after every
        committed time, so the latest committed time is already immune
        to change by any running transaction.
        """
        return self.clock.latest

    # -- introspection ------------------------------------------------------------------

    def active_count(self) -> int:
        """Number of sessions with an open transaction."""
        with self._lock:
            return len(self._active)
