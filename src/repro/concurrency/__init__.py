"""``repro.concurrency`` — transactions, sessions and authorization.

The shared Transaction Manager (optimistic validation, commit times),
per-user sessions with private workspaces, and segment-based
authorization (sections 4.3, 5.3.1 and 6 of the paper).
"""

from .authorization import (
    Authorizer,
    Privilege,
    Segment,
    User,
    WORLD_SEGMENT,
)
from .clock import TransactionClock
from .sessions import SessionObjectManager
from .transactions import (
    CommittedTransaction,
    TransactionManager,
    TransactionStats,
)

__all__ = [
    "Authorizer",
    "CommittedTransaction",
    "Privilege",
    "Segment",
    "SessionObjectManager",
    "TransactionClock",
    "TransactionManager",
    "TransactionStats",
    "User",
    "WORLD_SEGMENT",
]
