"""The transaction-time clock.

Section 5.3.1: GemStone records history in *transaction time* — "the time
when an event is recorded in the database."  Transaction time is
system-generated, cannot be modified by users, and every write of one
transaction carries the same time.

The clock is a monotone logical counter owned by the Transaction Manager;
:meth:`TransactionClock.assign` hands out the commit time for exactly one
transaction under the commit lock, which doubles as Reed's observation
(cited in section 5.3.1) that transaction timestamps synchronize
concurrent transactions — one mechanism serves both history and
concurrency control.
"""

from __future__ import annotations

import threading


class TransactionClock:
    """Monotone commit-time source shared by all sessions."""

    def __init__(self, start: int = 0) -> None:
        self._latest = start
        self._lock = threading.Lock()

    @property
    def latest(self) -> int:
        """The newest committed transaction time."""
        return self._latest

    def assign(self) -> int:
        """Reserve and return the next transaction time."""
        with self._lock:
            self._latest += 1
            return self._latest

    def advance_to(self, time: int) -> None:
        """Fast-forward (recovery: resume after the last durable commit)."""
        with self._lock:
            if time > self._latest:
                self._latest = time
