"""Sessions: private object spaces over the shared permanent database.

Section 6: "Each user session in the GemStone system has its own
invocation of the Interpreter, and its own Object Manager with a private
object space.  Sessions have shared access to the permanent database
through transactions."

A :class:`SessionObjectManager` implements the full
:class:`~repro.core.object_manager.ObjectStore` interface:

* reads come from the latest committed state (or the session's own
  uncommitted writes), and every element read/enumeration is recorded —
  the Transaction Manager's "access recording";
* the first write to a committed object copies it into the private
  workspace (its *twin*), so uncommitted changes never touch shared
  state;
* new objects and classes live entirely in the workspace;
* commit hands the creation list and write log to the Transaction
  Manager; abort simply discards the workspace — the paper's "an entire
  session workspace can be discarded at the end of a session" (no GC).

Uncommitted writes are provisionally stamped at ``last committed time +
1``; the Linker re-stamps everything at the real commit time.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.object_manager import ObjectStore
from ..core.objects import GemObject
from ..core.values import Ref
from ..core.timedial import TimeDial
from ..errors import ClassProtocolError, SessionClosed, StorageError
from ..govern.quota import SessionQuota
from ..perf.epochs import class_epoch
from ..storage.linker import Creation, Write
from .authorization import Authorizer, User


class SessionObjectManager(ObjectStore):
    """A user session: overlay workspace + access recording + time dial."""

    _ids = 0

    def __init__(
        self,
        store,
        transaction_manager,
        user: Optional[User] = None,
        authorizer: Optional[Authorizer] = None,
        quota: Optional["SessionQuota"] = None,
    ) -> None:
        super().__init__()
        SessionObjectManager._ids += 1
        self.session_id = SessionObjectManager._ids
        self.store = store
        self.transaction_manager = transaction_manager
        self.user = user
        self.authorizer = authorizer
        self.quota = quota
        self.time_dial = TimeDial(
            safe_time_provider=transaction_manager.safe_time,
            # SafeTime may never pass the latest *committed* state the
            # shared store has durably recorded (§5.4)
            commit_time_provider=lambda: self.store.last_tx_time,
        )
        self._closed = False
        # transaction-scoped state
        self.workspace: dict[int, GemObject] = {}
        self._created: set[int] = set()
        self._transients: set[int] = set()
        self.creations: list[Creation] = []
        self.write_log: list[Write] = []
        self.read_set: set[tuple[int, Any]] = set()
        self.enum_reads: set[int] = set()
        self.start_time = 0
        transaction_manager.begin(self)

    def __repr__(self) -> str:
        who = self.user.name if self.user else "embedded"
        return f"<Session {self.session_id} user={who} start={self.start_time}>"

    # -- lifecycle --------------------------------------------------------------

    def commit(self) -> int:
        """Commit the transaction; returns its transaction time.

        Raises :class:`~repro.errors.TransactionConflict` if optimistic
        validation fails — the workspace is then discarded (the
        transaction is aborted) and a fresh transaction begins.

        A :class:`~repro.errors.StorageError` mid-commit (an injected
        crash, a degraded volume) also propagates, but the session
        *survives* it: the unusable workspace is discarded and a fresh
        transaction begins, so the same session can retry once the
        store recovers.
        """
        self._ensure_open()
        try:
            return self.transaction_manager.commit(self)
        except StorageError:
            # defense in depth: the Transaction Manager normally resets
            # us before re-raising, but a half-torn workspace must never
            # leak into the next transaction
            if self.write_log or self.creations:
                self.transaction_manager.abort(self)
            raise

    def abort(self) -> None:
        """Discard the workspace wholesale and begin a new transaction."""
        self._ensure_open()
        self.transaction_manager.abort(self)

    def close(self) -> None:
        """End the session; its workspace is discarded, never collected."""
        if not self._closed:
            self.transaction_manager.end_session(self)
            self._closed = True

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def reset_transaction_state(self) -> None:
        """Clear workspace and access records (Transaction Manager hook)."""
        self.workspace.clear()
        self._created.clear()
        self._transients.clear()
        self.creations.clear()
        self.write_log.clear()
        self.read_set.clear()
        self.enum_reads.clear()
        if self.classes:
            # overlay class definitions leave scope here (abort discards
            # them, commit merges them into the shared store) — either
            # way, resolutions made against the overlay are now suspect
            class_epoch.bump()
        self.classes.clear()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionClosed(f"session {self.session_id} is closed")

    # -- dirtiness ---------------------------------------------------------------

    @property
    def has_uncommitted_changes(self) -> bool:
        """True if the workspace holds writes or creations."""
        return bool(self.write_log or self.creations)

    # -- ObjectStore primitives ----------------------------------------------------

    def object(self, oid: int) -> GemObject:
        self._ensure_open()
        twin = self.workspace.get(oid)
        if twin is not None:
            return twin
        obj = self.store.object(oid)
        if self.authorizer is not None:
            self.authorizer.check_read(self.user, obj.segment_id)
        return obj

    def contains(self, oid: int) -> bool:
        return oid in self.workspace or self.store.contains(oid)

    def _resolve_target(self, target):
        # Any designator — oid, Ref, or a direct (possibly stale stable)
        # GemObject reference — must land on the workspace twin when one
        # exists, so the session always reads its own uncommitted writes.
        obj = super()._resolve_target(target)
        twin = self.workspace.get(obj.oid)
        return twin if twin is not None else obj

    def register(self, obj: GemObject) -> GemObject:
        """Adopt a freshly instantiated object into the private workspace."""
        self._ensure_open()
        if self.quota is not None:
            self.quota.check_workspace_object(len(self.workspace))
        self.workspace[obj.oid] = obj
        self._created.add(obj.oid)
        self.creations.append(Creation(obj))
        return obj

    def allocate_oid(self) -> int:
        return self.store.allocate_oid()

    def write_time(self) -> int:
        # provisional: strictly after every committed time; the Linker
        # re-stamps at the real commit time
        return self.store.last_tx_time + 1

    # -- access recording --------------------------------------------------------

    def note_read(self, oid: int, name: Any) -> None:
        if oid not in self._created:
            self.read_set.add((oid, name))

    def note_enumeration(self, oid: int) -> None:
        if oid not in self._created:
            self.enum_reads.add(oid)

    # -- writes (copy-on-write twins) -----------------------------------------------

    def bind(self, target: Any, name: Any, value: Any) -> None:
        self._ensure_open()
        obj = self._resolve_target(target)
        oid = obj.oid
        if self.authorizer is not None:
            self.authorizer.check_write(self.user, obj.segment_id)
        twin = self.workspace.get(oid)
        if twin is None:
            twin = obj.copy_shell()
            self.workspace[oid] = twin
        stored = self.to_value(value)
        if oid not in self._transients and self.quota is not None:
            # enforced before the twin mutates: an over-quota write must
            # leave the workspace exactly as it was
            self.quota.check_staged_write(len(self.write_log))
        twin.bind(name, stored, self.write_time())
        if oid in self._transients:
            return  # workspace-only object: nothing to commit yet
        if isinstance(stored, Ref) and stored.oid in self._transients:
            self._promote(stored.oid)
        self.write_log.append(Write(oid, name, stored))
        self.note_write(oid, name)

    # -- temporary objects ----------------------------------------------------

    def instantiate_transient(self, gem_class, segment_id=None, **element_values):
        """A workspace-only object: discarded at commit unless promoted.

        Query results (``select:``/``collect:``) are created this way;
        storing one into a persistent object promotes it (and everything
        it references) to a real creation.
        """
        cls = self._coerce_class(gem_class)
        self._charge_allocation()
        if self.quota is not None:
            self.quota.check_workspace_object(len(self.workspace))
        obj = GemObject(
            oid=self.allocate_oid(),
            class_oid=cls.oid,
            segment_id=0 if segment_id is None else segment_id,
            created_at=self.write_time(),
        )
        self.workspace[obj.oid] = obj
        self._created.add(obj.oid)
        self._transients.add(obj.oid)
        for name, value in element_values.items():
            self.bind(obj, name, value)
        return obj

    def _promote(self, oid: int) -> None:
        """Turn a transient into a committed creation, recursively."""
        self._transients.discard(oid)
        twin = self.workspace[oid]
        self.creations.append(Creation(twin))
        for name, value in twin.items_at(None):
            if isinstance(value, Ref) and value.oid in self._transients:
                self._promote(value.oid)
            self.write_log.append(Write(oid, name, value))

    # -- time-dialed fetches -----------------------------------------------------------

    def effective_time(self, time: int | None) -> int | None:
        """Unpinned accesses read at the dial's time (section 5.4)."""
        if time is None and not self.time_dial.is_now:
            return self.time_dial.time
        return time

    def value_at(self, target: Any, name: Any, time: int | None = None) -> Any:
        return super().value_at(target, name, self.effective_time(time))

    # -- classes -------------------------------------------------------------------------

    def class_named(self, name: str):
        oid = self.classes.get(name)
        if oid is not None:
            return self.object(oid)
        if name in self.store.classes:
            return self.object(self.store.classes[name])
        raise ClassProtocolError(f"no class named {name!r}")

    def has_class(self, name: str) -> bool:
        return name in self.classes or name in self.store.classes

    def define_class(self, name, superclass="Object", instvars=(), segment_id=0):
        if self.has_class(name):
            raise ClassProtocolError(f"class {name!r} already defined")
        return super().define_class(name, superclass, instvars, segment_id)

    def new_classes(self) -> dict[str, int]:
        """Classes defined (and not yet committed) by this transaction."""
        return dict(self.classes)

    # -- SafeTime ------------------------------------------------------------------------

    def safe_time(self) -> int:
        """The most recent time no running transaction can still change."""
        return self.transaction_manager.safe_time()
