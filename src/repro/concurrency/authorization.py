"""Authorization: users, segments and privileges.

Section 4.3 lists "database administrator control over replication,
authorization and auxiliary structures" among what ST80 lacks, and
section 6 places authorization in the Object Manager.

The model follows GemStone's actual design sketch: every object belongs
to a *segment* (``GemObject.segment_id``), and users hold privileges per
segment.  Privileges form a ladder — NONE < READ < WRITE < OWNER — and a
segment has a default privilege for users with no explicit grant.
Segment 0 is the public "world" segment, writable by everyone, so
single-user use needs no setup.

Security state lives in ordinary memory here; the Database persists it
through the catalog so it survives reopen (and, being data, it could be
modeled as objects with history — an extension exercised in the tests).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional

from ..errors import AuthorizationError

#: the public segment every store starts with
WORLD_SEGMENT = 0


class Privilege(IntEnum):
    """Ordered privilege ladder for a user on a segment."""

    NONE = 0
    READ = 1
    WRITE = 2
    OWNER = 3


def _hash_password(password: str) -> str:
    return hashlib.sha256(password.encode("utf-8")).hexdigest()


@dataclass
class User:
    """A database user; DBAs may administer users and segments."""

    name: str
    password_hash: str
    is_dba: bool = False

    def check_password(self, password: str) -> bool:
        """True if *password* matches."""
        return _hash_password(password) == self.password_hash


@dataclass
class Segment:
    """An authorization domain objects are assigned to."""

    segment_id: int
    name: str
    owner: str
    default_privilege: Privilege = Privilege.NONE
    grants: dict[str, Privilege] = field(default_factory=dict)

    def privilege_of(self, user: User) -> Privilege:
        """The effective privilege of *user* on this segment."""
        if user.is_dba or user.name == self.owner:
            return Privilege.OWNER
        return self.grants.get(user.name, self.default_privilege)


class Authorizer:
    """Registry of users and segments with privilege checks."""

    def __init__(self) -> None:
        self._users: dict[str, User] = {}
        self._segments: dict[int, Segment] = {}
        self._next_segment_id = 1
        # the initial DBA and the public segment
        self.create_initial_dba("DataCurator", "swordfish")
        self._segments[WORLD_SEGMENT] = Segment(
            WORLD_SEGMENT, "world", owner="DataCurator",
            default_privilege=Privilege.WRITE,
        )

    # -- users -------------------------------------------------------------

    def create_initial_dba(self, name: str, password: str) -> User:
        """Install the bootstrap DBA account (idempotent)."""
        user = self._users.get(name)
        if user is None:
            user = User(name, _hash_password(password), is_dba=True)
            self._users[name] = user
        return user

    def authenticate(self, name: str, password: str) -> User:
        """Check credentials; returns the user or raises."""
        user = self._users.get(name)
        if user is None or not user.check_password(password):
            raise AuthorizationError(f"login failed for {name!r}")
        return user

    def create_user(
        self, actor: User, name: str, password: str, is_dba: bool = False
    ) -> User:
        """DBA-only: register a new user."""
        self._require_dba(actor)
        if name in self._users:
            raise AuthorizationError(f"user {name!r} already exists")
        user = User(name, _hash_password(password), is_dba=is_dba)
        self._users[name] = user
        return user

    def user_named(self, name: str) -> User:
        """Look a user up by name."""
        user = self._users.get(name)
        if user is None:
            raise AuthorizationError(f"no user named {name!r}")
        return user

    # -- segments -------------------------------------------------------------

    def create_segment(
        self,
        actor: User,
        name: str,
        default_privilege: Privilege = Privilege.NONE,
    ) -> Segment:
        """Create a segment owned by *actor*; returns it."""
        segment = Segment(
            self._next_segment_id, name, owner=actor.name,
            default_privilege=default_privilege,
        )
        self._segments[segment.segment_id] = segment
        self._next_segment_id += 1
        return segment

    def segment(self, segment_id: int) -> Segment:
        """Look a segment up by id."""
        found = self._segments.get(segment_id)
        if found is None:
            raise AuthorizationError(f"no segment {segment_id}")
        return found

    def grant(
        self, actor: User, segment_id: int, user_name: str, privilege: Privilege
    ) -> None:
        """Grant *privilege* on a segment; requires OWNER on it."""
        segment = self.segment(segment_id)
        if segment.privilege_of(actor) < Privilege.OWNER:
            raise AuthorizationError(
                f"{actor.name} may not change grants on segment {segment.name!r}"
            )
        self.user_named(user_name)  # must exist
        segment.grants[user_name] = privilege

    # -- checks -----------------------------------------------------------------

    def check_read(self, user: Optional[User], segment_id: int) -> None:
        """Raise unless *user* may read objects in the segment."""
        self._check(user, segment_id, Privilege.READ, "read")

    def check_write(self, user: Optional[User], segment_id: int) -> None:
        """Raise unless *user* may write objects in the segment."""
        self._check(user, segment_id, Privilege.WRITE, "write")

    def _check(
        self, user: Optional[User], segment_id: int, needed: Privilege, verb: str
    ) -> None:
        if user is None:  # standalone embedded use: no enforcement
            return
        segment = self._segments.get(segment_id)
        if segment is None:
            raise AuthorizationError(f"object in unknown segment {segment_id}")
        if segment.privilege_of(user) < needed:
            raise AuthorizationError(
                f"{user.name} may not {verb} segment {segment.name!r}"
            )

    def _require_dba(self, actor: User) -> None:
        if not actor.is_dba:
            raise AuthorizationError(f"{actor.name} is not a DBA")

    # -- persistence -----------------------------------------------------------

    def export_state(self) -> dict:
        """A plain-data snapshot the Database stores in the catalog blob."""
        return {
            "users": [
                (u.name, u.password_hash, u.is_dba) for u in self._users.values()
            ],
            "segments": [
                (
                    s.segment_id,
                    s.name,
                    s.owner,
                    int(s.default_privilege),
                    sorted((n, int(p)) for n, p in s.grants.items()),
                )
                for s in self._segments.values()
            ],
            "next_segment_id": self._next_segment_id,
        }

    def import_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output."""
        self._users = {
            name: User(name, pw_hash, bool(dba))
            for name, pw_hash, dba in state["users"]
        }
        self._segments = {}
        for seg_id, name, owner, default, grants in state["segments"]:
            segment = Segment(seg_id, name, owner, Privilege(default))
            segment.grants = {n: Privilege(p) for n, p in grants}
            self._segments[seg_id] = segment
        self._next_segment_id = state["next_segment_id"]
