"""The slow-query log: the N slowest declarative selects, with plans.

Query-plan visibility is the lever every optimizer paper pulls (Odra's
join fusion in PAPERS.md starts from exactly this telemetry); GemStone's
declarative path had none.  For every ``select:``/``reject:`` that runs
declaratively, the evaluator reports:

* the **select-block source**, unparsed from the compiled block's AST;
* the **chosen plan** — the calculus→algebra operator chain, including
  any directory (index) the optimizer picked;
* the **candidate count** charged via ``QueryContext.charge`` — how many
  members the plan actually examined, which is the number that separates
  an index probe from a full scan;
* **cache provenance** — whether the block→calculus translation and the
  plan came from their memos or were built fresh;
* the elapsed wall time and the result size.

The log keeps only the ``capacity`` slowest entries (plus lifetime
totals), so it is safe to leave on in production: recording is a lock,
a comparison, and at worst one list insert.
"""

from __future__ import annotations

import threading
from bisect import insort
from typing import Any, Optional

from ..opal import nodes


class SlowQueryLog:
    """A bounded keep-the-slowest log of declarative query executions."""

    def __init__(self, capacity: int = 32, threshold_ms: float = 0.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        #: queries faster than this are only counted, never kept
        self.threshold_ms = threshold_ms
        self._lock = threading.Lock()
        self._entries: list[tuple[float, int, dict[str, Any]]] = []
        self._sequence = 0
        self.total_queries = 0

    def record(self, entry: dict[str, Any]) -> None:
        """Consider one finished query for the log.

        *entry* must carry ``elapsed_ms``; everything else (source, plan,
        candidates, provenance) is kept verbatim.
        """
        elapsed = float(entry.get("elapsed_ms", 0.0))
        with self._lock:
            self.total_queries += 1
            if elapsed < self.threshold_ms:
                return
            if (
                len(self._entries) >= self.capacity
                and elapsed <= self._entries[0][0]
            ):
                return  # faster than everything we already keep
            self._sequence += 1
            insort(self._entries, (elapsed, self._sequence, entry))
            if len(self._entries) > self.capacity:
                del self._entries[0]

    def slowest(self, n: Optional[int] = None) -> list[dict[str, Any]]:
        """The slowest queries, slowest first."""
        with self._lock:
            picked = self._entries[::-1]
        if n is not None:
            picked = picked[:n]
        return [entry for _, _, entry in picked]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.total_queries = 0


# --------------------------------------------------------------------------
# AST → source (compiled blocks keep their AST, not their source text)
# --------------------------------------------------------------------------

def render_block(block: Any) -> str:
    """Reconstruct OPAL source for a compiled select block's AST."""
    if not isinstance(block, nodes.BlockNode):
        return repr(block)
    header = "".join(f":{p} " for p in block.params)
    temps = "| " + " ".join(block.temps) + " | " if block.temps else ""
    body = ". ".join(_render(statement) for statement in block.body)
    separator = "| " if block.params else ""
    return f"[{header}{separator}{temps}{body}]"


def _render(node: Any) -> str:
    if isinstance(node, nodes.Literal):
        return _render_literal(node.value)
    if isinstance(node, nodes.VarRef):
        return node.name
    if isinstance(node, nodes.PathFetch):
        return _render(node.base) + "".join(_render_step(s) for s in node.steps)
    if isinstance(node, nodes.PathAssign):
        path = _render(node.base) + "".join(_render_step(s) for s in node.steps)
        return f"{path} := {_render(node.value)}"
    if isinstance(node, nodes.Assign):
        return f"{node.name} := {_render(node.value)}"
    if isinstance(node, nodes.MessageSend):
        return _render_send(node)
    if isinstance(node, nodes.BlockNode):
        return render_block(node)
    if isinstance(node, nodes.Return):
        return f"^{_render(node.value)}"
    return repr(node)


def _render_literal(value: Any) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, tuple):
        return "#(" + " ".join(_render_literal(v) for v in value) + ")"
    return str(value)


def _render_step(step: Any) -> str:
    name = step.name if isinstance(step.name, str) else repr(step.name)
    text = f"!{name}"
    if step.time is not None:
        text += f"@{_render(step.time)}"
    return text


def _render_send(node: Any) -> str:
    receiver = _render(node.receiver)
    if isinstance(node.receiver, (nodes.MessageSend, nodes.Assign)):
        receiver = f"({receiver})"
    if not node.args:
        return f"{receiver} {node.selector}"
    if ":" not in node.selector:  # binary
        return f"{receiver} {node.selector} {_render_arg(node.args[0])}"
    parts = node.selector.split(":")[:-1]
    keywords = " ".join(
        f"{keyword}: {_render_arg(arg)}"
        for keyword, arg in zip(parts, node.args)
    )
    return f"{receiver} {keywords}"


def _render_arg(node: Any) -> str:
    text = _render(node)
    # binary messages are left-associative: a send in argument position
    # must keep its parentheses to re-parse with the same structure
    if isinstance(node, (nodes.MessageSend, nodes.Assign)):
        return f"({text})"
    return text


def describe_plan(plan: Any) -> list[str]:
    """The operator chain of an algebra plan, outermost first."""
    described: list[str] = []
    node = plan
    while node is not None:
        describe = getattr(node, "describe", None)
        described.append(describe() if callable(describe) else repr(node))
        node = getattr(node, "child", None)
    return described
