"""A process-independent, thread-safe metrics registry.

The registry is the one place every subsystem reports to: counters
(monotone event totals), gauges (last-written values) and histograms
(wall-time summaries).  It is **instance-scoped by default** — each
:class:`~repro.db.GemStone` owns its own
:class:`~repro.obs.Observability`, which owns one registry — so two
databases in one process (or two tests in one run) can never bleed
metrics into each other the way the old process-global perf counters
did.

Thread-safety: the shared :class:`~repro.concurrency.transactions
.TransactionManager` runs real threads, so every mutation happens under
one registry lock.  Handles (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`) are cheap objects a hot path can hold on to —
``counter.inc()`` is a lock acquire + integer add, nothing more.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from typing import Any, Optional


class Counter:
    """A monotone event counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value: Any = 0
        self._lock = lock

    def set(self, value: Any) -> None:
        with self._lock:
            self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


def _make_bounds() -> tuple[float, ...]:
    """Geometric bucket bounds: 0.01 → ~10⁵, ratio 1.25 (≤12% error)."""
    bounds = []
    edge = 0.01
    while edge < 1e5:
        bounds.append(edge)
        edge *= 1.25
    return tuple(bounds)


class Histogram:
    """A streaming summary: count, sum, min, max, mean — and quantiles.

    Values are also tallied into fixed geometric buckets (ratio 1.25,
    spanning five decades above 0.01), so :meth:`quantile` answers p50,
    p90 and p99 with bounded relative error without keeping samples —
    the front door's p99 latency is read straight from here.  The trace
    ring buffer still holds raw recent spans.
    """

    __slots__ = (
        "name", "count", "total", "minimum", "maximum", "_lock", "_buckets"
    )

    #: shared upper-bound table (the last bucket is a catch-all)
    BOUNDS: tuple[float, ...] = _make_bounds()

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._lock = lock
        self._buckets: Optional[list[int]] = None  # allocated on first use

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
            if self._buckets is None:
                self._buckets = [0] * (len(self.BOUNDS) + 1)
            self._buckets[bisect_right(self.BOUNDS, value)] += 1

    def quantile(self, q: float) -> float:
        """An upper-bound estimate of the *q*-quantile (0 < q ≤ 1).

        Deliberately lock-free, like :meth:`summary`: callers include
        :meth:`MetricsRegistry.snapshot`, which already holds the shared
        registry lock, and single reads of counters are safe under the
        GIL (a concurrent observe skews the estimate by one sample).
        """
        buckets = self._buckets
        if not self.count or buckets is None:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = 0
        for index, tally in enumerate(buckets):
            seen += tally
            if seen >= target:
                if index >= len(self.BOUNDS):
                    return self.maximum if self.maximum is not None else 0.0
                # clamp to the observed extremes: tighter than the
                # bucket edge for narrow distributions
                bound = self.BOUNDS[index]
                if self.maximum is not None:
                    bound = min(bound, self.maximum)
                if self.minimum is not None:
                    bound = max(bound, self.minimum)
                return bound
        return self.maximum if self.maximum is not None else 0.0

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Named counters/gauges/histograms behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- handles ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter *name* (a stable handle)."""
        with self._lock:
            handle = self._counters.get(name)
            if handle is None:
                handle = self._counters[name] = Counter(name, self._lock)
            return handle

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the gauge *name*."""
        with self._lock:
            handle = self._gauges.get(name)
            if handle is None:
                handle = self._gauges[name] = Gauge(name, self._lock)
            return handle

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the histogram *name*."""
        with self._lock:
            handle = self._histograms.get(name)
            if handle is None:
                handle = self._histograms[name] = Histogram(name, self._lock)
            return handle

    # -- convenience --------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* (creating it on first use)."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Any) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def count_of(self, name: str) -> int:
        """The current value of counter *name* (0 if never touched)."""
        with self._lock:
            handle = self._counters.get(name)
            return handle.value if handle is not None else 0

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """All metrics as plain JSON-ready dicts."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.summary()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Drop every metric (tests, benchmark ablations)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
