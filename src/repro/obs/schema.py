"""A zero-dependency validator for the observability snapshot schema.

The snapshot's shape is a public contract: dashboards, the bench
harness and CI all consume the same metric names, so drift must fail
loudly.  Full ``jsonschema`` is not available in every environment this
repo targets, so this module implements the small subset the checked-in
schema (``docs/observability_schema.json``) actually uses:

* ``type`` — ``object``, ``array``, ``string``, ``number``,
  ``integer``, ``boolean``, ``null``, or a list of those;
* ``properties`` + ``required`` for objects;
* ``items`` for arrays.

Anything else in a schema node is ignored, which keeps the format
forward-compatible with real JSON Schema.
"""

from __future__ import annotations

from typing import Any


class SchemaError(AssertionError):
    """The instance does not match the schema (message carries the path)."""


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: Any, name: str) -> bool:
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    expected = _TYPES.get(name)
    if expected is None:
        raise SchemaError(f"unknown schema type {name!r}")
    return isinstance(value, expected)


def validate(instance: Any, schema: dict[str, Any], path: str = "$") -> None:
    """Raise :class:`SchemaError` where *instance* violates *schema*."""
    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(instance, name) for name in names):
            raise SchemaError(
                f"{path}: expected {declared}, got "
                f"{type(instance).__name__} ({instance!r:.80})"
            )
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                raise SchemaError(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in instance:
                validate(instance[key], subschema, f"{path}.{key}")
    if isinstance(instance, list):
        items = schema.get("items")
        if items is not None:
            for index, element in enumerate(instance):
                validate(element, items, f"{path}[{index}]")
