"""``repro.obs`` — the end-to-end observability layer.

One :class:`Observability` per :class:`~repro.db.GemStone` unifies what
used to be scattered, process-global telemetry:

* :class:`MetricsRegistry` — thread-safe counters, gauges and
  histograms, instance-scoped by default;
* :class:`Tracer` / :data:`NULL_SPAN` — structured trace spans with
  request IDs propagated from the executor down to storage, free when
  disabled;
* :class:`SlowQueryLog` — the N slowest declarative queries with their
  select-block source, chosen plan, candidate counts and cache
  provenance;
* :func:`validate` — the zero-dependency schema check that pins the
  ``GemStone.observability()`` snapshot shape in CI.

See ``docs/observability.md`` for the metric catalogue and span
taxonomy.
"""

from .core import Observability
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .schema import SchemaError, validate
from .slowlog import SlowQueryLog, describe_plan, render_block
from .tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "SchemaError",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "describe_plan",
    "render_block",
    "validate",
]
