"""The per-database observability hub and its JSON snapshot.

One :class:`Observability` belongs to each :class:`~repro.db.GemStone`
(instance-scoped by default — nothing here is process-global).  It owns

* the :class:`~repro.obs.registry.MetricsRegistry` every layer reports
  native counters to (request totals, SafeTime clamps, span timings);
* the :class:`~repro.obs.tracing.Tracer` (request IDs + span ring);
* the :class:`~repro.obs.slowlog.SlowQueryLog`;
* the roster of things worth aggregating at snapshot time: admission
  controllers attached by Executors, and live/retired sessions whose
  budget, quota and cache counters fold into database-wide totals.

``snapshot(database)`` assembles the one JSON document
``GemStone.observability()`` publishes; its shape is pinned by
``docs/observability_schema.json`` and validated in CI.
"""

from __future__ import annotations

import weakref
from typing import Any, Optional

from .registry import MetricsRegistry
from .slowlog import SlowQueryLog
from .tracing import Tracer

#: cache sections aggregated across sessions (same names StoreCaches uses)
_SESSION_CACHE_KEYS = (
    "method_hits", "method_misses", "inline_hits", "inline_misses",
    "translation_hits", "translation_misses", "plan_hits", "plan_misses",
)


class Observability:
    """Metrics + tracing + slow queries for one database instance."""

    def __init__(
        self,
        tracing: bool = False,
        max_spans: int = 256,
        slow_query_capacity: int = 32,
        slow_query_threshold_ms: float = 0.0,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(self.registry, enabled=tracing, max_spans=max_spans)
        self.slow_queries = SlowQueryLog(
            capacity=slow_query_capacity,
            threshold_ms=slow_query_threshold_ms,
        )
        self._admissions: list[Any] = []
        self._frontdoors: list[Any] = []
        self._live_sessions: "weakref.WeakSet[Any]" = weakref.WeakSet()
        self._retired_caches = dict.fromkeys(_SESSION_CACHE_KEYS, 0)
        self._retired_budget = {"queries": 0, "kills": 0}
        self._retired_quota = {"rejections": 0}
        self._retired_clamps = 0
        self.sessions_opened = 0
        self.sessions_closed = 0

    # -- switches -----------------------------------------------------------

    def enable_tracing(self, enabled: bool = True) -> None:
        """Turn span recording on (or off) at run time."""
        self.tracer.enabled = enabled

    # -- registration -------------------------------------------------------

    def register_admission(self, controller: Any) -> None:
        """An Executor attaches its admission controller for reporting."""
        if controller is not None and controller not in self._admissions:
            self._admissions.append(controller)

    def register_frontdoor(self, frontdoor: Any) -> None:
        """An async front door attaches itself for snapshot reporting."""
        if frontdoor is not None and frontdoor not in self._frontdoors:
            self._frontdoors.append(frontdoor)

    def frontdoor_report(self) -> dict[str, Any]:
        """Every registered front door's counters, summed, plus latency.

        The latency distribution comes from the shared
        ``frontdoor.latency_ms`` histogram (bucketed, so the p50/p90/p99
        quantiles survive aggregation).
        """
        totals = {
            "doors": len(self._frontdoors),
            "links_served": 0,
            "active_links": 0,
            "requests": 0,
            "queued": 0,
            "replays": 0,
            "suppressed_duplicates": 0,
            "shed_overload": 0,
            "shed_deadline": 0,
            "corrupt_frames": 0,
            "protocol_errors": 0,
            "max_queue_depth": 0,
        }
        for door in self._frontdoors:
            report = door.report()
            for key in totals:
                if key in ("doors", "max_queue_depth"):
                    continue
                totals[key] += report.get(key, 0)
            totals["max_queue_depth"] = max(
                totals["max_queue_depth"], report.get("max_queue_depth", 0)
            )
        totals["latency_ms"] = self.registry.histogram(
            "frontdoor.latency_ms"
        ).summary()
        return totals

    def net_report(self) -> dict[str, Any]:
        """Transport-level traffic: frames, bytes, connections, RTT.

        Every socket link end (sync ``TcpLinkEnd`` or asyncio
        ``StreamLink``) created with this registry feeds the ``net.*``
        counters and the ``net.rtt_ms`` histogram; the section reports
        them as one rollup for the whole process.
        """
        counters = self.registry.snapshot()["counters"]
        return {
            "connections": counters.get("net.connections", 0),
            "reconnects": counters.get("net.reconnects", 0),
            "frames_sent": counters.get("net.frames_sent", 0),
            "frames_received": counters.get("net.frames_received", 0),
            "bytes_sent": counters.get("net.bytes_sent", 0),
            "bytes_received": counters.get("net.bytes_received", 0),
            "rtt_ms": self.registry.histogram("net.rtt_ms").summary(),
        }

    def register_session(self, session: Any) -> None:
        """Track a live session (weakly: a leaked session cannot pin us)."""
        self._live_sessions.add(session)
        self.sessions_opened += 1

    def retire_session(self, session: Any) -> None:
        """Fold a closing session's counters into the lifetime totals."""
        if session not in self._live_sessions:
            return
        self._live_sessions.discard(session)
        self.sessions_closed += 1
        self._fold(session)

    def _fold(self, session: Any) -> None:
        perf = getattr(getattr(session, "session", None), "perf", None)
        if perf is not None:
            for key in _SESSION_CACHE_KEYS:
                self._retired_caches[key] += getattr(perf, key, 0)
        dial = getattr(getattr(session, "session", None), "time_dial", None)
        if dial is not None:
            self._retired_clamps += getattr(dial, "clamps", 0)
        budget = getattr(session, "budget", None)
        if budget is not None:
            self._retired_budget["queries"] += budget.queries
            self._retired_budget["kills"] += budget.kills
        quota = getattr(session, "quota", None)
        if quota is not None:
            self._retired_quota["rejections"] += quota.rejections

    # -- aggregation --------------------------------------------------------

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def session_cache_totals(self) -> dict[str, Any]:
        """Per-session StoreCaches counters summed: live + retired."""
        totals = dict(self._retired_caches)
        for session in list(self._live_sessions):
            perf = getattr(getattr(session, "session", None), "perf", None)
            if perf is None:
                continue
            for key in _SESSION_CACHE_KEYS:
                totals[key] += getattr(perf, key, 0)
        report: dict[str, Any] = {}
        for cache in ("method", "inline", "translation", "plan"):
            hits = totals[f"{cache}_hits"]
            misses = totals[f"{cache}_misses"]
            report[f"{cache}_cache"] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": self._rate(hits, misses),
            }
        return report

    def governance_report(self) -> dict[str, Any]:
        """Admission, budget, quota and SafeTime-clamp totals."""
        admission = {
            "controllers": len(self._admissions),
            "admitted": 0,
            "shed_requests": 0,
            "shed_sessions": 0,
            "breaker_sheds": 0,
            "breaker_trips": 0,
            "active_sessions": 0,
        }
        breaker_states: list[str] = []
        for controller in self._admissions:
            admission["admitted"] += controller.admitted
            admission["shed_requests"] += controller.shed_requests
            admission["shed_sessions"] += controller.shed_sessions
            admission["breaker_sheds"] += controller.breaker_sheds
            admission["breaker_trips"] += controller.breaker.trips
            admission["active_sessions"] += controller.sessions
            breaker_states.append(controller.breaker.state)
        admission["breaker_states"] = breaker_states
        budgets = dict(self._retired_budget)
        quotas = dict(self._retired_quota)
        clamps = self._retired_clamps
        for session in list(self._live_sessions):
            budget = getattr(session, "budget", None)
            if budget is not None:
                budgets["queries"] += budget.queries
                budgets["kills"] += budget.kills
            quota = getattr(session, "quota", None)
            if quota is not None:
                quotas["rejections"] += quota.rejections
            dial = getattr(getattr(session, "session", None), "time_dial", None)
            if dial is not None:
                clamps += getattr(dial, "clamps", 0)
        return {
            "admission": admission,
            "budgets": budgets,
            "quotas": quotas,
            "safetime_clamps": clamps,
            "sessions": {
                "opened": self.sessions_opened,
                "closed": self.sessions_closed,
                "live": len(self._live_sessions),
            },
        }

    # -- the snapshot -------------------------------------------------------

    def snapshot(
        self,
        database: Optional[Any] = None,
        slow: int = 10,
        spans: int = 20,
    ) -> dict[str, Any]:
        """The full JSON observability document.

        Every section is always present (possibly with zeroed counters),
        so consumers can rely on the shape; see
        ``docs/observability.md`` for the metric-name catalogue.
        """
        from ..perf import stats

        caches: dict[str, Any] = stats(database) if database is not None else {}
        storage = caches.pop("storage", {})
        storage.pop("transactions", None)  # rebuilt below in JSON-ready form
        if database is not None and hasattr(database, "replication_report"):
            # lag / last-shipped-epoch gauges plus replica-log counters
            storage["replication"] = database.replication_report()
        transactions: dict[str, Any] = {}
        if database is not None:
            tx_stats = database.transaction_manager.stats
            transactions = {
                "commits": tx_stats.commits,
                "aborts": tx_stats.aborts,
                "read_only_commits": tx_stats.read_only_commits,
                "validations": tx_stats.validations,
                "storage_failures": tx_stats.storage_failures,
                "conflict_retries": tx_stats.conflict_retries,
                "backoff_units": tx_stats.backoff_units,
                "storms_detected": tx_stats.storms_detected,
                "priority_grants": tx_stats.priority_grants,
                "priority_rejections": tx_stats.priority_rejections,
                "abort_rate": tx_stats.abort_rate,
                "active_transactions": database.transaction_manager.active_count(),
            }
        caches["sessions"] = self.session_cache_totals()
        slowest = self.slow_queries.slowest(slow)
        extra: dict[str, Any] = {}
        if self._frontdoors:
            extra["frontdoor"] = self.frontdoor_report()
        if any(
            name.startswith("net.")
            for name in self.registry.snapshot()["counters"]
        ):
            # only once a socket link end has actually moved traffic —
            # in-memory deployments keep the all-memory snapshot shape
            extra["net"] = self.net_report()
        return {
            **extra,
            "transactions": transactions,
            "caches": caches,
            "storage": storage,
            "governance": self.governance_report(),
            "counters": self.registry.snapshot(),
            "slow_queries": {
                "total_queries": self.slow_queries.total_queries,
                "kept": len(self.slow_queries),
                "threshold_ms": self.slow_queries.threshold_ms,
                "slowest": slowest,
            },
            "tracing": {
                "enabled": self.tracer.enabled,
                "recorded": self.tracer.recorded,
                "recent_spans": self.tracer.recent(spans),
            },
        }
