"""Structured trace spans with request IDs and a ring-buffer log.

A *span* is one timed unit of work — serving an executor frame, running
a block of OPAL, validating a commit, safe-writing a track group.  Spans
carry the *request ID* minted when the work entered the system (at the
Executor for remote requests, at ``execute`` for embedded use), so one
slow request can be followed down the whole stack:

    executor.request → opal.execute → query.select
                                    → txn.commit → storage.persist

Finished spans land in a bounded ring buffer (newest win; tracing never
grows without bound) and feed per-name wall-time histograms in the
owning registry.

**Cheap when disabled.**  ``tracer.span(...)`` returns a shared no-op
context manager when tracing is off — no span object is allocated, no
clock is read, no lock is taken.  Call sites guard with
``tracer.enabled`` where even the call would be too much.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from itertools import count
from typing import Any, Optional

from .registry import MetricsRegistry


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def note(self, **meta: Any) -> None:
        """Discard annotations (the live span records them)."""


#: the singleton no-op span — ``tracer.span()`` costs no allocation
NULL_SPAN = _NullSpan()


class Span:
    """One live, timed unit of work (use via ``with tracer.span(...)``)."""

    __slots__ = ("tracer", "name", "request_id", "meta", "_started", "ms")

    def __init__(self, tracer: "Tracer", name: str, meta: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.request_id = tracer.current_request
        self.meta = meta
        self._started = 0.0
        self.ms = 0.0

    def note(self, **meta: Any) -> None:
        """Attach metadata to the span while it runs."""
        self.meta.update(meta)

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.ms = (time.perf_counter() - self._started) * 1e3
        if exc_type is not None:
            self.meta.setdefault("error", exc_type.__name__)
        self.tracer._record(self)


class Tracer:
    """Mints request IDs, opens spans, keeps the recent-span ring."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        enabled: bool = False,
        max_spans: int = 256,
    ) -> None:
        #: the master switch; flip at run time (``db.obs.enable_tracing()``)
        self.enabled = enabled
        self.registry = registry
        self._spans: deque[dict[str, Any]] = deque(maxlen=max_spans)
        self._rids = count(1)  # itertools.count: atomic under CPython
        self._local = threading.local()
        self._lock = threading.Lock()
        self.recorded = 0

    # -- request identity ---------------------------------------------------

    def next_request_id(self) -> int:
        """Mint a process-unique request ID (thread-safe)."""
        return next(self._rids)

    @property
    def current_request(self) -> Optional[int]:
        """The request ID active on this thread (None outside a request)."""
        return getattr(self._local, "request_id", None)

    @current_request.setter
    def current_request(self, request_id: Optional[int]) -> None:
        self._local.request_id = request_id

    # -- spans --------------------------------------------------------------

    def span(self, name: str, **meta: Any):
        """A timed context manager; the shared no-op while disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, meta)

    def event(self, name: str, ms: float, **meta: Any) -> None:
        """Record a span whose duration the caller already measured."""
        if not self.enabled:
            return
        span = Span(self, name, meta)
        span.ms = ms
        self._record(span)

    def _record(self, span: Span) -> None:
        record: dict[str, Any] = {
            "name": span.name,
            "request_id": span.request_id,
            "ms": span.ms,
        }
        if span.meta:
            record["meta"] = span.meta
        with self._lock:
            self._spans.append(record)
            self.recorded += 1
        if self.registry is not None:
            self.registry.observe(f"span.{span.name}.ms", span.ms)

    # -- reading ------------------------------------------------------------

    def recent(self, n: Optional[int] = None) -> list[dict[str, Any]]:
        """The most recent finished spans, oldest first."""
        spans = list(self._spans)
        return spans if n is None else spans[-n:]

    def clear(self) -> None:
        """Drop the ring buffer (the recorded total is kept)."""
        self._spans.clear()
