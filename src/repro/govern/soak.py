"""Overload soak: a herd of contending, adversarial sessions.

The governance tentpole in one harness: ``run_overload_soak`` drives a
configurable herd (32 sessions by default) of host connections against a
single database through one shared :class:`AdmissionController`, over a
disk with PR 1's seeded transient faults active.  The herd is hostile on
purpose:

* **honest clients** read a shared element and write it plus a private
  key, then all commit back-to-back — engineered OCC contention, so
  conflicts, abort storms, backoff and starvation aging all fire;
* **spinners** run ``[true] whileTrue`` — the query budget must kill
  them mid-flight without hurting the session;
* **allocators** instantiate far past the allocation cap;
* **hoarders** stage writes far past the session quota, then abort.

Every round also sheds work at the admission queue (it is sized below
the herd's demand) and a latecomer session over the session gate.

Invariants the report asserts (and the benchmark re-checks):

* **zero torn commits** — after the soak the database is reopened from
  the platter; every key reads exactly the value of the last commit the
  harness saw succeed for it;
* **zero hung sessions** — every client finishes every round and logs
  out; runaway queries died by budget, never by wedging the Gem;
* **every rejection typed** — nothing escapes as an untyped exception:
  sheds and conflicts are :class:`~repro.errors.RetryableError`, budget
  and quota kills are :class:`~repro.errors.FatalError`;
* **deterministic** — all randomness is seeded and all time simulated,
  so a fixed seed yields a byte-identical :meth:`OverloadReport.digest`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..db import GemStone
from ..errors import (
    FatalError,
    GemStoneError,
    OverloadedError,
    QueryBudgetExceeded,
    RetryableError,
    SessionQuotaExceeded,
)
from ..executor.executor import HostConnection
from ..faults.disk import FaultyDisk
from ..faults.plan import FaultClock, FaultPlan, FaultSpec
from ..faults.resilience import ResilientDisk
from ..storage.disk import DiskGeometry, SimulatedDisk
from .admission import AdmissionController, CircuitBreaker
from .backoff import CommitPolicy
from .budget import BudgetSpec
from .quota import QuotaSpec

#: client roles, cycled by client index
_HONEST, _SPINNER, _ALLOCATOR, _HOARDER = "honest", "spinner", "allocator", "hoarder"
_ROLES = [_HONEST, _HONEST, _HONEST, _HONEST, _HONEST,
          _SPINNER, _ALLOCATOR, _HOARDER]


@dataclass
class OverloadReport:
    """Everything a soak run observed; the invariants live here."""

    clients: int
    rounds: int
    seed: int
    # progress
    commits: int = 0
    verified_keys: int = 0
    # typed rejections, by kind
    conflicts: int = 0
    overload_rejections: int = 0
    budget_kills: int = 0
    quota_kills: int = 0
    storage_rejections: int = 0
    shed_logins: int = 0
    # governance internals
    client_backoffs: int = 0
    queue_sheds: int = 0
    priority_grants: int = 0
    storms_detected: int = 0
    backoff_units: float = 0.0
    # fault layer
    injected_faults: int = 0
    disk_retries: int = 0
    # invariants — all must be zero
    torn_commits: int = 0
    hung_sessions: int = 0
    untyped_failures: int = 0
    failures: list[str] = field(default_factory=list)

    def digest(self) -> str:
        """A stable fingerprint: equal seeds must yield equal digests."""
        body = repr((
            self.clients, self.rounds, self.seed, self.commits,
            self.verified_keys, self.conflicts, self.overload_rejections,
            self.budget_kills, self.quota_kills, self.storage_rejections,
            self.shed_logins, self.client_backoffs, self.queue_sheds,
            self.priority_grants, self.storms_detected,
            round(self.backoff_units, 6), self.injected_faults,
            self.disk_retries, self.torn_commits, self.hung_sessions,
            self.untyped_failures,
        ))
        return hashlib.sha256(body.encode()).hexdigest()[:16]

    @property
    def clean(self) -> bool:
        """True when every soak invariant held."""
        return (
            self.torn_commits == 0
            and self.hung_sessions == 0
            and self.untyped_failures == 0
        )


def run_overload_soak(
    clients: int = 32,
    rounds: int = 3,
    seed: int = 2026,
    transient_rate: float = 0.15,
    latency_rate: float = 0.1,
    queue_capacity: float = 48.0,
    track_count: int = 4096,
    track_size: int = 512,
) -> OverloadReport:
    """Soak the full stack under engineered overload; see module docs."""
    report = OverloadReport(clients=clients, rounds=rounds, seed=seed)
    clock = FaultClock()

    # PR 1 faults stay on for the whole soak: a governed system must
    # shed load and mask transient storage faults at the same time
    plan = FaultPlan(
        seed=seed,
        spec=FaultSpec(transient_rate=transient_rate, latency_rate=latency_rate),
    )
    platter = SimulatedDisk(
        DiskGeometry(track_count=track_count, track_size=track_size)
    )
    stack = ResilientDisk(FaultyDisk(platter, plan, clock), clock, max_retries=8)

    db = GemStone.create(disk=stack)
    db.budget_spec = BudgetSpec(
        max_steps=20_000, max_send_depth=64, max_allocations=256
    )
    db.quota_spec = QuotaSpec(max_staged_writes=24, max_workspace_objects=128)
    db.transaction_manager.backoff_clock = clock
    db.transaction_manager.policy = CommitPolicy(
        seed=seed, starvation_threshold=3, priority_timeout=500.0
    )
    admission = AdmissionController(
        clock=clock,
        max_sessions=clients,
        queue_capacity=queue_capacity,
        drain_rate=1.0,
        breaker=CircuitBreaker(clock, failure_threshold=8, reset_after=64.0),
    )

    connections = [
        HostConnection(db, admission=admission, overload_attempts=16)
        for _ in range(clients)
    ]
    for connection in connections:
        connection.login("DataCurator", "swordfish")

    # a latecomer over the full session gate: shed with a typed answer
    latecomer = HostConnection(db, admission=admission, overload_attempts=1)
    try:
        latecomer.login("DataCurator", "swordfish")
        report.failures.append("session gate admitted one over the cap")
    except OverloadedError:
        report.shed_logins += 1

    expected: dict[str, int] = {}
    finished = [False] * clients

    def note_error(error: Exception, role: str) -> None:
        """Classify one rejection; anything untyped is an invariant hit."""
        if isinstance(error, QueryBudgetExceeded):
            report.budget_kills += 1
        elif isinstance(error, SessionQuotaExceeded):
            report.quota_kills += 1
        elif isinstance(error, OverloadedError):
            report.overload_rejections += 1
        elif isinstance(error, FatalError):
            report.storage_rejections += 1
        elif isinstance(error, RetryableError):
            report.storage_rejections += 1
        else:
            report.untyped_failures += 1
            report.failures.append(
                f"{role}: untyped {type(error).__name__}: {error}"
            )

    for round_no in range(rounds):
        staged: list[int] = []
        # phase A: everyone works; adversaries die by budget/quota here
        for index, connection in enumerate(connections):
            role = _ROLES[index % len(_ROLES)]
            try:
                if role == _HONEST:
                    value = round_no * 100_000 + index
                    connection.execute(
                        "World!shared. "
                        f"World!c{index} := {value}. "
                        f"World!shared := {value}"
                    )
                    staged.append(index)
                elif role == _SPINNER:
                    connection.execute("[true] whileTrue: [1 + 1]")
                    report.failures.append("spinner survived its budget")
                elif role == _ALLOCATOR:
                    connection.execute("1 to: 1000 do: [:i | Object new]")
                    report.failures.append("allocator survived its budget")
                else:  # hoarder
                    connection.execute("1 to: 64 do: [:i | World at: i put: i]")
                    report.failures.append("hoarder survived its quota")
            except GemStoneError as error:
                note_error(error, role)
                if isinstance(error, (SessionQuotaExceeded, OverloadedError)):
                    connection.abort()  # free the workspace; stay logged in
            except Exception as error:  # noqa: BLE001 — the invariant itself
                report.untyped_failures += 1
                report.failures.append(
                    f"{role}: raw {type(error).__name__}: {error}"
                )
        # phase B: the staged herd commits back-to-back — engineered
        # contention on World!shared; one wins, the rest take typed
        # conflicts, backoff, and eventually priority grants
        for index in staged:
            connection = connections[index]
            try:
                tx_time = connection.commit()
            except GemStoneError as error:
                note_error(error, _HONEST)
                connection.abort()
                continue
            except Exception as error:  # noqa: BLE001
                report.untyped_failures += 1
                report.failures.append(
                    f"commit: raw {type(error).__name__}: {error}"
                )
                continue
            if tx_time is None:
                report.conflicts += 1  # CONFLICT frame: typed, retryable
                continue
            value = round_no * 100_000 + index
            expected[f"c{index}"] = value
            expected["shared"] = value
            report.commits += 1

    for index, connection in enumerate(connections):
        try:
            connection.logout()
            finished[index] = True
        except GemStoneError as error:
            note_error(error, "logout")
    report.hung_sessions = finished.count(False)

    # governance + fault-layer counters (all deterministic)
    stats = db.transaction_manager.stats
    report.priority_grants = stats.priority_grants
    report.storms_detected = stats.storms_detected
    report.backoff_units = stats.backoff_units
    report.client_backoffs = sum(c.overload_backoffs for c in connections)
    report.queue_sheds = admission.shed_requests
    report.injected_faults = plan.injected
    report.disk_retries = stack.retries

    # recovery + torn-commit audit: reopen from the platter and demand
    # exactly the last committed value behind every key the soak tracked
    reopened = GemStone.open(stack)
    check = reopened.login()
    for key, value in sorted(expected.items()):
        found = check.execute(f"World!{key}")
        if found != value:
            report.torn_commits += 1
            report.failures.append(
                f"torn: World!{key} is {found!r}, expected {value!r}"
            )
        else:
            report.verified_keys += 1
    check.close()
    return report
