"""Session quotas: caps on a private workspace's growth.

Section 6 gives every session "its own Object Manager with a private
object space"; nothing in the paper bounds that space, and an unbounded
workspace is how one greedy session exhausts the memory every session
shares.  A :class:`SessionQuota` caps the two things a workspace
accumulates between commits — staged writes and workspace objects — and
raises the typed :class:`~repro.errors.SessionQuotaExceeded` *before*
the over-limit entry lands, so the workspace is never half-corrupted.

An exceeded quota is fatal for the transaction but not the session:
``abort`` discards the workspace, the quota frees, and the session can
start over with smaller transactions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SessionQuotaExceeded


@dataclass(frozen=True)
class QuotaSpec:
    """Workspace caps; ``None`` disables that cap."""

    max_staged_writes: int | None = None
    max_workspace_objects: int | None = None

    @classmethod
    def default(cls) -> "QuotaSpec":
        """Production defaults: far above normal transactions."""
        return cls(max_staged_writes=50_000, max_workspace_objects=10_000)


class SessionQuota:
    """Quota checks + rejection counters for one session."""

    __slots__ = ("spec", "rejections")

    def __init__(self, spec: QuotaSpec | None = None) -> None:
        self.spec = spec or QuotaSpec.default()
        self.rejections = 0

    def check_staged_write(self, staged: int) -> None:
        """Called with the current write-log length before appending."""
        cap = self.spec.max_staged_writes
        if cap is not None and staged >= cap:
            self.rejections += 1
            raise SessionQuotaExceeded("staged writes", staged, cap)

    def check_workspace_object(self, resident: int) -> None:
        """Called with the current workspace size before adopting."""
        cap = self.spec.max_workspace_objects
        if cap is not None and resident >= cap:
            self.rejections += 1
            raise SessionQuotaExceeded("workspace objects", resident, cap)
