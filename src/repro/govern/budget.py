"""Query budgets: fuel for the Interpreter and declarative evaluation.

The paper's Object Manager multiplexes one shared store across many user
sessions (section 6); one runaway OPAL block — an unbounded
``whileTrue``, a pathological send recursion, an allocation bomb — must
not starve every other session.  A :class:`QueryBudget` is the defence:
a fuel counter the :class:`~repro.opal.interpreter.OpalEngine` charges
as it works, raising the typed
:class:`~repro.errors.QueryBudgetExceeded` the instant a limit is hit.

Three meters, all per *query* (one ``execute`` of a block of OPAL):

* **steps** — bytecodes dispatched, plus fuel charged by the declarative
  select-block evaluator per candidate member it examines;
* **send depth** — nested message-send activations, bounding runaway
  recursion well before Python's own recursion limit;
* **allocations** — objects instantiated (persistent or transient).

The budget kills the *query*, never the session: the engine unwinds, the
workspace is intact, and the next ``execute`` starts with fresh fuel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QueryBudgetExceeded


@dataclass(frozen=True)
class BudgetSpec:
    """Per-query fuel limits; ``None`` disables that meter."""

    max_steps: int | None = None
    max_send_depth: int | None = None
    max_allocations: int | None = None

    @classmethod
    def default(cls) -> "BudgetSpec":
        """Generous production defaults: adversarial queries die, real
        workloads never notice."""
        return cls(max_steps=1_000_000, max_send_depth=200,
                   max_allocations=100_000)


class QueryBudget:
    """Mutable fuel counters for one session, reset at each query."""

    __slots__ = ("spec", "steps", "send_depth", "allocations",
                 "queries", "kills")

    def __init__(self, spec: BudgetSpec | None = None) -> None:
        self.spec = spec or BudgetSpec.default()
        self.steps = 0
        self.send_depth = 0
        self.allocations = 0
        #: lifetime counters (across queries), for reports
        self.queries = 0
        self.kills = 0

    def start_query(self) -> None:
        """Reset the per-query meters (the engine calls this per execute)."""
        self.steps = 0
        self.send_depth = 0
        self.allocations = 0
        self.queries += 1

    # -- charging ------------------------------------------------------------

    def charge_steps(self, count: int = 1) -> None:
        """Spend *count* fuel units; raises when the step cap is crossed."""
        self.steps += count
        cap = self.spec.max_steps
        if cap is not None and self.steps > cap:
            self.kills += 1
            raise QueryBudgetExceeded("steps", self.steps, cap)

    def enter_send(self) -> None:
        """One message-send activation deeper; raises past the depth cap."""
        self.send_depth += 1
        cap = self.spec.max_send_depth
        if cap is not None and self.send_depth > cap:
            self.kills += 1
            raise QueryBudgetExceeded("send depth", self.send_depth, cap)

    def exit_send(self) -> None:
        self.send_depth -= 1

    def charge_allocation(self, count: int = 1) -> None:
        """One more object instantiated; raises past the allocation cap."""
        self.allocations += count
        cap = self.spec.max_allocations
        if cap is not None and self.allocations > cap:
            self.kills += 1
            raise QueryBudgetExceeded("allocations", self.allocations, cap)
