"""``repro.govern`` — resource governance and overload protection.

Every layer defends itself under load, with typed, retryable errors:

* :mod:`~repro.govern.budget` — per-query fuel (steps, send depth,
  allocations) threaded through the OPAL interpreter;
* :mod:`~repro.govern.quota` — per-session workspace caps;
* :mod:`~repro.govern.backoff` — commit contention policy: jittered
  exponential backoff, abort-storm detection, starvation aging;
* :mod:`~repro.govern.admission` — executor admission control: session
  gate, bounded virtual queue with load shedding, circuit breaker;
* :mod:`~repro.govern.soak` — the overload soak harness proving that a
  herd of contending and adversarial sessions cannot wedge the system.

Everything is deterministic: backoff, retry-after and breaker resets are
charged to the same :class:`~repro.faults.plan.FaultClock` the fault
subsystem uses, so overload runs replay byte-for-byte from a seed.
"""

from .admission import AdmissionController, CircuitBreaker
from .backoff import CommitPolicy
from .budget import BudgetSpec, QueryBudget
from .quota import QuotaSpec, SessionQuota

__all__ = [
    "AdmissionController",
    "BudgetSpec",
    "CircuitBreaker",
    "CommitPolicy",
    "OverloadReport",
    "QueryBudget",
    "QuotaSpec",
    "SessionQuota",
    "run_overload_soak",
]


def __getattr__(name):
    # the soak harness imports the full database stack; loading it lazily
    # keeps ``repro.db`` → sessions/transactions → repro.govern acyclic
    if name in ("run_overload_soak", "OverloadReport"):
        from . import soak

        return getattr(soak, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
