"""Executor admission control: session gate, virtual queue, breaker.

The Executor "is responsible for controlling sessions ... on behalf of
users on host machines" (section 6); controlling them under overload
means refusing work it cannot serve, quickly and with a typed answer.
Three gates, all deterministic against a
:class:`~repro.faults.plan.FaultClock`:

* **session gate** — at most ``max_sessions`` concurrent logins; one
  over raises :class:`~repro.errors.OverloadedError` with a retry-after.
* **virtual request queue** — a leaky bucket in simulated time: each
  admitted request adds its cost to a backlog that drains at
  ``drain_rate`` units of cost per clock unit.  A request that would
  push the backlog past ``queue_capacity`` is *shed* with a retry-after
  equal to the time the bucket needs to make room — bounded queueing
  with honest backpressure instead of unbounded latency.
* **circuit breaker** — after ``failure_threshold`` consecutive system
  failures (storage down, volume degraded) the breaker *opens* and
  sheds everything for ``reset_after`` clock units: failing fast beats
  queueing doomed work.  It then goes *half-open*, admits one probe,
  and closes again only if the probe succeeds.

Hosts see every rejection as the same retryable
:class:`~repro.errors.OverloadedError`; the
:class:`~repro.executor.executor.HostConnection` backs off for the
carried ``retry_after`` and tries again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import OverloadedError

if TYPE_CHECKING:  # import lazily at runtime: repro.faults loads the
    from ..faults.plan import FaultClock  # full db stack (soak harness)

#: breaker states
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker on a deterministic clock."""

    def __init__(
        self,
        clock: FaultClock,
        failure_threshold: int = 5,
        reset_after: float = 50.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """May a request pass right now?  (Half-open admits one probe.)"""
        if self.state == OPEN:
            if self.clock.now - self._opened_at >= self.reset_after:
                self.state = HALF_OPEN
                return True
            return False
        return True

    def retry_after(self) -> float:
        """Clock units until the breaker will next admit a probe."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self.reset_after - (self.clock.now - self._opened_at))

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = CLOSED

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self._opened_at = self.clock.now


class AdmissionController:
    """Shared load gates for every Executor serving one database."""

    def __init__(
        self,
        clock: FaultClock | None = None,
        max_sessions: int = 64,
        queue_capacity: float = 128.0,
        drain_rate: float = 1.0,
        request_cost: float = 1.0,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if drain_rate <= 0:
            raise ValueError("drain_rate must be positive")
        if clock is None:
            from ..faults.plan import FaultClock

            clock = FaultClock()
        self.clock = clock
        self.max_sessions = max_sessions
        self.queue_capacity = queue_capacity
        self.drain_rate = drain_rate
        self.request_cost = request_cost
        self.breaker = breaker or CircuitBreaker(self.clock)
        self.sessions = 0
        self._backlog = 0.0
        self._drained_at = self.clock.now
        # counters
        self.admitted = 0
        self.shed_requests = 0
        self.shed_sessions = 0
        self.breaker_sheds = 0

    # -- session gate --------------------------------------------------------

    def admit_session(self) -> None:
        """Claim a session slot, or shed with a typed retry-after."""
        if self.sessions >= self.max_sessions:
            self.shed_sessions += 1
            raise OverloadedError(
                f"session limit {self.max_sessions} reached",
                retry_after=self.request_cost / self.drain_rate,
            )
        self.sessions += 1

    def release_session(self) -> None:
        if self.sessions > 0:
            self.sessions -= 1

    # -- virtual request queue ----------------------------------------------

    @property
    def backlog(self) -> float:
        """Queued cost not yet drained (after catching up to the clock)."""
        self._drain()
        return self._backlog

    def _drain(self) -> None:
        now = self.clock.now
        elapsed = now - self._drained_at
        if elapsed > 0:
            self._backlog = max(0.0, self._backlog - elapsed * self.drain_rate)
            self._drained_at = now

    def admit_request(self, cost: float | None = None) -> None:
        """Queue one request's cost, or shed it with a typed retry-after."""
        cost = self.request_cost if cost is None else cost
        self._drain()
        if not self.breaker.allow():
            self.breaker_sheds += 1
            raise OverloadedError(
                "circuit breaker open: shedding until the store recovers",
                retry_after=self.breaker.retry_after(),
            )
        if self._backlog + cost > self.queue_capacity:
            self.shed_requests += 1
            overflow = self._backlog + cost - self.queue_capacity
            raise OverloadedError(
                f"request queue full ({self._backlog:.0f} of "
                f"{self.queue_capacity:.0f} cost units)",
                retry_after=overflow / self.drain_rate,
            )
        self._backlog += cost
        self.admitted += 1

    # -- breaker hooks -------------------------------------------------------

    def record_success(self) -> None:
        self.breaker.record_success()

    def record_failure(self) -> None:
        self.breaker.record_failure()
