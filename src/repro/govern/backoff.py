"""Commit contention policy: jittered backoff, storm detection, aging.

Optimistic concurrency aborts the loser of every conflict (section 6);
under heavy contention that degenerates into an *abort storm* — sessions
conflict, retry immediately, and conflict again, burning validation work
without progress.  A :class:`CommitPolicy` shapes the retries:

* **jittered exponential backoff** — a conflicted session waits
  ``base * factor^streak``, fuzzed by a seeded RNG so retries decorrelate,
  charged to the deterministic fault clock (never the wall clock);
* **storm detection** — the Transaction Manager watches a sliding window
  of commit outcomes; when the abort fraction crosses the threshold,
  backoff is multiplied so the herd spreads out;
* **starvation aging** — a session whose abort streak reaches the
  starvation threshold is granted *priority*: until it commits (or its
  grant expires on the clock), other sessions' commits are pushed back
  with the retryable :class:`~repro.errors.OverloadedError`, so the
  long-suffering session finally validates against a quiet log.

All randomness comes from the policy's own ``random.Random(seed)``, so
two runs with the same seed back off identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class CommitPolicy:
    """Retry/backoff/aging knobs for the Transaction Manager."""

    #: attempts :meth:`TransactionManager.run_transaction` makes
    max_attempts: int = 4
    #: first backoff delay, in simulated clock units
    backoff_base: float = 1.0
    #: growth factor per consecutive abort
    backoff_factor: float = 2.0
    #: jitter fraction: the delay is scaled by ``1 + jitter * U[0,1)``
    jitter: float = 0.5
    #: seed for the jitter RNG (determinism)
    seed: int = 0
    #: sliding window of recent commit outcomes examined for storms
    storm_window: int = 16
    #: abort fraction of the window that counts as a storm
    storm_threshold: float = 0.5
    #: extra backoff multiplier while a storm is in progress
    storm_backoff_factor: float = 4.0
    #: consecutive aborts that earn a session priority
    starvation_threshold: int = 3
    #: clock units a priority grant lasts before it lapses
    priority_timeout: float = 200.0
    #: suggested retry-after handed to sessions pushed back by a grant
    priority_retry_after: float = 2.0

    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def backoff_delay(self, streak: int, storming: bool) -> float:
        """The jittered delay for a session on its *streak*-th abort."""
        exponent = max(0, streak - 1)
        delay = self.backoff_base * (self.backoff_factor ** exponent)
        if storming:
            delay *= self.storm_backoff_factor
        return delay * (1.0 + self.jitter * self._rng.random())
