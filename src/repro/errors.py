"""Exception hierarchy for the GemStone reproduction.

Every error raised by the library derives from :class:`GemStoneError`, so
applications can catch one type at the session boundary.  Subsystems raise
the most specific subclass that applies; the Executor maps these onto error
frames returned to the host (see :mod:`repro.executor.protocol`).
"""

from __future__ import annotations


class GemStoneError(Exception):
    """Base class for all errors raised by the repro library."""


# --------------------------------------------------------------------------
# Object model (repro.core)
# --------------------------------------------------------------------------

class ObjectModelError(GemStoneError):
    """Base class for errors in the GSDM object layer."""


class NoSuchObject(ObjectModelError):
    """An oid does not name any object in the store."""

    def __init__(self, oid: int) -> None:
        super().__init__(f"no object with oid {oid}")
        self.oid = oid


class ElementNotFound(ObjectModelError):
    """An object has no binding for an element name at the requested time."""

    def __init__(self, name: object, time: object = None) -> None:
        at = "" if time is None else f" at time {time}"
        super().__init__(f"no element {name!r}{at}")
        self.name = name
        self.time = time


class TimeTravelError(ObjectModelError):
    """A write was attempted at, or before, an already-recorded time."""


class PathError(ObjectModelError):
    """A path expression is syntactically invalid or cannot be resolved."""


class ClassProtocolError(ObjectModelError):
    """A message was sent that the receiver's class does not implement."""


class DoesNotUnderstand(ClassProtocolError):
    """Smalltalk's doesNotUnderstand: no method found for a selector."""

    def __init__(self, class_name: str, selector: str) -> None:
        super().__init__(f"{class_name} does not understand #{selector}")
        self.class_name = class_name
        self.selector = selector


class ViewError(ObjectModelError):
    """A view definition is invalid or an unsupported view update was made."""


# --------------------------------------------------------------------------
# STDM calculus / algebra (repro.stdm)
# --------------------------------------------------------------------------

class QueryError(GemStoneError):
    """Base class for set-calculus and set-algebra errors."""


class CalculusError(QueryError):
    """A set-calculus expression is malformed or cannot be evaluated."""


class AlgebraError(QueryError):
    """A set-algebra plan is malformed or cannot be executed."""


class TranslationError(QueryError):
    """A calculus expression cannot be translated to algebra."""


# --------------------------------------------------------------------------
# OPAL language (repro.opal)
# --------------------------------------------------------------------------

class OpalError(GemStoneError):
    """Base class for OPAL language errors."""


class LexError(OpalError):
    """A character sequence cannot be tokenized."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(OpalError):
    """A token sequence is not a valid OPAL program."""


class CompileError(OpalError):
    """A parsed OPAL program cannot be compiled to bytecodes."""


class OpalRuntimeError(OpalError):
    """An error raised while the Interpreter executes bytecodes."""


# --------------------------------------------------------------------------
# Storage (repro.storage)
# --------------------------------------------------------------------------

class StorageError(GemStoneError):
    """Base class for secondary-storage errors."""


class DiskError(StorageError):
    """A simulated disk rejected an operation."""


class DiskCrashed(DiskError):
    """The simulated disk hit its injected crash point; writes are lost."""


class TransientDiskError(DiskError):
    """A retryable I/O failure (injected by a fault plan); retry may succeed."""


class DegradedError(StorageError):
    """A resilient volume exhausted its retry budget and went read-only."""


class StaleReplicaError(StorageError):
    """Every live replica holds only a superseded copy of the track."""


class ChecksumError(StorageError):
    """A track's stored checksum does not match its contents."""


class TrackOverflow(StorageError):
    """A record fragment was larger than a track's payload capacity."""


class CodecError(StorageError):
    """A byte sequence is not a valid encoding of an object or value."""


class RecoveryError(StorageError):
    """No valid root record could be found while opening a database."""


class ArchiveError(StorageError):
    """An archived (off-line) object was accessed, or archival failed."""


# --------------------------------------------------------------------------
# Concurrency (repro.concurrency)
# --------------------------------------------------------------------------

class ConcurrencyError(GemStoneError):
    """Base class for transaction and session errors."""


class TransactionConflict(ConcurrencyError):
    """Optimistic validation failed: a concurrent commit invalidated reads."""

    def __init__(self, message: str, conflicts: tuple = ()) -> None:
        super().__init__(message)
        self.conflicts = conflicts


class TransactionStateError(ConcurrencyError):
    """An operation was issued outside an active transaction."""


class SessionClosed(ConcurrencyError):
    """An operation was issued on a closed session."""


class AuthorizationError(ConcurrencyError):
    """The session's user lacks the privilege for an operation."""


# --------------------------------------------------------------------------
# Directories (repro.directories)
# --------------------------------------------------------------------------

class DirectoryError(GemStoneError):
    """Base class for directory (index) errors."""


# --------------------------------------------------------------------------
# Executor (repro.executor)
# --------------------------------------------------------------------------

class ProtocolError(GemStoneError):
    """A malformed frame was received on the host link."""


class LinkCorruption(ProtocolError):
    """A sequenced frame failed its checksum: damaged in transit, not malformed."""


class LinkTimeout(ProtocolError):
    """No response arrived on the host link within the retry budget."""
